//! DBLP-like co-authorship stream generator.
//!
//! The paper's DBLP dataset (595 406 authors, 602 684 papers, 1 954 776
//! ordered author pairs in chronological order) is replaced by a synthetic
//! co-authorship model that preserves the two properties gSketch exploits
//! (§3.3):
//!
//! * **global heterogeneity** — author productivity is Zipf-distributed,
//!   and repeat-collaboration pairs span two orders of magnitude of
//!   frequency;
//! * **local similarity** — pair frequencies are coherent *within* an
//!   author: a "stable-team" author repeats the same few collaborators
//!   (all their pairs are heavy), while a "networker" author keeps
//!   finding new collaborators (all their pairs are light). Real DBLP
//!   shows exactly this split (long-running lab teams vs. one-off
//!   collaborations), which is what gives the paper's measured
//!   σ_G/σ_V ≈ 3.7.
//!
//! Model: each paper draws an author count, a first author by Zipf
//! productivity, and co-authors either from the first author's
//! collaborator circle (probability = the author's *loyalty*) or fresh.
//! Stable-team authors have high loyalty and small circles — their pairs
//! recur; networkers have low loyalty and large circles. All ordered
//! pairs `(a_i, a_j), i < j` are emitted per paper, chronologically.

use crate::edge::{Edge, StreamEdge};
use crate::fxhash::FxHashMap;
use crate::sample::zipf::Zipf;
use crate::vertex::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the DBLP-like generator.
#[derive(Debug, Clone, Copy)]
pub struct DblpConfig {
    /// Number of authors in the universe.
    pub authors: u32,
    /// Number of papers to generate.
    pub papers: usize,
    /// Zipf skew of author productivity.
    pub productivity_skew: f64,
    /// Fraction of authors forming stable teams (high loyalty, small
    /// circles → heavy repeat pairs).
    pub stable_fraction: f64,
    /// Collaborator-circle reuse probability for stable-team authors.
    pub stable_loyalty: f64,
    /// Circle reuse probability for networker authors.
    pub networker_loyalty: f64,
    /// Circle capacity for stable-team authors (small → heavy pairs).
    pub stable_circle: usize,
    /// Circle capacity for networkers (large → light pairs).
    pub networker_circle: usize,
    /// Maximum authors per paper (minimum is 1).
    pub max_authors_per_paper: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        Self {
            authors: 60_000,
            papers: 60_000,
            productivity_skew: 1.4,
            stable_fraction: 0.35,
            stable_loyalty: 0.95,
            networker_loyalty: 0.15,
            stable_circle: 3,
            networker_circle: 64,
            max_authors_per_paper: 6,
            seed: 0xD8_1B,
        }
    }
}

impl DblpConfig {
    fn validate(&self) {
        // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
        assert!(self.authors >= 2, "need at least two authors");
        assert!(self.papers > 0, "need at least one paper");
        for (name, p) in [
            ("stable_fraction", self.stable_fraction),
            ("stable_loyalty", self.stable_loyalty),
            ("networker_loyalty", self.networker_loyalty),
        ] {
            // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
            assert!((0.0..=1.0).contains(&p), "{name} must be a probability");
        }
        assert!(
            self.stable_circle >= 1 && self.networker_circle >= 1,
            "circle capacities must be positive"
        );
        // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
        assert!(
            self.max_authors_per_paper >= 2,
            "papers must allow at least two authors to form pairs"
        );
    }

    /// Whether an author id belongs to the stable-team class. Class
    /// membership is a deterministic hash of the id so it needs no state.
    fn is_stable(&self, author: u32) -> bool {
        let bucket = (sketch::hash::mix64(author as u64 ^ 0x57AB) % 1000) as f64;
        bucket < self.stable_fraction * 1000.0
    }

    fn loyalty(&self, author: u32) -> f64 {
        if self.is_stable(author) {
            self.stable_loyalty
        } else {
            self.networker_loyalty
        }
    }

    fn circle_cap(&self, author: u32) -> usize {
        if self.is_stable(author) {
            self.stable_circle
        } else {
            self.networker_circle
        }
    }
}

/// Generate a DBLP-like co-authorship stream (ordered author pairs in
/// chronological paper order).
pub fn generate(cfg: DblpConfig) -> Vec<StreamEdge> {
    cfg.validate();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let productivity = Zipf::new(cfg.authors as u64, cfg.productivity_skew);
    // Collaborator circles, grown as papers are published.
    let mut circles: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    let mut out = Vec::with_capacity(cfg.papers * 3);
    let mut authors_buf: Vec<u32> = Vec::with_capacity(cfg.max_authors_per_paper);

    for paper in 0..cfg.papers {
        // Paper size: 2 + geometric-ish, truncated; ~20% solo papers.
        let mut k = 2usize;
        while k < cfg.max_authors_per_paper && rng.gen::<f64>() < 0.45 {
            k += 1;
        }
        if rng.gen::<f64>() < 0.2 {
            k = 1;
        }

        authors_buf.clear();
        let first = (productivity.sample(&mut rng) - 1) as u32;
        authors_buf.push(first);
        let loyalty = cfg.loyalty(first);
        let mut attempts = 0;
        while authors_buf.len() < k && attempts < 4 * k {
            attempts += 1;
            let circle = circles.get(&first);
            let candidate =
                if let Some(c) = circle.filter(|c| !c.is_empty() && rng.gen::<f64>() < loyalty) {
                    c[rng.gen_range(0..c.len())]
                } else {
                    // Fresh collaborators are recruited from the open
                    // (networker) community: stable-team authors only publish
                    // within their own labs, which keeps each vertex's pair
                    // frequencies coherent (local similarity, §3.3).
                    let mut cand = (productivity.sample(&mut rng) - 1) as u32;
                    let mut tries = 0;
                    while cfg.is_stable(cand) && cand != first && tries < 8 {
                        cand = (productivity.sample(&mut rng) - 1) as u32;
                        tries += 1;
                    }
                    cand
                };
            if !authors_buf.contains(&candidate) {
                authors_buf.push(candidate);
            }
        }

        // Grow collaborator circles (bounded per class).
        for &a in &authors_buf {
            let cap = cfg.circle_cap(a);
            let circle = circles.entry(a).or_default();
            for &b in &authors_buf {
                if a != b && !circle.contains(&b) && circle.len() < cap {
                    circle.push(b);
                }
            }
        }

        // Emit all ordered pairs (a_i, a_j), i < j, at this paper's time.
        let ts = paper as u64;
        for i in 0..authors_buf.len() {
            for j in (i + 1)..authors_buf.len() {
                out.push(StreamEdge::unit(
                    Edge::new(VertexId(authors_buf[i]), VertexId(authors_buf[j])),
                    ts,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactCounter;
    use crate::stats::VarianceStats;

    fn small() -> DblpConfig {
        DblpConfig {
            authors: 2000,
            papers: 5000,
            seed: 1,
            ..DblpConfig::default()
        }
    }

    #[test]
    #[should_panic(expected = "at least two authors")]
    fn too_few_authors_rejected() {
        generate(DblpConfig {
            authors: 1,
            ..DblpConfig::default()
        });
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(generate(small()), generate(small()));
        let other = DblpConfig { seed: 2, ..small() };
        assert_ne!(generate(small()), generate(other));
    }

    #[test]
    fn timestamps_monotone_nondecreasing() {
        let s = generate(small());
        assert!(!s.is_empty());
        for w in s.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
    }

    #[test]
    fn vertices_within_universe() {
        let cfg = small();
        for se in generate(cfg) {
            assert!(se.edge.src.0 < cfg.authors);
            assert!(se.edge.dst.0 < cfg.authors);
        }
    }

    #[test]
    fn no_self_loops() {
        for se in generate(small()) {
            assert!(!se.edge.is_loop());
        }
    }

    #[test]
    fn productivity_is_heavy_tailed() {
        let s = generate(small());
        let c = ExactCounter::from_stream(&s);
        let prof = c.vertex_profile();
        let mut freqs: Vec<u64> = prof.values().map(|p| p.frequency).collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = freqs.iter().sum();
        let top1pct = freqs.len() / 100 + 1;
        let top: u64 = freqs.iter().take(top1pct).sum();
        assert!(
            top as f64 / total as f64 > 0.2,
            "top 1% of authors should dominate: {:.3}",
            top as f64 / total as f64
        );
    }

    #[test]
    fn per_vertex_average_frequency_spreads() {
        // The property the partitioner needs: stable-team authors must
        // have much heavier average pair frequency than networkers.
        let s = generate(DblpConfig {
            authors: 3000,
            papers: 30_000,
            seed: 4,
            ..DblpConfig::default()
        });
        let c = ExactCounter::from_stream(&s);
        let prof = c.vertex_profile();
        let mut avgs: Vec<f64> = prof
            .values()
            .filter(|p| p.frequency >= 5) // active authors
            .map(|p| p.avg_edge_frequency())
            .collect();
        assert!(avgs.len() > 100, "not enough active authors");
        avgs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p10 = avgs[avgs.len() / 10];
        let p90 = avgs[avgs.len() * 9 / 10];
        assert!(
            p90 / p10.max(0.1) > 3.0,
            "avg pair frequency must spread across vertices: p10={p10:.2} p90={p90:.2}"
        );
    }

    #[test]
    fn heavy_mass_is_spread_over_many_edges() {
        // Global heterogeneity must come from many moderately-heavy
        // pairs, not a handful of monsters.
        let s = generate(DblpConfig {
            authors: 3000,
            papers: 30_000,
            seed: 4,
            ..DblpConfig::default()
        });
        let c = ExactCounter::from_stream(&s);
        let heavy_edges = c.iter().filter(|&(_, f)| f >= 5).count();
        let heavy_mass: u64 = c.iter().filter(|&(_, f)| f >= 5).map(|(_, f)| f).sum();
        assert!(heavy_edges > 500, "too few heavy pairs: {heavy_edges}");
        assert!(
            heavy_mass as f64 / c.total_weight() as f64 > 0.3,
            "heavy pairs should carry >30% of mass: {:.3}",
            heavy_mass as f64 / c.total_weight() as f64
        );
    }

    #[test]
    fn variance_ratio_above_one() {
        // The signature property the paper reports (ratio 3.674 for DBLP).
        let s = generate(DblpConfig {
            authors: 5000,
            papers: 20_000,
            seed: 3,
            ..DblpConfig::default()
        });
        let stats = VarianceStats::from_counts(&ExactCounter::from_stream(&s));
        assert!(
            stats.ratio() > 1.5,
            "variance ratio should exceed 1.5, got {:.3}",
            stats.ratio()
        );
    }
}
