//! IP-attack-network stream generator.
//!
//! The paper's second real dataset is a proprietary corporate sensor feed
//! of IP attack packets (3 781 471 edges over 5 days). We substitute a
//! synthetic traffic model with the dataset's published signature: the
//! most extreme global-to-local variance ratio of the three datasets
//! (σ_G/σ_V ≈ 10), arising from a mixture of
//!
//! * **scanners** — a few sources probing very many targets, each pair
//!   seen a handful of times (huge out-degree, low per-edge frequency);
//! * **sustained attacks** — few (source, target) pairs hammered at very
//!   high rates (tiny out-degree, huge per-edge frequency);
//! * **background noise** — uniform random pairs.
//!
//! Within one source all its edges behave alike (local similarity), while
//! across sources frequencies span orders of magnitude (global skew).

use crate::edge::{Edge, StreamEdge};
use crate::sample::zipf::Zipf;
use crate::vertex::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the IP-attack generator.
#[derive(Debug, Clone, Copy)]
pub struct IpAttackConfig {
    /// Number of distinct IP addresses.
    pub hosts: u32,
    /// Number of stream arrivals to emit.
    pub arrivals: usize,
    /// Number of scanner sources.
    pub scanners: u32,
    /// Number of sustained attack sources (each hammers a handful of
    /// victims at a moderate-to-high rate, so attack mass is spread over
    /// thousands of pairs rather than a few monsters).
    pub attackers: u32,
    /// Victims per attack source.
    pub victims_per_attacker: u32,
    /// Fraction of arrivals from scanners.
    pub scanner_fraction: f64,
    /// Fraction of arrivals from sustained attacks.
    pub attack_fraction: f64,
    /// Size of the "interesting subnet" scanners concentrate on; repeat
    /// probes of the same pair give scanner edges frequencies in the
    /// 2–50 range.
    pub scan_subnet: u32,
    /// Zipf skew for scanner target selection within the subnet.
    pub target_skew: f64,
    /// Zipf skew of intensity across attack sources.
    pub attack_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IpAttackConfig {
    fn default() -> Self {
        Self {
            hosts: 50_000,
            arrivals: 2_000_000,
            scanners: 40,
            attackers: 1_000,
            victims_per_attacker: 4,
            scanner_fraction: 0.35,
            attack_fraction: 0.45,
            scan_subnet: 4_096,
            target_skew: 1.0,
            attack_skew: 0.8,
            seed: 0x1BAD_CAFE,
        }
    }
}

impl IpAttackConfig {
    fn validate(&self) {
        // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
        assert!(self.hosts >= 16, "need a minimal host universe");
        assert!(self.arrivals > 0, "need at least one arrival");
        assert!(self.scanners >= 1 && self.attackers >= 1);
        // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
        assert!(
            self.scanner_fraction >= 0.0
                && self.attack_fraction >= 0.0
                && self.scanner_fraction + self.attack_fraction <= 1.0,
            "traffic fractions must form a sub-probability"
        );
        // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
        assert!(
            self.scanners + self.attackers < self.hosts,
            "role counts must leave ordinary hosts for background traffic"
        );
        // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
        assert!(
            self.scan_subnet >= 2 && self.scan_subnet <= self.hosts,
            "scan subnet must be within the host universe"
        );
        // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
        assert!(self.victims_per_attacker >= 1);
    }
}

/// Generate an IP-attack-like stream.
pub fn generate(cfg: IpAttackConfig) -> Vec<StreamEdge> {
    cfg.validate();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Scanner sources are the lowest ids; attack sources use the next
    // block of ids, so roles never overlap.
    let scanner_base = 0u32;
    let attacker_base = cfg.scanners;
    let target_zipf = Zipf::new(cfg.scan_subnet as u64, cfg.target_skew);

    // Attack victims: attacker i hammers a small fixed victim set.
    let victims: Vec<Vec<VertexId>> = (0..cfg.attackers)
        .map(|_| {
            (0..cfg.victims_per_attacker)
                .map(|_| VertexId(rng.gen_range(0..cfg.hosts)))
                .collect()
        })
        .collect();
    // Attack intensity is Zipf-distributed across attack sources.
    let attacker_zipf = Zipf::new(cfg.attackers as u64, cfg.attack_skew);

    let mut out = Vec::with_capacity(cfg.arrivals);
    for ts in 0..cfg.arrivals {
        let roll = rng.gen::<f64>();
        let edge = if roll < cfg.scanner_fraction {
            // A scanner re-probes a Zipf-popular target in the subnet.
            let src = VertexId(scanner_base + rng.gen_range(0..cfg.scanners));
            let dst = VertexId((target_zipf.sample(&mut rng) - 1) as u32);
            Edge::new(src, dst)
        } else if roll < cfg.scanner_fraction + cfg.attack_fraction {
            // A sustained attack source fires at one of its victims.
            let a = (attacker_zipf.sample(&mut rng) - 1) as u32;
            let vs = &victims[a as usize];
            let dst = vs[rng.gen_range(0..vs.len())];
            Edge::new(VertexId(attacker_base + a), dst)
        } else {
            // Background noise: uniform pair among ordinary hosts. Role
            // sources are excluded so a sustained-attack vertex is not
            // polluted with unrelated freq-1 edges — within one source,
            // traffic behaves alike (local similarity, §3.3).
            let ordinary = cfg.scanners + cfg.attackers;
            let src = VertexId(rng.gen_range(ordinary..cfg.hosts));
            let dst = VertexId(rng.gen_range(0..cfg.hosts));
            Edge::new(src, dst)
        };
        out.push(StreamEdge::unit(edge, ts as u64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactCounter;
    use crate::stats::VarianceStats;

    fn small() -> IpAttackConfig {
        IpAttackConfig {
            hosts: 2000,
            arrivals: 100_000,
            scanners: 10,
            attackers: 100,
            scan_subnet: 512,
            seed: 5,
            ..IpAttackConfig::default()
        }
    }

    #[test]
    #[should_panic(expected = "sub-probability")]
    fn bad_fractions_rejected() {
        generate(IpAttackConfig {
            scanner_fraction: 0.7,
            attack_fraction: 0.5,
            ..IpAttackConfig::default()
        });
    }

    #[test]
    fn emits_requested_arrivals() {
        let s = generate(small());
        assert_eq!(s.len(), 100_000);
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(generate(small()), generate(small()));
    }

    #[test]
    fn hosts_within_universe() {
        let cfg = small();
        for se in generate(cfg) {
            assert!(se.edge.src.0 < cfg.hosts);
            assert!(se.edge.dst.0 < cfg.hosts);
        }
    }

    #[test]
    fn attack_pairs_are_heavy_and_spread() {
        let cfg = small();
        let s = generate(cfg);
        let c = ExactCounter::from_stream(&s);
        // The heaviest edge carries far more than the mean…
        let max = c.iter().map(|(_, f)| f).max().unwrap();
        let mean = c.total_weight() / c.distinct_edges() as u64;
        assert!(
            max > mean * 20,
            "expected strong skew: max {max}, mean {mean}"
        );
        // …and the heavy mass is spread over many pairs, not a handful:
        // edges with f ≥ 10 must number in the hundreds and carry a
        // large share of the stream.
        let heavy_edges = c.iter().filter(|&(_, f)| f >= 10).count();
        let heavy_mass: u64 = c.iter().filter(|&(_, f)| f >= 10).map(|(_, f)| f).sum();
        assert!(heavy_edges > 200, "too few heavy pairs: {heavy_edges}");
        assert!(
            heavy_mass as f64 / c.total_weight() as f64 > 0.4,
            "heavy pairs should carry >40% of mass: {:.3}",
            heavy_mass as f64 / c.total_weight() as f64
        );
    }

    #[test]
    fn variance_ratio_is_extreme() {
        // The paper reports ratio ~10 for this dataset — the largest of
        // the three. Require clearly > 2 at test scale.
        let s = generate(small());
        let stats = VarianceStats::from_counts(&ExactCounter::from_stream(&s));
        assert!(
            stats.ratio() > 2.0,
            "variance ratio should be extreme, got {:.3}",
            stats.ratio()
        );
    }

    #[test]
    fn scanners_have_high_out_degree() {
        let cfg = small();
        let s = generate(cfg);
        let c = ExactCounter::from_stream(&s);
        let prof = c.vertex_profile();
        let scanner_deg: u64 = (0..cfg.scanners)
            .filter_map(|i| prof.get(&VertexId(i)).map(|p| p.out_degree))
            .max()
            .unwrap_or(0);
        let attacker_deg: u64 = (cfg.scanners..cfg.scanners + cfg.attackers)
            .filter_map(|i| prof.get(&VertexId(i)).map(|p| p.out_degree))
            .max()
            .unwrap_or(0);
        assert!(
            scanner_deg > attacker_deg * 5,
            "scanners ({scanner_deg}) should out-fan attackers ({attacker_deg})"
        );
    }
}
