//! Query-set and workload-sample generation (§6.2–§6.4 of the paper).
//!
//! * Edge query sets `Qe` — uniform samples of stream arrivals (§6.3) or
//!   Zipf-rank samples over the distinct edges (§6.4).
//! * Aggregate subgraph query sets `Qg` — BFS explorations of 10 edges
//!   from uniformly sampled seed vertices (§6.3).
//! * Query workload samples `W` — Zipf-rank edge samples whose vertex
//!   weights steer the partitioner in scenario 2.

use crate::edge::{Edge, StreamEdge};
use crate::exact::ExactCounter;
use crate::fxhash::FxHashSet;
use crate::sample::zipf::Zipf;
use crate::vertex::VertexId;
use rand::seq::SliceRandom;
use rand::Rng;

/// How distinct edges are ranked before Zipf sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ZipfRank {
    /// Random permutation (decouples query popularity from stream
    /// frequency; the default, and the harder case for a sketch since
    /// rare edges are queried often).
    #[default]
    Random,
    /// Rank by descending true frequency (query popularity follows
    /// stream popularity).
    Frequency,
}

/// Draw `k` edge queries uniformly over stream *arrivals* (frequency-
/// proportional, the paper's §6.3 setup: every query has f ≥ 1).
pub fn uniform_edge_queries<R: Rng + ?Sized>(
    stream: &[StreamEdge],
    k: usize,
    rng: &mut R,
) -> Vec<Edge> {
    // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
    assert!(
        !stream.is_empty(),
        "cannot sample queries from an empty stream"
    );
    (0..k)
        .map(|_| stream[rng.gen_range(0..stream.len())].edge)
        .collect()
}

/// Draw `k` edge queries uniformly (with replacement) over the
/// *distinct* edges of the stream.
pub fn uniform_distinct_queries<R: Rng + ?Sized>(
    counts: &ExactCounter,
    k: usize,
    rng: &mut R,
) -> Vec<Edge> {
    // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
    assert!(counts.distinct_edges() > 0, "no distinct edges to sample");
    let mut all: Vec<Edge> = counts.iter().map(|(e, _)| e).collect();
    all.sort_unstable(); // deterministic order for reproducibility
    (0..k).map(|_| all[rng.gen_range(0..all.len())]).collect()
}

/// Rank the distinct edges of a stream for Zipf sampling.
fn ranked_edges<R: Rng + ?Sized>(counts: &ExactCounter, rank: ZipfRank, rng: &mut R) -> Vec<Edge> {
    let mut edges: Vec<(Edge, u64)> = counts.iter().collect();
    match rank {
        ZipfRank::Frequency => {
            edges.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        ZipfRank::Random => {
            // Deterministic order first so the shuffle is reproducible.
            edges.sort_unstable_by_key(|a| a.0);
            edges.shuffle(rng);
        }
    }
    edges.into_iter().map(|(e, _)| e).collect()
}

/// Convert a 1-based Zipf rank into an index of the ranked list,
/// clamped into range. [`Zipf::sample`] already guarantees ranks in
/// `1..=n`; the clamp here is belt-and-braces so no float pathology in
/// the sampler can ever turn into an index panic (or a silent wrap to
/// the wrong edge) in workload generation — the support may be far
/// smaller than the requested query count, and every draw must land on
/// a real edge.
#[inline]
fn rank_index(rank: u64, len: usize) -> usize {
    // cast: u64 -> usize; rank is clamped into [1, len], so the result
    // is a valid index below len.
    (rank.clamp(1, len as u64) - 1) as usize
}

/// Draw `k` edges by Zipf(α) rank over the distinct edges — used both for
/// query sets and for workload samples in scenario 2 (§6.4). Draws are
/// with replacement: when the distinct-edge support is smaller than
/// `k`, queries legitimately repeat (that is what a skewed workload
/// *is*), but every draw is clamped onto the real support.
pub fn zipf_edge_queries<R: Rng + ?Sized>(
    counts: &ExactCounter,
    k: usize,
    alpha: f64,
    rank: ZipfRank,
    rng: &mut R,
) -> Vec<Edge> {
    let ranked = ranked_edges(counts, rank, rng);
    // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
    assert!(!ranked.is_empty(), "no distinct edges to sample");
    let zipf = Zipf::new(ranked.len() as u64, alpha);
    (0..k)
        .map(|_| ranked[rank_index(zipf.sample(rng), ranked.len())])
        .collect()
}

/// A reusable Zipf edge sampler with a *fixed* rank order, so that a
/// workload sample and the query sets drawn later share popularity: the
/// paper's scenario 2 assumes the workload sample is predictive of the
/// actual queries (§6.4).
#[derive(Debug, Clone)]
pub struct ZipfEdgeSampler {
    ranked: Vec<Edge>,
    zipf: Zipf,
}

impl ZipfEdgeSampler {
    /// Fix a rank order over the distinct edges of `counts` and prepare a
    /// Zipf(α) sampler over it. `rng` only drives the (one-off) ranking.
    pub fn new<R: Rng + ?Sized>(
        counts: &ExactCounter,
        alpha: f64,
        rank: ZipfRank,
        rng: &mut R,
    ) -> Self {
        let ranked = ranked_edges(counts, rank, rng);
        // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
        assert!(!ranked.is_empty(), "no distinct edges to sample");
        let zipf = Zipf::new(ranked.len() as u64, alpha);
        Self { ranked, zipf }
    }

    /// Draw `k` edges (with replacement) under the fixed popularity.
    pub fn draw<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<Edge> {
        (0..k)
            .map(|_| self.ranked[rank_index(self.zipf.sample(rng), self.ranked.len())])
            .collect()
    }

    /// Draw `k` *source vertices* under the fixed popularity — used to
    /// seed Zipf-skewed subgraph queries.
    pub fn draw_sources<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<VertexId> {
        (0..k)
            .map(|_| self.ranked[rank_index(self.zipf.sample(rng), self.ranked.len())].src)
            .collect()
    }

    /// Number of ranked distinct edges.
    pub fn support(&self) -> usize {
        self.ranked.len()
    }
}

/// Replace a controlled fraction of `queries` with **never-ingested**
/// pairs, then shuffle so present and absent keys interleave. Returns
/// how many queries were replaced (`round(frac * len)`).
///
/// Each absent query keeps a real stream source vertex — so it routes
/// to the same partitions real queries hit, not uniformly to the
/// outlier — and takes a destination the stream provably never paired
/// with anything (above every vertex the stream mentions, verified
/// against the exact counts). This is the sparse-workload generator
/// behind `workload --absent`: a zero-frequency short-circuit is only
/// measurable on queries whose true answer is zero.
pub fn inject_absent_queries<R: Rng + ?Sized>(
    counts: &ExactCounter,
    queries: &mut [Edge],
    frac: f64,
    rng: &mut R,
) -> usize {
    // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
    assert!(
        (0.0..1.0).contains(&frac),
        "absent fraction must be in [0, 1)"
    );
    // cast: f64 -> usize; frac < 1.0 so the product is below len.
    let n = ((queries.len() as f64) * frac).round() as usize;
    if n == 0 {
        return 0;
    }
    let mut srcs: Vec<VertexId> = counts.iter().map(|(e, _)| e.src).collect();
    srcs.sort_unstable();
    srcs.dedup();
    // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
    assert!(!srcs.is_empty(), "no stream vertices to draw sources from");
    let ceiling = counts
        .iter()
        .flat_map(|(e, _)| [e.src.0, e.dst.0])
        .max()
        .unwrap_or(0);
    for q in queries.iter_mut().take(n) {
        let src = srcs[rng.gen_range(0..srcs.len())];
        // Destinations above the ceiling cannot have been ingested; the
        // rejection loop only runs in the pathological case where the
        // stream touches the top of the u32 vertex space and the
        // saturating offset lands on a real pair.
        let mut dst = ceiling
            .saturating_add(1)
            .saturating_add(rng.gen_range(0..1024));
        let mut candidate = Edge::new(src, dst);
        while counts.frequency(candidate) > 0 {
            dst = rng.gen();
            candidate = Edge::new(src, dst);
        }
        *q = candidate;
    }
    queries.shuffle(rng);
    n
}

/// Generate subgraph queries of (up to) `edges_per_query` edges, one per
/// seed vertex, BFS-exploring from each seed (Zipf-skewed scenario-2
/// variant of [`bfs_subgraph_queries`]).
pub fn bfs_subgraph_queries_from_seeds<R: Rng + ?Sized>(
    counts: &ExactCounter,
    seeds: &[VertexId],
    edges_per_query: usize,
    rng: &mut R,
) -> Vec<SubgraphQuery> {
    let adjacency = counts.adjacency();
    let mut out = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let mut edges: Vec<Edge> = Vec::with_capacity(edges_per_query);
        let mut visited: FxHashSet<VertexId> = FxHashSet::default();
        let mut frontier: Vec<VertexId> = vec![seed];
        visited.insert(seed);
        while edges.len() < edges_per_query && !frontier.is_empty() {
            let idx = rng.gen_range(0..frontier.len());
            let node = frontier.swap_remove(idx);
            let Some(targets) = adjacency.get(&node) else {
                continue;
            };
            let mut order: Vec<usize> = (0..targets.len()).collect();
            order.shuffle(rng);
            for ti in order {
                if edges.len() >= edges_per_query {
                    break;
                }
                let (dst, _) = targets[ti];
                edges.push(Edge::new(node, dst));
                if visited.insert(dst) {
                    frontier.push(dst);
                }
            }
        }
        if !edges.is_empty() {
            out.push(SubgraphQuery { edges });
        }
    }
    out
}

/// One replayable workload query: an edge, optionally restricted to an
/// inclusive time interval `[t_start, t_end]` — the on-disk row of the
/// windowed workload format (`src dst [t_start t_end]`; see
/// [`crate::io`]). A query without a window asks over the whole
/// observed lifetime; a windowed query is answered by the windowed
/// deployment's interval extrapolation (§5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadQuery {
    /// The queried edge.
    pub edge: Edge,
    /// Inclusive `[t_start, t_end]` restriction, if any (invariant:
    /// `t_start <= t_end`, enforced by the file parser and the
    /// constructor).
    pub window: Option<(u64, u64)>,
}

impl WorkloadQuery {
    /// A lifetime (unwindowed) query.
    pub fn lifetime(edge: Edge) -> Self {
        Self { edge, window: None }
    }

    /// A query over the inclusive interval `[t_start, t_end]`.
    ///
    /// # Panics
    /// Panics if `t_start > t_end`.
    pub fn windowed(edge: Edge, t_start: u64, t_end: u64) -> Self {
        // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
        assert!(t_start <= t_end, "empty interval");
        Self {
            edge,
            window: Some((t_start, t_end)),
        }
    }
}

/// An aggregate subgraph query: a bag of constituent edges (§3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubgraphQuery {
    /// The constituent edges.
    pub edges: Vec<Edge>,
}

impl SubgraphQuery {
    /// Number of constituent edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the query has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Generate `count` subgraph queries of (up to) `edges_per_query` edges by
/// seeding a uniform vertex and BFS-exploring its neighborhood, picking
/// the next edge at random at each frontier node (§6.3).
pub fn bfs_subgraph_queries<R: Rng + ?Sized>(
    counts: &ExactCounter,
    count: usize,
    edges_per_query: usize,
    rng: &mut R,
) -> Vec<SubgraphQuery> {
    let adjacency = counts.adjacency();
    let sources: Vec<VertexId> = {
        let mut v: Vec<VertexId> = adjacency.keys().copied().collect();
        v.sort_unstable();
        v
    };
    // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
    assert!(!sources.is_empty(), "stream has no edges to explore");
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let seed = sources[rng.gen_range(0..sources.len())];
        let mut edges: Vec<Edge> = Vec::with_capacity(edges_per_query);
        let mut visited: FxHashSet<VertexId> = FxHashSet::default();
        let mut frontier: Vec<VertexId> = vec![seed];
        visited.insert(seed);
        while edges.len() < edges_per_query && !frontier.is_empty() {
            let idx = rng.gen_range(0..frontier.len());
            let node = frontier.swap_remove(idx);
            let Some(targets) = adjacency.get(&node) else {
                continue;
            };
            // Explore out-edges in random order until the budget is hit.
            let mut order: Vec<usize> = (0..targets.len()).collect();
            order.shuffle(rng);
            for ti in order {
                if edges.len() >= edges_per_query {
                    break;
                }
                let (dst, _) = targets[ti];
                edges.push(Edge::new(node, dst));
                if visited.insert(dst) {
                    frontier.push(dst);
                }
            }
        }
        if !edges.is_empty() {
            out.push(SubgraphQuery { edges });
        }
    }
    out
}

/// Per-vertex relative weights `w̃(n)` from a workload sample: the
/// fraction of workload edges emanating from each vertex (§4.2).
/// Smoothing is applied by the consumer (`gsketch::vstats`), which knows
/// the vertex support of the data sample.
pub fn workload_vertex_counts(workload: &[Edge]) -> crate::fxhash::FxHashMap<VertexId, u64> {
    let mut counts = crate::fxhash::FxHashMap::default();
    for e in workload {
        *counts.entry(e.src).or_insert(0) += 1;
    }
    counts
}

/// Attach a fixed-span inclusive query window to every edge query: each
/// window covers `span` timestamps, its start drawn uniformly over the
/// multiples of `align` in `[0, t_max]` (so `align == span` tiles the
/// stream's lifetime, smaller alignments overlap). The windowed rows are
/// what `WindowedGSketch` deployments replay — and because the start
/// domain is small and discrete, workloads repeat intervals, which is
/// exactly what an interval-keyed replay memo rewards.
///
/// # Panics
/// Panics if `span` or `align` is zero (CLI callers validate first).
pub fn windowed_interval_queries<R: Rng + ?Sized>(
    queries: &[Edge],
    span: u64,
    align: u64,
    t_max: u64,
    rng: &mut R,
) -> Vec<WorkloadQuery> {
    // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
    assert!(span > 0, "interval span must be positive");
    assert!(align > 0, "interval alignment must be positive");
    let last_start = t_max.saturating_sub(span - 1);
    let starts = last_start / align + 1;
    queries
        .iter()
        .map(|&edge| {
            let t_start = rng.gen_range(0..starts) * align;
            WorkloadQuery::windowed(edge, t_start, t_start.saturating_add(span - 1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_stream() -> Vec<StreamEdge> {
        let mut s = Vec::new();
        let mut ts = 0;
        // Heavy edge (1,2) x50; medium (2,3) x10; singles.
        for _ in 0..50 {
            s.push(StreamEdge::unit(Edge::new(1u32, 2u32), ts));
            ts += 1;
        }
        for _ in 0..10 {
            s.push(StreamEdge::unit(Edge::new(2u32, 3u32), ts));
            ts += 1;
        }
        for d in 4..20u32 {
            s.push(StreamEdge::unit(Edge::new(3u32, d), ts));
            ts += 1;
        }
        s
    }

    #[test]
    fn interval_windows_are_aligned_and_in_range() {
        let queries: Vec<Edge> = (0..500u32).map(|i| Edge::new(i, i + 1)).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let (span, align, t_max) = (100u64, 25u64, 1_000u64);
        let windowed = windowed_interval_queries(&queries, span, align, t_max, &mut rng);
        assert_eq!(windowed.len(), queries.len());
        let mut distinct = FxHashSet::default();
        for (q, w) in queries.iter().zip(&windowed) {
            assert_eq!(w.edge, *q, "edges pass through in order");
            let (ts, te) = w.window.expect("every row is windowed");
            assert_eq!(ts % align, 0, "start {ts} not aligned to {align}");
            assert_eq!(te - ts + 1, span, "window length");
            assert!(ts <= t_max);
            distinct.insert(ts);
        }
        assert!(distinct.len() > 1, "starts must vary");
        // align == span tiles the lifetime: starts are span multiples.
        let tiled = windowed_interval_queries(&queries, span, span, t_max, &mut rng);
        assert!(tiled
            .iter()
            .all(|w| w.window.is_some_and(|(ts, _)| ts % span == 0)));
    }

    #[test]
    fn uniform_queries_are_frequency_biased() {
        let stream = toy_stream();
        let mut rng = StdRng::seed_from_u64(0);
        let q = uniform_edge_queries(&stream, 2000, &mut rng);
        let heavy = q.iter().filter(|e| **e == Edge::new(1u32, 2u32)).count();
        // Heavy edge is 50/76 of arrivals ≈ 66%.
        assert!(heavy > 1000, "heavy edge should dominate: {heavy}");
    }

    #[test]
    fn uniform_distinct_queries_cover_support() {
        let stream = toy_stream();
        let counts = ExactCounter::from_stream(&stream);
        let mut rng = StdRng::seed_from_u64(1);
        let q = uniform_distinct_queries(&counts, 10, &mut rng);
        assert_eq!(q.len(), 10);
        for e in &q {
            assert!(counts.frequency(*e) > 0);
        }
    }

    #[test]
    fn zipf_frequency_rank_prefers_heavy_edges() {
        let stream = toy_stream();
        let counts = ExactCounter::from_stream(&stream);
        let mut rng = StdRng::seed_from_u64(2);
        let q = zipf_edge_queries(&counts, 1000, 1.8, ZipfRank::Frequency, &mut rng);
        let heavy = q.iter().filter(|e| **e == Edge::new(1u32, 2u32)).count();
        assert!(
            heavy > 400,
            "rank-1 edge should receive most Zipf mass: {heavy}"
        );
    }

    #[test]
    fn zipf_random_rank_is_reproducible() {
        let stream = toy_stream();
        let counts = ExactCounter::from_stream(&stream);
        let a = zipf_edge_queries(
            &counts,
            50,
            1.5,
            ZipfRank::Random,
            &mut StdRng::seed_from_u64(3),
        );
        let b = zipf_edge_queries(
            &counts,
            50,
            1.5,
            ZipfRank::Random,
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn subgraph_queries_have_requested_size() {
        let stream = toy_stream();
        let counts = ExactCounter::from_stream(&stream);
        let mut rng = StdRng::seed_from_u64(4);
        let qs = bfs_subgraph_queries(&counts, 20, 5, &mut rng);
        assert_eq!(qs.len(), 20);
        for q in &qs {
            assert!(!q.is_empty());
            assert!(q.len() <= 5);
            // Every edge must exist in the underlying graph.
            for e in &q.edges {
                assert!(counts.frequency(*e) > 0, "BFS produced unknown edge {e}");
            }
        }
    }

    #[test]
    fn subgraph_edges_are_connected_to_seed_region() {
        // With vertex 3 fanning out, BFS from 3 should pick its edges.
        let stream = toy_stream();
        let counts = ExactCounter::from_stream(&stream);
        let mut rng = StdRng::seed_from_u64(5);
        let qs = bfs_subgraph_queries(&counts, 50, 10, &mut rng);
        assert!(qs.iter().any(|q| q.len() >= 2));
    }

    #[test]
    fn workload_vertex_counts_aggregate_sources() {
        let w = vec![
            Edge::new(1u32, 2u32),
            Edge::new(1u32, 3u32),
            Edge::new(2u32, 3u32),
        ];
        let counts = workload_vertex_counts(&w);
        assert_eq!(counts[&VertexId(1)], 2);
        assert_eq!(counts[&VertexId(2)], 1);
        assert!(!counts.contains_key(&VertexId(3)));
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn empty_stream_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        uniform_edge_queries(&[], 5, &mut rng);
    }

    /// Rank handling at the edges of the support: a single-edge support
    /// with far more queries than edges must neither panic nor wander
    /// off the ranked list, for tame and extreme skews alike — every
    /// drawn query is the one real edge.
    #[test]
    fn zipf_rank_handling_survives_tiny_support_and_extreme_alpha() {
        let stream = vec![StreamEdge::unit(Edge::new(1u32, 2u32), 0)];
        let counts = ExactCounter::from_stream(&stream);
        for alpha in [1e-6, 0.5, 1.0, 1.1, 2.0, 50.0, 500.0] {
            let mut rng = StdRng::seed_from_u64(7);
            let q = zipf_edge_queries(&counts, 200, alpha, ZipfRank::Frequency, &mut rng);
            assert_eq!(q.len(), 200, "alpha {alpha}");
            assert!(q.iter().all(|e| *e == Edge::new(1u32, 2u32)));
            let sampler = ZipfEdgeSampler::new(&counts, alpha, ZipfRank::Random, &mut rng);
            assert!(sampler
                .draw(50, &mut rng)
                .iter()
                .all(|e| counts.frequency(*e) > 0));
            assert!(sampler
                .draw_sources(50, &mut rng)
                .iter()
                .all(|v| *v == VertexId(1)));
        }
    }

    /// More queries than distinct edges: draws repeat (with
    /// replacement — the definition of a skewed workload) but every
    /// draw is a real edge of the stream.
    #[test]
    fn zipf_queries_exceeding_support_stay_on_support() {
        let stream = toy_stream();
        let counts = ExactCounter::from_stream(&stream);
        let mut rng = StdRng::seed_from_u64(9);
        let k = counts.distinct_edges() * 13;
        let q = zipf_edge_queries(&counts, k, 1.1, ZipfRank::Frequency, &mut rng);
        assert_eq!(q.len(), k);
        for e in &q {
            assert!(counts.frequency(*e) > 0, "drew unknown edge {e}");
        }
    }

    /// The rank→index conversion is total: any u64 rank lands inside
    /// the list.
    #[test]
    fn rank_index_is_total() {
        for (rank, len, expect) in [
            (0u64, 5usize, 0usize), // defensive: rank 0 clamps to first
            (1, 5, 0),
            (5, 5, 4),
            (6, 5, 4),
            (u64::MAX, 5, 4),
            (1, 1, 0),
            (u64::MAX, 1, 0),
        ] {
            assert_eq!(rank_index(rank, len), expect, "rank {rank} len {len}");
        }
    }

    #[test]
    fn zipf_sampler_shares_popularity_across_draws() {
        // Two draws from the SAME sampler concentrate on the same edges;
        // that is the property scenario 2 relies on.
        let stream = toy_stream();
        let counts = ExactCounter::from_stream(&stream);
        let mut rng = StdRng::seed_from_u64(11);
        let sampler = ZipfEdgeSampler::new(&counts, 1.8, ZipfRank::Random, &mut rng);
        let workload = sampler.draw(500, &mut rng);
        let queries = sampler.draw(500, &mut rng);
        let top = |edges: &[Edge]| {
            let mut c: FxHashSet<Edge> = FxHashSet::default();
            let mut counts = std::collections::HashMap::new();
            for e in edges {
                *counts.entry(*e).or_insert(0usize) += 1;
            }
            let mut v: Vec<(Edge, usize)> = counts.into_iter().collect();
            v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            c.extend(v.into_iter().take(3).map(|(e, _)| e));
            c
        };
        let shared = top(&workload).intersection(&top(&queries)).count();
        assert!(shared >= 2, "popular edges should coincide: {shared}");
        assert_eq!(sampler.support(), counts.distinct_edges());
    }

    #[test]
    fn seeded_subgraph_queries_start_at_seeds() {
        let stream = toy_stream();
        let counts = ExactCounter::from_stream(&stream);
        let mut rng = StdRng::seed_from_u64(12);
        let seeds = vec![VertexId(3), VertexId(1)];
        let qs = bfs_subgraph_queries_from_seeds(&counts, &seeds, 4, &mut rng);
        assert_eq!(qs.len(), 2);
        for (q, seed) in qs.iter().zip(&seeds) {
            assert_eq!(q.edges[0].src, *seed);
        }
    }
}
