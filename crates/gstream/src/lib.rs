//! # gstream — graph-stream substrate
//!
//! The data model, synthetic workloads, sampling machinery, and
//! ground-truth accounting that the gSketch reproduction is evaluated on:
//!
//! * [`Edge`], [`StreamEdge`], [`VertexId`], [`Interner`] — the graph
//!   stream model of §3.1 (directed edges with timestamps and weights,
//!   string labels interned to dense ids);
//! * [`gen`] — R-MAT (GTGraph), DBLP-like, and IP-attack-like stream
//!   generators (§6.1);
//! * [`sample`] — reservoir sampling (data samples) and exact Zipf
//!   sampling (workload samples);
//! * [`workload`] — edge / subgraph query-set generation (§6.2–6.4);
//! * [`source`] — chunked [`EdgeSource`] producers (generators, slices,
//!   incremental file readers) feeding the parallel ingest pipeline;
//! * [`ExactCounter`] — exact per-edge and per-vertex frequencies, the
//!   evaluation ground truth;
//! * [`VarianceStats`] — the σ_G/σ_V variance-ratio characterisation of
//!   §6.1.
//!
//! ```
//! use gstream::gen::{RmatConfig, RmatGenerator};
//! use gstream::ExactCounter;
//!
//! let stream: Vec<_> = RmatGenerator::new(RmatConfig::gtgraph(8, 1_000, 42)).collect();
//! let truth = ExactCounter::from_stream(&stream);
//! assert_eq!(truth.arrivals(), 1_000);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod edge;
pub mod exact;
pub mod fxhash;
pub mod gen;
pub mod io;
pub mod sample;
pub mod source;
pub mod stats;
pub mod transform;
pub mod vertex;
pub mod workload;

pub use edge::{Edge, StreamEdge};
pub use exact::{ExactCounter, VertexProfile};
pub use io::{
    load_queries, load_stream, load_workload, read_queries, read_stream, read_workload,
    save_queries, save_stream, save_workload, write_queries, write_stream, write_workload,
    QueryFileSource, StreamFileSource, StreamIoError,
};
pub use source::{EdgeSource, SliceSource};
pub use stats::VarianceStats;
pub use vertex::{Interner, VertexId};
pub use workload::{SubgraphQuery, WorkloadQuery, ZipfRank};
