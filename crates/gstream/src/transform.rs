//! Stream transforms: composition, windowing, and perturbation of graph
//! streams.
//!
//! These utilities let the experiment harness and the examples build
//! richer workloads out of the base generators: merging two streams by
//! timestamp (e.g. background traffic + attack traffic), cutting a time
//! window out of a stream, injecting a frequency burst at a point in
//! time, and rescaling or renumbering timestamps. All functions preserve
//! the non-decreasing-timestamp invariant of §3.1.

use crate::edge::{Edge, StreamEdge};

/// Merge two individually time-ordered streams into one time-ordered
/// stream (stable: ties keep `a` before `b`).
pub fn merge_by_time(a: &[StreamEdge], b: &[StreamEdge]) -> Vec<StreamEdge> {
    debug_assert!(is_time_ordered(a), "stream `a` must be time-ordered");
    debug_assert!(is_time_ordered(b), "stream `b` must be time-ordered");
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i].ts <= b[j].ts {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Whether timestamps are non-decreasing.
pub fn is_time_ordered(stream: &[StreamEdge]) -> bool {
    stream.windows(2).all(|w| w[0].ts <= w[1].ts)
}

/// The sub-stream with `ts ∈ [start, end)`. The input must be
/// time-ordered; the result borrows nothing and is itself time-ordered.
pub fn window(stream: &[StreamEdge], start: u64, end: u64) -> Vec<StreamEdge> {
    debug_assert!(is_time_ordered(stream));
    let lo = stream.partition_point(|se| se.ts < start);
    let hi = stream.partition_point(|se| se.ts < end);
    stream[lo..hi].to_vec()
}

/// Inject a burst of `count` unit arrivals of `edge` at timestamp `at`,
/// keeping the stream time-ordered.
pub fn inject_burst(stream: &[StreamEdge], edge: Edge, at: u64, count: usize) -> Vec<StreamEdge> {
    debug_assert!(is_time_ordered(stream));
    let pos = stream.partition_point(|se| se.ts <= at);
    let mut out = Vec::with_capacity(stream.len() + count);
    out.extend_from_slice(&stream[..pos]);
    out.extend((0..count).map(|_| StreamEdge::unit(edge, at)));
    out.extend_from_slice(&stream[pos..]);
    out
}

/// Multiply every timestamp by `factor` (e.g. to convert tick units).
pub fn scale_time(stream: &[StreamEdge], factor: u64) -> Vec<StreamEdge> {
    stream
        .iter()
        .map(|se| StreamEdge::weighted(se.edge, se.ts.saturating_mul(factor), se.weight))
        .collect()
}

/// Renumber timestamps to consecutive `0..n` while preserving order —
/// useful after filtering, when the original timestamps have gaps.
pub fn renumber_timestamps(stream: &[StreamEdge]) -> Vec<StreamEdge> {
    stream
        .iter()
        .enumerate()
        .map(|(i, se)| StreamEdge::weighted(se.edge, i as u64, se.weight))
        .collect()
}

/// Reverse every edge (queries about in-neighbourhoods become queries
/// about out-neighbourhoods of the reversed stream).
pub fn reverse_edges(stream: &[StreamEdge]) -> Vec<StreamEdge> {
    stream
        .iter()
        .map(|se| StreamEdge::weighted(se.edge.reversed(), se.ts, se.weight))
        .collect()
}

/// Collapse consecutive arrivals of the same edge at the same timestamp
/// into one weighted arrival. Lossless for frequency queries; shrinks
/// bursty streams.
pub fn coalesce(stream: &[StreamEdge]) -> Vec<StreamEdge> {
    let mut out: Vec<StreamEdge> = Vec::with_capacity(stream.len());
    for &se in stream {
        match out.last_mut() {
            Some(last) if last.edge == se.edge && last.ts == se.ts => {
                last.weight = last.weight.saturating_add(se.weight);
            }
            _ => out.push(se),
        }
    }
    out
}

/// Split a stream into `n` equal-duration epochs by timestamp (the
/// paper's §5 coarse time-window scheme). Returns exactly `n` buckets;
/// later buckets may be empty when traffic is front-loaded.
pub fn epochs(stream: &[StreamEdge], n: usize) -> Vec<Vec<StreamEdge>> {
    // lint: allow(no-panics) — documented generator precondition (`# Panics`): workload configs are literals in benches and tests; misuse must fail fast.
    assert!(n > 0, "need at least one epoch");
    debug_assert!(is_time_ordered(stream));
    let mut out = vec![Vec::new(); n];
    let Some(last) = stream.last() else {
        return out;
    };
    let span = last.ts + 1;
    for &se in stream {
        // Epoch index in [0, n): proportional position of ts in the span.
        // cast: u128 -> usize; ts < span so the quotient is < n, an epoch
        // index that fits usize (and is clamped on the next line).
        let idx = ((se.ts as u128 * n as u128) / span as u128) as usize;
        out[idx.min(n - 1)].push(se);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::VertexId;

    fn se(src: u32, dst: u32, ts: u64) -> StreamEdge {
        StreamEdge::unit(Edge::new(VertexId(src), VertexId(dst)), ts)
    }

    #[test]
    fn merge_interleaves_by_timestamp() {
        let a = vec![se(1, 2, 0), se(1, 2, 4), se(1, 2, 8)];
        let b = vec![se(3, 4, 1), se(3, 4, 4), se(3, 4, 9)];
        let m = merge_by_time(&a, &b);
        assert_eq!(m.len(), 6);
        assert!(is_time_ordered(&m));
        // Stability: at ts=4 the `a` arrival comes first.
        let at4: Vec<u32> = m
            .iter()
            .filter(|x| x.ts == 4)
            .map(|x| x.edge.src.0)
            .collect();
        assert_eq!(at4, vec![1, 3]);
    }

    #[test]
    fn merge_with_empty() {
        let a = vec![se(1, 2, 0)];
        assert_eq!(merge_by_time(&a, &[]), a);
        assert_eq!(merge_by_time(&[], &a), a);
    }

    #[test]
    fn window_selects_half_open_range() {
        let s = vec![se(1, 2, 0), se(1, 2, 5), se(1, 2, 9), se(1, 2, 10)];
        let w = window(&s, 5, 10);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].ts, 5);
        assert_eq!(w[1].ts, 9);
    }

    #[test]
    fn window_empty_range() {
        let s = vec![se(1, 2, 0), se(1, 2, 5)];
        assert!(window(&s, 6, 6).is_empty());
        assert!(window(&s, 100, 200).is_empty());
    }

    #[test]
    fn burst_is_inserted_in_order() {
        let s = vec![se(1, 2, 0), se(1, 2, 10)];
        let out = inject_burst(&s, Edge::new(7u32, 8u32), 5, 3);
        assert_eq!(out.len(), 5);
        assert!(is_time_ordered(&out));
        assert_eq!(out[1].edge, Edge::new(7u32, 8u32));
        assert_eq!(out[1].ts, 5);
    }

    #[test]
    fn burst_at_existing_timestamp_goes_after() {
        let s = vec![se(1, 2, 5)];
        let out = inject_burst(&s, Edge::new(7u32, 8u32), 5, 1);
        assert_eq!(out[0].edge, Edge::new(1u32, 2u32));
        assert_eq!(out[1].edge, Edge::new(7u32, 8u32));
    }

    #[test]
    fn scale_time_multiplies() {
        let s = vec![se(1, 2, 3)];
        assert_eq!(scale_time(&s, 10)[0].ts, 30);
    }

    #[test]
    fn renumber_is_dense() {
        let s = vec![se(1, 2, 3), se(1, 2, 90), se(1, 2, 1000)];
        let r = renumber_timestamps(&s);
        assert_eq!(r.iter().map(|x| x.ts).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn reverse_swaps_endpoints() {
        let r = reverse_edges(&[se(1, 2, 0)]);
        assert_eq!(r[0].edge, Edge::new(2u32, 1u32));
    }

    #[test]
    fn coalesce_merges_same_edge_same_ts() {
        let s = vec![se(1, 2, 0), se(1, 2, 0), se(1, 2, 1), se(3, 4, 1)];
        let c = coalesce(&s);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].weight, 2);
        assert_eq!(c[1].weight, 1);
    }

    #[test]
    fn coalesce_preserves_total_weight() {
        // Runs of 5 consecutive arrivals share both edge and timestamp.
        let s: Vec<StreamEdge> = (0..100)
            .map(|t| se((t / 5) % 3, 9, (t / 10) as u64))
            .collect();
        let c = coalesce(&s);
        let before: u64 = s.iter().map(|x| x.weight).sum();
        let after: u64 = c.iter().map(|x| x.weight).sum();
        assert_eq!(before, after);
        assert!(c.len() < s.len());
    }

    #[test]
    fn epochs_partition_the_stream() {
        let s: Vec<StreamEdge> = (0..100u64).map(|t| se(1, 2, t)).collect();
        let e = epochs(&s, 4);
        assert_eq!(e.len(), 4);
        assert_eq!(e.iter().map(Vec::len).sum::<usize>(), 100);
        for bucket in &e {
            assert!(is_time_ordered(bucket));
        }
        assert_eq!(e[0].len(), 25);
    }

    #[test]
    fn epochs_of_empty_stream() {
        let e = epochs(&[], 3);
        assert_eq!(e.len(), 3);
        assert!(e.iter().all(Vec::is_empty));
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_rejected() {
        epochs(&[], 0);
    }
}
