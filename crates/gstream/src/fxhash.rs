//! A fast, non-cryptographic hasher for in-memory maps.
//!
//! This is the `FxHash` algorithm used by the Rust compiler (a simple
//! multiply-rotate word hash). Ground-truth counting and vertex-statistics
//! maps hash millions of integer keys, where SipHash (the std default) is
//! the bottleneck; re-implementing the ~20-line algorithm here avoids an
//! extra dependency. **Not** suitable for adversarial input and never used
//! inside the sketches themselves (those use the pairwise-independent
//! families from the `sketch` crate).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // lint: allow(no-panics) — `chunks_exact(8)` guarantees every chunk
            // converts into `[u8; 8]`; the conversion cannot fail.
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic() {
        let bh = FxBuildHasher::default();
        assert_eq!(bh.hash_one(12345u64), bh.hash_one(12345u64));
        assert_ne!(bh.hash_one(1u64), bh.hash_one(2u64));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            *m.entry(i % 97).or_insert(0) += 1;
        }
        assert_eq!(m.len(), 97);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.extend(0..100u64);
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn byte_stream_matches_word_writes_for_distinctness() {
        // Sanity: hashing different byte strings yields different values.
        let bh = FxBuildHasher::default();
        let h1 = bh.hash_one("edge:a->b");
        let h2 = bh.hash_one("edge:a->c");
        assert_ne!(h1, h2);
    }

    #[test]
    fn low_bit_spread_for_sequential_keys() {
        // HashMap uses the low bits; sequential keys must spread.
        let bh = FxBuildHasher::default();
        let mut buckets = FxHashSet::default();
        for i in 0..256u64 {
            buckets.insert(bh.hash_one(i) & 0xFF);
        }
        assert!(
            buckets.len() > 128,
            "poor low-bit spread: {}",
            buckets.len()
        );
    }
}
