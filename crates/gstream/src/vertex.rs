//! Vertex identity and label interning.
//!
//! The paper's stream elements carry string vertex labels `l(x)`; edges
//! are keyed by the concatenation `l(x) ⊕ l(y)` (§3.2). Hashing strings on
//! every arrival is wasteful, so — as any production stream processor
//! would — we intern labels once into dense `u32` ids and key sketches on
//! mixed id pairs. The [`Interner`] preserves the label ↔ id bijection so
//! query answers can be reported against the original labels.

use crate::fxhash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense vertex identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The id as a `u64` sketch-key component.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0 as u64
    }

    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

/// A bidirectional label ↔ [`VertexId`] map.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Interner {
    by_label: FxHashMap<String, VertexId>,
    labels: Vec<String>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an interner sized for `capacity` vertices.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            by_label: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            labels: Vec::with_capacity(capacity),
        }
    }

    /// Intern `label`, returning its (possibly fresh) id.
    ///
    /// # Panics
    /// Panics if more than `u32::MAX` distinct labels are interned.
    pub fn intern(&mut self, label: &str) -> VertexId {
        if let Some(&id) = self.by_label.get(label) {
            return id;
        }
        let id = VertexId(
            // lint: allow(no-panics) — documented panic contract (doc comment
            // above): interning more than u32::MAX labels is a caller bug.
            u32::try_from(self.labels.len()).expect("interner overflow: > u32::MAX vertices"),
        );
        self.labels.push(label.to_owned());
        self.by_label.insert(label.to_owned(), id);
        id
    }

    /// Look up an already-interned label.
    pub fn get(&self, label: &str) -> Option<VertexId> {
        self.by_label.get(label).copied()
    }

    /// The label for `id`, if `id` was produced by this interner.
    pub fn label(&self, id: VertexId) -> Option<&str> {
        self.labels.get(id.index()).map(String::as_str)
    }

    /// Number of interned vertices.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("alice");
        let b = i.intern("bob");
        assert_ne!(a, b);
        assert_eq!(i.intern("alice"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn ids_are_dense() {
        let mut i = Interner::new();
        for (n, name) in ["x", "y", "z"].iter().enumerate() {
            assert_eq!(i.intern(name), VertexId(n as u32));
        }
    }

    #[test]
    fn label_roundtrip() {
        let mut i = Interner::new();
        let id = i.intern("carol");
        assert_eq!(i.label(id), Some("carol"));
        assert_eq!(i.get("carol"), Some(id));
        assert_eq!(i.get("dave"), None);
        assert_eq!(i.label(VertexId(99)), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(VertexId(7).to_string(), "v7");
    }

    #[test]
    fn with_capacity_starts_empty() {
        let i = Interner::with_capacity(100);
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
