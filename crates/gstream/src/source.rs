//! Chunked stream sources: the producer-side contract of the parallel
//! ingest pipeline (DESIGN.md §7).
//!
//! Item-at-a-time iterators are the wrong shape for a sharded consumer:
//! every arrival would cross the producer/consumer boundary (and its
//! synchronization) individually. [`EdgeSource`] instead hands out
//! **contiguous chunks** — the caller supplies the buffer, so a worker
//! thread refills its own staging buffer under one short lock and then
//! processes the chunk without touching the source again.
//!
//! Implementations:
//!
//! * every `Iterator<Item = StreamEdge>` (blanket impl) — which covers
//!   all the generators in [`crate::gen`] (R-MAT, R-MAT traffic, DBLP,
//!   IP-attack, Erdős–Rényi, small-world) and ad-hoc adapters like
//!   `vec.into_iter()`;
//! * [`SliceSource`] — an in-memory stream replayed by `memcpy`;
//! * [`StreamFileSource`](crate::io::StreamFileSource) — the edge-list
//!   file reader, parsing incrementally instead of materializing the
//!   whole file.

use crate::edge::StreamEdge;

/// A producer of graph-stream arrivals in contiguous chunks.
///
/// The contract: `fill_chunk` clears `buf`, appends up to `max` arrivals
/// in stream order, and returns how many it appended; `0` means the
/// source is exhausted (callers may treat the first empty chunk as
/// end-of-stream). Successive calls hand out consecutive, disjoint spans
/// of the stream, so draining a source through any mix of chunk sizes
/// yields every arrival exactly once.
pub trait EdgeSource {
    /// Refill `buf` (cleared first) with up to `max` arrivals; returns
    /// the number appended, `0` when exhausted.
    fn fill_chunk(&mut self, buf: &mut Vec<StreamEdge>, max: usize) -> usize;

    /// Arrivals remaining, when the source knows (generators and slices
    /// do; file readers usually do not).
    fn remaining_hint(&self) -> Option<usize> {
        None
    }
}

/// Every item-at-a-time generator is an [`EdgeSource`]: the chunk is
/// assembled by pulling the iterator. This is the adapter that lets the
/// synthetic generators feed the parallel pipeline unchanged.
impl<I: Iterator<Item = StreamEdge>> EdgeSource for I {
    fn fill_chunk(&mut self, buf: &mut Vec<StreamEdge>, max: usize) -> usize {
        buf.clear();
        buf.extend(self.take(max));
        buf.len()
    }

    fn remaining_hint(&self) -> Option<usize> {
        let (lo, hi) = self.size_hint();
        hi.filter(|&h| h == lo)
    }
}

/// An in-memory stream replayed as chunks (each `fill_chunk` is one
/// `memcpy` of the next span).
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    rest: &'a [StreamEdge],
}

impl<'a> SliceSource<'a> {
    /// Replay `stream` from the beginning.
    pub fn new(stream: &'a [StreamEdge]) -> Self {
        Self { rest: stream }
    }
}

impl EdgeSource for SliceSource<'_> {
    fn fill_chunk(&mut self, buf: &mut Vec<StreamEdge>, max: usize) -> usize {
        buf.clear();
        let n = self.rest.len().min(max);
        let (head, tail) = self.rest.split_at(n);
        buf.extend_from_slice(head);
        self.rest = tail;
        n
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.rest.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;
    use crate::gen::{RmatConfig, RmatGenerator};

    fn toy(n: u64) -> Vec<StreamEdge> {
        (0..n)
            .map(|t| StreamEdge::unit(Edge::new((t % 7) as u32, 1u32), t))
            .collect()
    }

    #[test]
    fn slice_source_drains_exactly_once() {
        let stream = toy(10);
        let mut src = SliceSource::new(&stream);
        assert_eq!(src.remaining_hint(), Some(10));
        let mut buf = Vec::new();
        let mut seen = Vec::new();
        while src.fill_chunk(&mut buf, 3) > 0 {
            seen.extend_from_slice(&buf);
        }
        assert_eq!(seen, stream);
        assert_eq!(src.remaining_hint(), Some(0));
        assert_eq!(src.fill_chunk(&mut buf, 3), 0);
    }

    #[test]
    fn iterator_source_matches_collect() {
        let cfg = RmatConfig::gtgraph(6, 500, 9);
        let direct: Vec<StreamEdge> = RmatGenerator::new(cfg).collect();
        let mut gen = RmatGenerator::new(cfg);
        assert_eq!(gen.remaining_hint(), Some(500));
        let mut buf = Vec::new();
        let mut chunked = Vec::new();
        while gen.fill_chunk(&mut buf, 64) > 0 {
            assert!(buf.len() <= 64);
            chunked.extend_from_slice(&buf);
        }
        assert_eq!(chunked, direct);
    }

    #[test]
    fn empty_sources_report_exhaustion_immediately() {
        let mut buf = vec![StreamEdge::unit(Edge::new(1u32, 2u32), 0)];
        assert_eq!(SliceSource::new(&[]).fill_chunk(&mut buf, 8), 0);
        assert!(buf.is_empty(), "fill_chunk must clear the buffer");
        let mut it = std::iter::empty::<StreamEdge>();
        assert_eq!(it.fill_chunk(&mut buf, 8), 0);
    }
}
