//! Directed edges and timestamped stream elements (§3.1 of the paper).

use crate::vertex::VertexId;
use serde::{Deserialize, Serialize};
use sketch::hash::combine64;
use std::fmt;

/// A directed edge `(src, dst)` of the underlying graph `G = (V, E)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex (the paper partitions by source).
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
}

impl Edge {
    /// Construct an edge.
    #[inline]
    pub fn new(src: impl Into<VertexId>, dst: impl Into<VertexId>) -> Self {
        Self {
            src: src.into(),
            dst: dst.into(),
        }
    }

    /// The 64-bit sketch key for this edge — the interned equivalent of
    /// the paper's `l(x) ⊕ l(y)` label concatenation. Order sensitive.
    #[inline]
    pub fn key(&self) -> u64 {
        combine64(self.src.as_u64(), self.dst.as_u64())
    }

    /// The same edge with endpoints swapped.
    #[inline]
    pub fn reversed(&self) -> Self {
        Self {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Canonical direction for undirected inputs: lexicographic order on
    /// the ids (the paper's footnote 1 uses label order; interned ids are
    /// assigned in first-seen label order, which preserves determinism).
    #[inline]
    pub fn canonical(&self) -> Self {
        if self.src <= self.dst {
            *self
        } else {
            self.reversed()
        }
    }

    /// Whether this is a self-loop.
    #[inline]
    pub fn is_loop(&self) -> bool {
        self.src == self.dst
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.src, self.dst)
    }
}

/// One graph-stream arrival `(x_i, y_i; t_i)` with frequency
/// `f(x_i, y_i, t_i)` (default 1, §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamEdge {
    /// The edge that arrived.
    pub edge: Edge,
    /// Arrival timestamp (monotone non-decreasing within a stream).
    pub ts: u64,
    /// Weight of this arrival (e.g. seconds of a phone call).
    pub weight: u64,
}

impl StreamEdge {
    /// An arrival with explicit weight.
    #[inline]
    pub fn weighted(edge: Edge, ts: u64, weight: u64) -> Self {
        Self { edge, ts, weight }
    }

    /// An unweighted arrival (`f = 1`, the paper's default).
    #[inline]
    pub fn unit(edge: Edge, ts: u64) -> Self {
        Self {
            edge,
            ts,
            weight: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_direction_sensitive() {
        let e = Edge::new(1u32, 2u32);
        assert_ne!(e.key(), e.reversed().key());
        assert_eq!(e.key(), Edge::new(1u32, 2u32).key());
    }

    #[test]
    fn canonical_orders_endpoints() {
        let e = Edge::new(5u32, 3u32);
        assert_eq!(e.canonical(), Edge::new(3u32, 5u32));
        assert_eq!(e.canonical(), e.reversed().canonical());
        let already = Edge::new(1u32, 9u32);
        assert_eq!(already.canonical(), already);
    }

    #[test]
    fn loop_detection() {
        assert!(Edge::new(4u32, 4u32).is_loop());
        assert!(!Edge::new(4u32, 5u32).is_loop());
    }

    #[test]
    fn display_format() {
        assert_eq!(Edge::new(1u32, 2u32).to_string(), "v1->v2");
    }

    #[test]
    fn stream_edge_constructors() {
        let e = Edge::new(0u32, 1u32);
        assert_eq!(StreamEdge::unit(e, 9).weight, 1);
        assert_eq!(StreamEdge::weighted(e, 9, 30).weight, 30);
        assert_eq!(StreamEdge::unit(e, 9).ts, 9);
    }

    #[test]
    fn distinct_edges_have_distinct_keys_mostly() {
        use std::collections::HashSet;
        let mut keys = HashSet::new();
        for s in 0..200u32 {
            for d in 0..200u32 {
                keys.insert(Edge::new(s, d).key());
            }
        }
        assert_eq!(keys.len(), 200 * 200, "64-bit keys should not collide here");
    }
}
