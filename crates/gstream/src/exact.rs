//! Exact frequency accounting — the evaluation ground truth.
//!
//! Experiments need the true frequency `f(q)` of each queried edge to
//! compute relative errors (Eq. 12). The paper's streams are small enough
//! at laptop scale to count exactly with a hash map; this is strictly an
//! evaluation aid, never part of the sketch data path.

use crate::edge::{Edge, StreamEdge};
use crate::fxhash::FxHashMap;
use crate::vertex::VertexId;

/// Exact per-edge and per-vertex frequency counts for a stream.
#[derive(Debug, Default, Clone)]
pub struct ExactCounter {
    edges: FxHashMap<Edge, u64>,
    total: u64,
    arrivals: u64,
}

impl ExactCounter {
    /// Create an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count every arrival of `stream`.
    pub fn from_stream<'a, I: IntoIterator<Item = &'a StreamEdge>>(stream: I) -> Self {
        let mut c = Self::new();
        for se in stream {
            c.observe(se);
        }
        c
    }

    /// Record one arrival.
    #[inline]
    pub fn observe(&mut self, se: &StreamEdge) {
        *self.edges.entry(se.edge).or_insert(0) += se.weight;
        self.total += se.weight;
        self.arrivals += 1;
    }

    /// True aggregate frequency `f(x, y)` of an edge.
    #[inline]
    pub fn frequency(&self, edge: Edge) -> u64 {
        self.edges.get(&edge).copied().unwrap_or(0)
    }

    /// Total weight over all arrivals (`N` of Equation 1).
    pub fn total_weight(&self) -> u64 {
        self.total
    }

    /// Number of stream arrivals (elements, not weight).
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Number of distinct edges.
    pub fn distinct_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterate over `(edge, frequency)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Edge, u64)> + '_ {
        self.edges.iter().map(|(&e, &f)| (e, f))
    }

    /// Relative vertex frequency `fv(i) = Σ_j f(i, j)` (Equation 2) and
    /// out-degree `d(i)` (Equation 3) for every source vertex.
    pub fn vertex_profile(&self) -> FxHashMap<VertexId, VertexProfile> {
        let mut out: FxHashMap<VertexId, VertexProfile> = FxHashMap::default();
        for (&edge, &f) in &self.edges {
            let p = out.entry(edge.src).or_default();
            p.frequency += f;
            p.out_degree += 1;
        }
        out
    }

    /// The distinct edges emanating from each source vertex.
    pub fn adjacency(&self) -> FxHashMap<VertexId, Vec<(VertexId, u64)>> {
        let mut adj: FxHashMap<VertexId, Vec<(VertexId, u64)>> = FxHashMap::default();
        for (&edge, &f) in &self.edges {
            adj.entry(edge.src).or_default().push((edge.dst, f));
        }
        for targets in adj.values_mut() {
            targets.sort_unstable();
        }
        adj
    }
}

/// Exact per-source-vertex statistics: `fv(i)` and `d(i)`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VertexProfile {
    /// `fv(i)`: summed frequency of edges emanating from the vertex.
    pub frequency: u64,
    /// `d(i)`: number of distinct out-edges.
    pub out_degree: u64,
}

impl VertexProfile {
    /// Average frequency of the edges emanating from the vertex,
    /// `fv(i)/d(i)` — the quantity the partitioner sorts on.
    pub fn avg_edge_frequency(&self) -> f64 {
        if self.out_degree == 0 {
            0.0
        } else {
            self.frequency as f64 / self.out_degree as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn se(s: u32, d: u32, w: u64) -> StreamEdge {
        StreamEdge::weighted(Edge::new(s, d), 0, w)
    }

    #[test]
    fn counts_weights_and_arrivals() {
        let stream = vec![se(1, 2, 3), se(1, 2, 1), se(2, 3, 5)];
        let c = ExactCounter::from_stream(&stream);
        assert_eq!(c.frequency(Edge::new(1u32, 2u32)), 4);
        assert_eq!(c.frequency(Edge::new(2u32, 3u32)), 5);
        assert_eq!(c.frequency(Edge::new(9u32, 9u32)), 0);
        assert_eq!(c.total_weight(), 9);
        assert_eq!(c.arrivals(), 3);
        assert_eq!(c.distinct_edges(), 2);
    }

    #[test]
    fn direction_matters() {
        let stream = vec![se(1, 2, 1), se(2, 1, 1)];
        let c = ExactCounter::from_stream(&stream);
        assert_eq!(c.frequency(Edge::new(1u32, 2u32)), 1);
        assert_eq!(c.frequency(Edge::new(2u32, 1u32)), 1);
        assert_eq!(c.distinct_edges(), 2);
    }

    #[test]
    fn vertex_profile_matches_equations_two_and_three() {
        let stream = vec![se(1, 2, 4), se(1, 3, 2), se(1, 2, 1), se(5, 1, 7)];
        let c = ExactCounter::from_stream(&stream);
        let prof = c.vertex_profile();
        let v1 = prof[&VertexId(1)];
        assert_eq!(v1.frequency, 7); // 4+1 on (1,2) plus 2 on (1,3)
        assert_eq!(v1.out_degree, 2); // distinct out-edges (1,2), (1,3)
        assert!((v1.avg_edge_frequency() - 3.5).abs() < 1e-12);
        let v5 = prof[&VertexId(5)];
        assert_eq!(v5.frequency, 7);
        assert_eq!(v5.out_degree, 1);
        // Vertex 2 has no out-edges: absent from the profile.
        assert!(!prof.contains_key(&VertexId(2)));
    }

    #[test]
    fn adjacency_sorted_per_source() {
        let stream = vec![se(1, 9, 1), se(1, 2, 1), se(1, 5, 2)];
        let c = ExactCounter::from_stream(&stream);
        let adj = c.adjacency();
        let targets: Vec<u32> = adj[&VertexId(1)].iter().map(|&(v, _)| v.0).collect();
        assert_eq!(targets, vec![2, 5, 9]);
    }

    #[test]
    fn empty_profile_avg_is_zero() {
        assert_eq!(VertexProfile::default().avg_edge_frequency(), 0.0);
    }
}
