//! Property-based tests of the gSketch core invariants: for ANY stream,
//! sample, memory budget and seed, the assembled system must preserve
//! the CountMin one-sided guarantee, conserve weight, respect memory,
//! and route deterministically.

use gsketch::{EdgeSink, GSketch, SketchId, WidthAllocation};
use gstream::edge::{Edge, StreamEdge};
use gstream::exact::ExactCounter;
use proptest::collection::vec;
use proptest::prelude::*;

fn to_stream(raw: &[(u16, u16, u8)]) -> Vec<StreamEdge> {
    raw.iter()
        .enumerate()
        .map(|(i, &(s, d, w))| {
            StreamEdge::weighted(Edge::new(s as u32, d as u32), i as u64, w as u64 + 1)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One-sided estimates for any stream/sample/seed/allocation combo.
    #[test]
    fn estimates_one_sided(
        raw in vec((0u16..60, 0u16..60, any::<u8>()), 1..250),
        sample_div in 2usize..8,
        seed in any::<u64>(),
        equal_split in any::<bool>(),
    ) {
        let stream = to_stream(&raw);
        let sample = &stream[..stream.len() / sample_div];
        let allocation = if equal_split {
            WidthAllocation::EqualSplit
        } else {
            WidthAllocation::Optimal
        };
        let mut gs = GSketch::builder()
            .memory_bytes(16 << 10)
            .min_width(8)
            .allocation(allocation)
            .seed(seed)
            .build_from_sample(sample)
            .unwrap();
        gs.ingest(&stream);
        let truth = ExactCounter::from_stream(&stream);
        for (edge, f) in truth.iter() {
            prop_assert!(gs.estimate(edge) >= f);
        }
    }

    /// Weight conservation and routing consistency: update and estimate
    /// must agree on the sketch for every edge.
    #[test]
    fn weight_conserved_and_routing_stable(
        raw in vec((0u16..40, 0u16..40, any::<u8>()), 1..200),
        seed in any::<u64>(),
    ) {
        let stream = to_stream(&raw);
        let sample = &stream[..stream.len().div_ceil(4)];
        let mut gs = GSketch::builder()
            .memory_bytes(16 << 10)
            .min_width(8)
            .seed(seed)
            .build_from_sample(sample)
            .unwrap();
        gs.ingest(&stream);
        let total: u64 = stream.iter().map(|se| se.weight).sum();
        prop_assert_eq!(gs.total_weight(), total);
        // Routing is a pure function.
        for se in &stream {
            prop_assert_eq!(gs.route(se.edge), gs.route(se.edge));
        }
    }

    /// The memory budget is never exceeded, calibrated or not.
    #[test]
    fn memory_budget_respected(
        raw in vec((0u16..50, 0u16..50, any::<u8>()), 1..200),
        memory_kb in 2usize..128,
        seed in any::<u64>(),
        calibrated in any::<bool>(),
    ) {
        let stream = to_stream(&raw);
        let sample = &stream[..stream.len().div_ceil(4)];
        let builder = GSketch::builder()
            .memory_bytes(memory_kb << 10)
            .min_width(8)
            .seed(seed);
        let gs = if calibrated {
            builder.build_from_sample_calibrated(sample, &stream).unwrap()
        } else {
            builder.build_from_sample(sample).unwrap()
        };
        prop_assert!(gs.bytes() <= memory_kb << 10,
            "{} > {}", gs.bytes(), memory_kb << 10);
    }

    /// Every vertex appearing as a source in the sample routes to a
    /// partition; everything else routes to the outlier.
    #[test]
    fn sample_vertices_get_partitions(
        raw in vec((0u16..30, 0u16..30, any::<u8>()), 4..150),
        seed in any::<u64>(),
    ) {
        let stream = to_stream(&raw);
        let half = stream.len() / 2;
        let sample = &stream[..half.max(1)];
        let gs = GSketch::builder()
            .memory_bytes(32 << 10)
            .min_width(8)
            .seed(seed)
            .build_from_sample(sample)
            .unwrap();
        let sampled: std::collections::HashSet<u32> =
            sample.iter().map(|se| se.edge.src.0).collect();
        for se in &stream {
            let route = gs.route(se.edge);
            if sampled.contains(&se.edge.src.0) {
                prop_assert!(matches!(route, SketchId::Partition(_)),
                    "sampled vertex routed to outlier");
            } else {
                prop_assert_eq!(route, SketchId::Outlier);
            }
        }
    }

    /// Estimates are monotone in the stream: ingesting more arrivals
    /// never lowers an estimate.
    #[test]
    fn estimates_monotone_in_stream(
        raw in vec((0u16..30, 0u16..30, any::<u8>()), 2..120),
        seed in any::<u64>(),
    ) {
        let stream = to_stream(&raw);
        let sample = &stream[..stream.len().div_ceil(4)];
        let mut gs = GSketch::builder()
            .memory_bytes(16 << 10)
            .min_width(8)
            .seed(seed)
            .build_from_sample(sample)
            .unwrap();
        let probe_edge = stream[0].edge;
        let mut last = 0u64;
        for se in &stream {
            gs.update(*se);
            let now = gs.estimate(probe_edge);
            prop_assert!(now >= last, "estimate decreased");
            last = now;
        }
    }
}
