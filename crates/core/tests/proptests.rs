//! Property-based tests of the gSketch core invariants: for ANY stream,
//! sample, memory budget and seed, the assembled system must preserve
//! the CountMin one-sided guarantee, conserve weight, respect memory,
//! and route deterministically.

use gsketch::{EdgeSink, GSketch, SketchId, WidthAllocation};
use gstream::edge::{Edge, StreamEdge};
use gstream::exact::ExactCounter;
use proptest::collection::vec;
use proptest::prelude::*;

fn to_stream(raw: &[(u16, u16, u8)]) -> Vec<StreamEdge> {
    raw.iter()
        .enumerate()
        .map(|(i, &(s, d, w))| {
            StreamEdge::weighted(Edge::new(s as u32, d as u32), i as u64, w as u64 + 1)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One-sided estimates for any stream/sample/seed/allocation combo.
    #[test]
    fn estimates_one_sided(
        raw in vec((0u16..60, 0u16..60, any::<u8>()), 1..250),
        sample_div in 2usize..8,
        seed in any::<u64>(),
        equal_split in any::<bool>(),
    ) {
        let stream = to_stream(&raw);
        let sample = &stream[..stream.len() / sample_div];
        let allocation = if equal_split {
            WidthAllocation::EqualSplit
        } else {
            WidthAllocation::Optimal
        };
        let mut gs = GSketch::builder()
            .memory_bytes(16 << 10)
            .min_width(8)
            .allocation(allocation)
            .seed(seed)
            .build_from_sample(sample)
            .unwrap();
        gs.ingest(&stream);
        let truth = ExactCounter::from_stream(&stream);
        for (edge, f) in truth.iter() {
            prop_assert!(gs.estimate(edge) >= f);
        }
    }

    /// Weight conservation and routing consistency: update and estimate
    /// must agree on the sketch for every edge.
    #[test]
    fn weight_conserved_and_routing_stable(
        raw in vec((0u16..40, 0u16..40, any::<u8>()), 1..200),
        seed in any::<u64>(),
    ) {
        let stream = to_stream(&raw);
        let sample = &stream[..stream.len().div_ceil(4)];
        let mut gs = GSketch::builder()
            .memory_bytes(16 << 10)
            .min_width(8)
            .seed(seed)
            .build_from_sample(sample)
            .unwrap();
        gs.ingest(&stream);
        let total: u64 = stream.iter().map(|se| se.weight).sum();
        prop_assert_eq!(gs.total_weight(), total);
        // Routing is a pure function.
        for se in &stream {
            prop_assert_eq!(gs.route(se.edge), gs.route(se.edge));
        }
    }

    /// The memory budget is never exceeded, calibrated or not.
    #[test]
    fn memory_budget_respected(
        raw in vec((0u16..50, 0u16..50, any::<u8>()), 1..200),
        memory_kb in 2usize..128,
        seed in any::<u64>(),
        calibrated in any::<bool>(),
    ) {
        let stream = to_stream(&raw);
        let sample = &stream[..stream.len().div_ceil(4)];
        let builder = GSketch::builder()
            .memory_bytes(memory_kb << 10)
            .min_width(8)
            .seed(seed);
        let gs = if calibrated {
            builder.build_from_sample_calibrated(sample, &stream).unwrap()
        } else {
            builder.build_from_sample(sample).unwrap()
        };
        prop_assert!(gs.bytes() <= memory_kb << 10,
            "{} > {}", gs.bytes(), memory_kb << 10);
    }

    /// Every vertex appearing as a source in the sample routes to a
    /// partition; everything else routes to the outlier.
    #[test]
    fn sample_vertices_get_partitions(
        raw in vec((0u16..30, 0u16..30, any::<u8>()), 4..150),
        seed in any::<u64>(),
    ) {
        let stream = to_stream(&raw);
        let half = stream.len() / 2;
        let sample = &stream[..half.max(1)];
        let gs = GSketch::builder()
            .memory_bytes(32 << 10)
            .min_width(8)
            .seed(seed)
            .build_from_sample(sample)
            .unwrap();
        let sampled: std::collections::HashSet<u32> =
            sample.iter().map(|se| se.edge.src.0).collect();
        for se in &stream {
            let route = gs.route(se.edge);
            if sampled.contains(&se.edge.src.0) {
                prop_assert!(matches!(route, SketchId::Partition(_)),
                    "sampled vertex routed to outlier");
            } else {
                prop_assert_eq!(route, SketchId::Outlier);
            }
        }
    }

    /// Estimates are monotone in the stream: ingesting more arrivals
    /// never lowers an estimate.
    #[test]
    fn estimates_monotone_in_stream(
        raw in vec((0u16..30, 0u16..30, any::<u8>()), 2..120),
        seed in any::<u64>(),
    ) {
        let stream = to_stream(&raw);
        let sample = &stream[..stream.len().div_ceil(4)];
        let mut gs = GSketch::builder()
            .memory_bytes(16 << 10)
            .min_width(8)
            .seed(seed)
            .build_from_sample(sample)
            .unwrap();
        let probe_edge = stream[0].edge;
        let mut last = 0u64;
        for se in &stream {
            gs.update(*se);
            let now = gs.estimate(probe_edge);
            prop_assert!(now >= last, "estimate decreased");
            last = now;
        }
    }
}

// ---------------------------------------------------------------------------
// Windowed snapshot round-trips (DESIGN.md §13)
// ---------------------------------------------------------------------------

use gsketch::{
    load_windowed_backend, save_windowed, CmArena, CountMinSketch, CountSketch, FrequencySketch,
    WindowConfig, WindowedGSketch,
};

fn temp_snapshot_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("gsketch_core_proptests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}_{}_{}.wsnap",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Save the half-ingested deployment, ingest the rest, append, load,
/// and require bit-identical interval answers — then resume ingest on
/// BOTH instances (pinning reservoir + RNG fidelity through the
/// snapshot) and require identity again.
fn exercise_windowed_round_trip<B: FrequencySketch>(
    stream: &[StreamEdge],
    seed: u64,
    keep: Option<usize>,
) {
    let cfg = WindowConfig {
        span: 16,
        memory_bytes_per_window: 8 << 10,
        sample_capacity: 24,
        seed,
    };
    let builder = GSketch::builder().min_width(8);
    let mut live: WindowedGSketch<B> = match keep {
        Some(k) => WindowedGSketch::with_horizon_backend(cfg, builder, k),
        None => WindowedGSketch::new_backend(cfg, builder),
    }
    .unwrap();
    let path = temp_snapshot_path(B::KIND);
    let half = stream.len() / 2;
    for se in &stream[..half] {
        live.try_insert(*se).unwrap();
    }
    save_windowed(&path, &live).unwrap();
    for se in &stream[half..] {
        live.try_insert(*se).unwrap();
    }
    save_windowed(&path, &live).unwrap(); // incremental append
    let mut loaded: WindowedGSketch<B> = load_windowed_backend(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let edges: Vec<Edge> = stream.iter().take(24).map(|se| se.edge).collect();
    let t_max = stream.last().map_or(0, |se| se.ts);
    let intervals = [
        (0, u64::MAX),
        (0, 7),
        (5, t_max),
        (t_max / 2, t_max / 2 + 3),
    ];
    let (mut a, mut b) = (Vec::new(), Vec::new());
    let (mut da, mut db) = (Vec::new(), Vec::new());
    for &(ts, te) in &intervals {
        live.estimate_interval_batch(&edges, ts, te, &mut a);
        loaded.estimate_interval_batch(&edges, ts, te, &mut b);
        prop_assert_eq!(&a, &b, "plain mismatch over [{}, {}] ({})", ts, te, B::KIND);
        live.estimate_interval_detailed_batch(&edges, ts, te, &mut da);
        loaded.estimate_interval_detailed_batch(&edges, ts, te, &mut db);
        prop_assert_eq!(
            &da,
            &db,
            "detailed mismatch over [{}, {}] ({})",
            ts,
            te,
            B::KIND
        );
    }
    // Resume: the restored instance must continue exactly like the live
    // one — window rotations, reservoir offers, and (with a horizon)
    // coarsening included.
    for i in 0..40u64 {
        let se = StreamEdge::unit(Edge::new((i % 5) as u32, (i % 3) as u32), t_max + i);
        live.try_insert(se).unwrap();
        loaded.try_insert(se).unwrap();
    }
    for &(ts, te) in &intervals {
        live.estimate_interval_detailed_batch(&edges, ts, te, &mut da);
        loaded.estimate_interval_detailed_batch(&edges, ts, te, &mut db);
        prop_assert_eq!(
            &da,
            &db,
            "post-resume mismatch over [{}, {}] ({})",
            ts,
            te,
            B::KIND
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For ANY stream, seed, and horizon setting, a windowed snapshot —
    /// fresh or appended — restores an instance bit-identical to the
    /// live one, across all three synopsis backends.
    #[test]
    fn windowed_snapshots_round_trip_across_backends(
        raw in vec((0u16..20, 0u16..20, any::<u8>()), 2..160),
        seed in any::<u64>(),
        keep_raw in 0usize..4,
    ) {
        let stream = to_stream(&raw);
        // 0 means "no horizon"; 1..4 coarsen sealed history into tiers.
        let keep = (keep_raw > 0).then_some(keep_raw);
        exercise_windowed_round_trip::<CmArena>(&stream, seed, keep);
        exercise_windowed_round_trip::<CountMinSketch>(&stream, seed, keep);
        exercise_windowed_round_trip::<CountSketch>(&stream, seed, keep);
    }
}
