//! Tests pinning the zero-frequency pre-filter contract (DESIGN.md §12):
//! present-key answers are bit-identical with the filter on or off, no
//! ingested key is ever answered below its CountMin estimate (Bloom
//! filters have no false negatives), absent keys only ever move *down*
//! (toward the exact answer `0`), the filter's bytes are charged against
//! the same `--memory` budget as the counters, and windowed rotation
//! starts each window with empty membership.

use gsketch::{
    persist, CmArena, ConcurrentGSketch, CountMinSketch, CountSketch, EdgeEstimator, EdgeSink,
    GSketch, GSketchBuilder, ReplayEngine, WindowConfig, WindowedGSketch,
};
use gstream::edge::{Edge, StreamEdge};
use gstream::exact::ExactCounter;
use proptest::collection::vec;
use proptest::prelude::*;

type Arrival = (u32, u32, u8);

fn stream_of(arrivals: &[Arrival]) -> Vec<StreamEdge> {
    arrivals
        .iter()
        .enumerate()
        .map(|(t, &(s, d, w))| StreamEdge::weighted(Edge::new(s, d), t as u64, u64::from(w) + 1))
        .collect()
}

fn builder(memory: usize, seed: u64) -> GSketchBuilder {
    GSketch::builder()
        .memory_bytes(memory)
        .depth(3)
        .min_width(16)
        .seed(seed)
}

/// Keys guaranteed absent: destination vertices far outside the range
/// any generated stream uses.
fn absent_probes(n: u32) -> Vec<Edge> {
    (0..n).map(|v| Edge::new(v, 1_000_000u32 + v)).collect()
}

/// The pinning test for the memory-accounting satellite: the filter's
/// bytes are real, show up in `bytes()`, and the combined budget split
/// (counter cells + filter blocks) never exceeds the requested
/// `memory_bytes` — with the filter on or off.
#[test]
fn filter_bytes_charged_against_budget() {
    let sample = stream_of(&[(1, 2, 1), (3, 4, 1), (5, 6, 1)]);
    for memory in [16usize << 10, 64 << 10, 1 << 20] {
        let on = builder(memory, 7).build_from_sample(&sample).unwrap();
        let off = builder(memory, 7)
            .prefilter(false)
            .build_from_sample(&sample)
            .unwrap();
        assert!(on.prefilter_bytes() > 0, "filter should materialize");
        assert!(on.prefilter_enabled());
        assert_eq!(off.prefilter_bytes(), 0);
        assert!(!off.prefilter_enabled());
        // The whole synopsis — counters plus filter — fits the budget.
        assert!(on.bytes() <= memory, "{} > {}", on.bytes(), memory);
        assert!(off.bytes() <= memory);
        // The filter is a bounded slice of the budget, not a second
        // budget: it never exceeds the 1/16 carve (rounded up to the
        // one-block-per-slot floor).
        assert!(
            on.prefilter_bytes() <= memory / 16 + 64 * on.num_partitions(),
            "filter {} too large for budget {}",
            on.prefilter_bytes(),
            memory
        );
        // Disabling the filter hands the carve back to the counters.
        assert!(off.bytes() >= on.bytes() - on.prefilter_bytes());
    }
}

/// Snapshot round-trip carries membership: a reloaded sketch answers
/// every query — present and absent — bit-identically, and keeps the
/// filter's memory accounting.
#[test]
fn snapshot_round_trip_preserves_filter() {
    let stream = stream_of(&[(1, 2, 3), (3, 4, 5), (5, 6, 7), (1, 2, 1)]);
    let mut gs = builder(32 << 10, 11).build_from_sample(&stream).unwrap();
    gs.ingest(&stream);
    let mut buf = Vec::new();
    persist::write_gsketch(&mut buf, &gs).unwrap();
    let back: GSketch = persist::read_gsketch(&buf[..]).unwrap();
    assert_eq!(back.prefilter_bytes(), gs.prefilter_bytes());
    let queries: Vec<Edge> = stream
        .iter()
        .map(|se| se.edge)
        .chain(absent_probes(32))
        .collect();
    let (mut a, mut b) = (Vec::new(), Vec::new());
    gs.estimate_edges(&queries, &mut a);
    back.estimate_edges(&queries, &mut b);
    assert_eq!(a, b);
    for p in absent_probes(32) {
        assert_eq!(back.estimate(p), 0, "absent key must stay exactly 0");
    }
}

/// Old snapshots (no `filter` field) still load, as a filterless sketch.
#[test]
fn snapshot_without_filter_field_loads_filterless() {
    let stream = stream_of(&[(1, 2, 3), (3, 4, 5)]);
    let mut gs = builder(16 << 10, 3)
        .prefilter(false)
        .build_from_sample(&stream)
        .unwrap();
    gs.ingest(&stream);
    let mut buf = Vec::new();
    persist::write_gsketch(&mut buf, &gs).unwrap();
    let back: GSketch = persist::read_gsketch(&buf[..]).unwrap();
    assert_eq!(back.prefilter_bytes(), 0);
    for se in &stream {
        assert_eq!(back.estimate(se.edge), gs.estimate(se.edge));
    }
}

/// Windowed rotation clears membership: each window's sketch is built
/// fresh, so a key ingested only in window 1 is *provably absent* from
/// window 2's filter and an interval query confined to window 2 answers
/// exactly zero — no collision noise from a key that never arrived
/// there. (Deterministic seed; the probe key is not a false positive.)
#[test]
fn windowed_rotation_clears_membership() {
    let cfg = WindowConfig {
        span: 10,
        memory_bytes_per_window: 1 << 13,
        sample_capacity: 32,
        seed: 5,
    };
    let mut w = WindowedGSketch::new(cfg, GSketch::builder().min_width(16).depth(3)).unwrap();
    let hot = Edge::new(1u32, 2u32);
    // Window 1: hammer one edge.
    let w1: Vec<StreamEdge> = (0..9u64)
        .map(|t| StreamEdge::weighted(hot, t, 50))
        .collect();
    w.ingest(&w1);
    // Window 2: unrelated traffic only (rotates the sketch).
    let w2: Vec<StreamEdge> = (10..19u64)
        .map(|t| StreamEdge::unit(Edge::new(7u32, 8u32), t))
        .collect();
    w.ingest(&w2);
    assert_eq!(w.sealed_windows(), 1);
    // Confined to window 2, the window-1 edge answers exactly 0.
    assert_eq!(w.estimate_interval(hot, 10, 19), 0.0);
    // And it is still fully visible in its own window.
    assert!(w.estimate_interval(hot, 0, 9) >= 450.0);
}

/// Merge unions membership: a key ingested only on one worker stays
/// answerable (no false negative) after merging into the other, and
/// merging a filtered sketch with a filterless one is rejected rather
/// than silently dropping membership.
#[test]
fn merge_unions_membership_and_rejects_mismatch() {
    let stream = stream_of(&[(1, 2, 3), (3, 4, 5), (5, 6, 7), (7, 8, 2)]);
    let empty = builder(16 << 10, 9).build_from_sample(&stream).unwrap();
    let mut a = empty.clone();
    let mut b = empty.clone();
    a.ingest(&stream[..2]);
    b.ingest(&stream[2..]);
    a.merge(&b).unwrap();
    let mut serial = empty;
    serial.ingest(&stream);
    for se in &stream {
        assert_eq!(a.estimate(se.edge), serial.estimate(se.edge));
    }
    // Filtered × filterless is a build mismatch, not a silent union.
    let mut filterless = builder(16 << 10, 9)
        .prefilter(false)
        .build_from_sample(&stream)
        .unwrap();
    assert!(a.merge(&filterless).is_err());
    assert!(filterless.merge(&a).is_err());
}

/// Shared-reference concurrent ingest maintains membership, and the
/// read-side toggle works on the thawed sketch: absent keys answer 0
/// with the filter on and at least that with it off (collision noise
/// only ever raises a CountMin answer).
#[test]
fn concurrent_ingest_maintains_membership() {
    let stream = stream_of(&[(1, 2, 3), (3, 4, 5), (5, 6, 7)]);
    let empty = builder(16 << 10, 13).build_from_sample(&stream).unwrap();
    let c = ConcurrentGSketch::from_gsketch(empty);
    let mut sink: &ConcurrentGSketch = &c;
    for se in &stream {
        sink.update(*se);
    }
    for p in absent_probes(16) {
        assert_eq!(c.estimate(p), 0);
    }
    let mut g = c.into_gsketch();
    for se in &stream {
        assert!(g.estimate(se.edge) >= se.weight);
    }
    for p in absent_probes(16) {
        assert_eq!(g.estimate(p), 0);
        g.set_prefilter(false);
        let unfiltered = g.estimate(p);
        g.set_prefilter(true);
        assert!(unfiltered >= g.estimate(p));
    }
}

/// The ARE satellite's acceptance check in test form: on a sparse
/// workload (many never-ingested keys), the filtered sketch's average
/// relative error is no worse than the unfiltered one's — absent keys
/// go from collision overestimates to the exact answer, present keys
/// are untouched.
#[test]
fn sparse_workload_are_no_worse_with_filter() {
    let arrivals: Vec<Arrival> = (0..300u32).map(|i| (i % 40, (i * 7) % 40, 2)).collect();
    let stream = stream_of(&arrivals);
    // Small budget so collisions actually hurt the unfiltered answers.
    let mut gs = builder(4 << 10, 21).build_from_sample(&stream).unwrap();
    gs.ingest(&stream);
    let truth = ExactCounter::from_stream(&stream);
    let queries: Vec<Edge> = stream
        .iter()
        .map(|se| se.edge)
        .chain(absent_probes(900))
        .collect();
    let are = |gs: &GSketch| -> f64 {
        let mut out = Vec::new();
        gs.estimate_edges(&queries, &mut out);
        let sum: f64 = queries
            .iter()
            .zip(&out)
            .map(|(&q, &est)| {
                let t = truth.frequency(q);
                (est.abs_diff(t)) as f64 / (t.max(1)) as f64
            })
            .sum();
        sum / queries.len() as f64
    };
    let filtered = are(&gs);
    gs.set_prefilter(false);
    let unfiltered = are(&gs);
    assert!(
        filtered <= unfiltered,
        "filtered ARE {filtered} worse than unfiltered {unfiltered}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The accuracy contract, on every backend, for any stream and seed:
    /// present-key answers are bit-identical with the filter on or off
    /// (positives fall through to the same counters), absent keys only
    /// ever decrease (to 0 on a true negative, unchanged on a false
    /// positive), and no ingested key is ever answered below its exact
    /// count — Bloom membership has no false negatives, so the CountMin
    /// one-sided guarantee survives the short-circuit.
    #[test]
    fn filter_preserves_present_answers_on_every_backend(
        sample in vec((0u32..40, 0u32..40, 0u8..8), 1..100),
        tail in vec((0u32..60, 0u32..60, 0u8..8), 0..150),
        seed in any::<u64>(),
    ) {
        let sample = stream_of(&sample);
        let stream: Vec<StreamEdge> =
            sample.iter().chain(&stream_of(&tail)).copied().collect();

        fn check<B: gsketch::FrequencySketch>(
            sample: &[StreamEdge],
            stream: &[StreamEdge],
            seed: u64,
            one_sided: bool,
        ) {
            let mut on: GSketch<B> = GSketch::builder()
                .memory_bytes(1 << 13)
                .depth(3)
                .min_width(16)
                .seed(seed)
                .build_from_sample_backend(sample)
                .unwrap();
            on.ingest(stream);
            // The read-side toggle on identical state — the CLI's
            // `--prefilter off` — so counters and layout are shared and
            // any divergence is the filter's doing.
            let mut off = on.clone();
            off.set_prefilter(false);
            let truth = ExactCounter::from_stream(stream);

            // Present keys: scalar and batched answers bit-identical,
            // and never below the exact count.
            let present: Vec<Edge> = stream.iter().map(|se| se.edge).collect();
            let (mut a, mut b) = (Vec::new(), Vec::new());
            on.estimate_edges(&present, &mut a);
            off.estimate_edges(&present, &mut b);
            assert_eq!(a, b, "present-key batch diverged with filter on");
            for (edge, f) in truth.iter() {
                assert_eq!(on.estimate(edge), off.estimate(edge));
                // CountSketch's median estimator is two-sided, so the
                // never-underestimate check only applies to the
                // CountMin-family backends. (A filter false negative
                // would already trip the equality above: the filtered
                // answer would drop to 0 while the unfiltered one
                // reflects the key's real counts.)
                if one_sided {
                    assert!(on.estimate(edge) >= f, "false negative on {edge}");
                }
            }

            // Absent keys: filtered answer is 0 or the unfiltered
            // answer (false positives fall through untouched).
            for p in absent_probes(64) {
                let filtered = on.estimate(p);
                let unfiltered = off.estimate(p);
                assert!(filtered == 0 || filtered == unfiltered,
                    "absent {p}: filtered {filtered} vs unfiltered {unfiltered}");
            }
        }

        check::<CmArena>(&sample, &stream, seed, true);
        check::<CountMinSketch>(&sample, &stream, seed, true);
        check::<CountSketch>(&sample, &stream, seed, false);
    }

    /// The replay engine's miss batches inherit the short-circuit: for
    /// any interleaving of ingest and replay, the cached engine over a
    /// filtered sketch answers bit-identically to the bare filtered
    /// sketch — zeros for absent keys included — and caches them like
    /// any other answer.
    #[test]
    fn replay_engine_inherits_short_circuit(
        sample in vec((0u32..40, 0u32..40, 0u8..8), 1..80),
        tail in vec((0u32..60, 0u32..60, 0u8..8), 4..100),
        seed in any::<u64>(),
    ) {
        let sample = stream_of(&sample);
        let tail = stream_of(&tail);
        let empty: GSketch<CmArena> = GSketch::builder()
            .memory_bytes(1 << 13)
            .depth(3)
            .min_width(16)
            .seed(seed)
            .build_from_sample_backend(&sample)
            .unwrap();
        let mut bare = empty.clone();
        let mut engine = ReplayEngine::with_capacity(empty, 256);
        let queries: Vec<Edge> = tail
            .iter()
            .map(|se| se.edge)
            .chain(absent_probes(32))
            .collect();
        let (mut cached, mut plain) = (Vec::new(), Vec::new());
        let mid = tail.len() / 2;
        for chunk in [&tail[..mid], &tail[mid..]] {
            engine.ingest_batch(chunk);
            bare.ingest_batch(chunk);
            for _ in 0..2 {
                engine.estimate_edges(&queries, &mut cached);
                bare.estimate_edges(&queries, &mut plain);
                prop_assert_eq!(&cached, &plain);
            }
        }
        prop_assert!(engine.stats().hits > 0);
    }
}
