//! Property tests pinning the arena refactor's central invariant: the
//! contiguous-slab backend ([`CmArena`]) is *observationally identical*
//! to the per-partition CountMin layout it replaces — for any stream and
//! any seed, every estimate, total, route, and merge result agrees bit
//! for bit. This is what makes the arena a pure layout optimization
//! (DESIGN.md §2): both banks share one per-row hash family seeded from
//! the builder seed, so slot `i` of the arena holds exactly the cells
//! partition `i`'s standalone sketch would hold.

use gsketch::{
    AdaptiveConfig, AdaptiveGSketch, CmArena, ConcurrentGSketch, CountMinSketch, CountSketch,
    EdgeEstimator, EdgeSink, GSketch, GSketchBuilder, GlobalSketch, ParallelIngest, ParallelQuery,
    ReplayEngine, ShardedIngest, WindowConfig, WindowedGSketch,
};
use gstream::edge::{Edge, StreamEdge};
use gstream::SliceSource;
use proptest::collection::vec;
use proptest::prelude::*;

/// A raw (src, dst, weight) arrival.
type Arrival = (u32, u32, u8);

fn stream_of(arrivals: &[Arrival]) -> Vec<StreamEdge> {
    arrivals
        .iter()
        .enumerate()
        .map(|(t, &(s, d, w))| StreamEdge::weighted(Edge::new(s, d), t as u64, u64::from(w) + 1))
        .collect()
}

fn builder(memory: usize, depth: usize, seed: u64) -> GSketchBuilder {
    GSketch::builder()
        .memory_bytes(memory)
        .depth(depth)
        .min_width(16)
        .seed(seed)
}

/// Deterministic Fisher–Yates driven by an LCG, so query order is
/// proptest-controlled without depending on a shuffle strategy.
fn shuffle_edges(edges: &mut [Edge], seed: u64) {
    let mut x = seed | 1;
    for i in (1..edges.len()).rev() {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((x >> 33) as usize) % (i + 1);
        edges.swap(i, j);
    }
}

/// Both batched surfaces must answer exactly like their scalar
/// counterparts, element for element.
fn assert_batch_parity<E: EdgeEstimator>(est: &E, queries: &[Edge]) {
    let mut ints = Vec::new();
    est.estimate_edges(queries, &mut ints);
    assert_eq!(ints.len(), queries.len());
    for (&q, &v) in queries.iter().zip(&ints) {
        assert_eq!(v, est.estimate_edge(q), "integer surface diverged on {q}");
    }
    let mut fracs = Vec::new();
    est.estimate_edges_f64(queries, &mut fracs);
    assert_eq!(fracs.len(), queries.len());
    for (&q, &v) in queries.iter().zip(&fracs) {
        assert_eq!(
            v.to_bits(),
            est.estimate_edge_f64(q).to_bits(),
            "fractional surface diverged on {q}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any stream and seed, `GSketch<CmArena>` returns bit-identical
    /// estimates (and routes, totals, loads) to the per-partition
    /// `GSketch<CountMinSketch>` layout.
    #[test]
    fn arena_estimates_match_per_partition_layout(
        sample in vec((0u32..40, 0u32..40, 0u8..8), 1..120),
        tail in vec((0u32..60, 0u32..60, 0u8..8), 0..120),
        depth in 1usize..4,
        seed in any::<u64>(),
    ) {
        let sample = stream_of(&sample);
        let stream: Vec<StreamEdge> =
            sample.iter().chain(&stream_of(&tail)).copied().collect();

        let mut arena: GSketch<CmArena> = builder(1 << 13, depth, seed)
            .build_from_sample_backend(&sample)
            .unwrap();
        let mut pervec: GSketch<CountMinSketch> = builder(1 << 13, depth, seed)
            .build_from_sample_backend(&sample)
            .unwrap();

        prop_assert_eq!(arena.num_partitions(), pervec.num_partitions());
        prop_assert_eq!(arena.bytes(), pervec.bytes());

        arena.ingest(&stream);
        pervec.ingest(&stream);

        for se in &stream {
            prop_assert_eq!(arena.route(se.edge), pervec.route(se.edge));
            prop_assert_eq!(arena.estimate(se.edge), pervec.estimate(se.edge));
        }
        // Also probe edges that never arrived (pure collision noise must
        // agree too — same hash family, same cells).
        for v in 0..60u32 {
            let e = Edge::new(v, 999u32);
            prop_assert_eq!(arena.estimate(e), pervec.estimate(e));
        }
        prop_assert_eq!(arena.total_weight(), pervec.total_weight());
        prop_assert_eq!(arena.outlier_weight(), pervec.outlier_weight());
        prop_assert_eq!(arena.partition_loads(), pervec.partition_loads());
    }

    /// Batched ingest is estimate-identical to streaming ingest on both
    /// backends (counting-sort grouping must not reorder *within* a
    /// slot's saturating adds in any observable way).
    #[test]
    fn batched_ingest_matches_streaming(
        sample in vec((0u32..30, 0u32..30, 0u8..8), 1..80),
        depth in 1usize..4,
        seed in any::<u64>(),
    ) {
        let stream = stream_of(&sample);
        let mut streaming: GSketch<CmArena> = builder(1 << 12, depth, seed)
            .build_from_sample_backend(&stream)
            .unwrap();
        let mut batched = streaming.clone();
        streaming.ingest(&stream);
        batched.ingest_batch(&stream);
        for se in &stream {
            prop_assert_eq!(batched.estimate(se.edge), streaming.estimate(se.edge));
        }
        prop_assert_eq!(batched.total_weight(), streaming.total_weight());
    }

    /// The parallel sharded pipeline is observationally identical to
    /// sequential ingest: for any stream, seed, thread count, and chunk
    /// size, driving the atomic arena through `ParallelIngest` (staging
    /// buffers → combiner cache → slot-sorted span commits, with real
    /// oversubscribed worker threads) produces the same estimates and
    /// totals as `GSketch::ingest` of the same arrivals. Weights stay in
    /// the non-saturating regime, where the saturating-add semantics are
    /// exact addition — so parity is bit-for-bit.
    #[test]
    fn parallel_pipeline_matches_sequential_ingest(
        sample in vec((0u32..40, 0u32..40, 0u8..8), 1..120),
        tail in vec((0u32..60, 0u32..60, 0u8..8), 0..200),
        threads in 1usize..9,
        chunk in 1usize..600,
        depth in 1usize..4,
        seed in any::<u64>(),
    ) {
        let sample = stream_of(&sample);
        let stream: Vec<StreamEdge> =
            sample.iter().chain(&stream_of(&tail)).copied().collect();
        let empty: GSketch<CmArena> = builder(1 << 13, depth, seed)
            .build_from_sample_backend(&sample)
            .unwrap();

        let mut serial = empty.clone();
        serial.ingest(&stream);

        let mut concurrent = ConcurrentGSketch::from_gsketch(empty);
        let report = ParallelIngest::new_exclusive(&mut concurrent, threads)
            .chunk_capacity(chunk)
            .oversubscribe(true)
            .run(&mut SliceSource::new(&stream));
        prop_assert_eq!(report.arrivals as usize, stream.len());
        prop_assert_eq!(report.workers, threads);
        let parallel = concurrent.into_gsketch();

        for se in &stream {
            prop_assert_eq!(parallel.estimate(se.edge), serial.estimate(se.edge));
        }
        // Collision-only keys must agree too (same cells, same layout).
        for v in 0..60u32 {
            let e = Edge::new(v, 999u32);
            prop_assert_eq!(parallel.estimate(e), serial.estimate(e));
        }
        prop_assert_eq!(parallel.total_weight(), serial.total_weight());
        prop_assert_eq!(parallel.outlier_weight(), serial.outlier_weight());
        prop_assert_eq!(parallel.partition_loads(), serial.partition_loads());
    }

    /// `run_slice` (the zero-copy span-claiming pull mode) agrees with
    /// the generic source-based `run`.
    #[test]
    fn run_slice_matches_run(
        sample in vec((0u32..30, 0u32..30, 0u8..8), 1..150),
        threads in 1usize..5,
        seed in any::<u64>(),
    ) {
        let stream = stream_of(&sample);
        let empty: GSketch<CmArena> = builder(1 << 12, 2, seed)
            .build_from_sample_backend(&stream)
            .unwrap();
        let mut via_source = ConcurrentGSketch::from_gsketch(empty.clone());
        ParallelIngest::new_exclusive(&mut via_source, threads)
            .chunk_capacity(64)
            .oversubscribe(true)
            .run(&mut SliceSource::new(&stream));
        let mut via_slice = ConcurrentGSketch::from_gsketch(empty);
        ParallelIngest::new_exclusive(&mut via_slice, threads)
            .chunk_capacity(64)
            .oversubscribe(true)
            .run_slice(&stream);
        for se in &stream {
            prop_assert_eq!(via_slice.estimate(se.edge), via_source.estimate(se.edge));
        }
        prop_assert_eq!(via_slice.total_weight(), via_source.total_weight());
    }

    /// The batched query engine is observationally identical to the
    /// scalar loop on **every backend and every estimator** — for any
    /// stream, seed, and query batch, including duplicate keys (each
    /// query repeated `dup` times) and shuffled order. This pins the
    /// whole read-path refactor: counting-sort by slot, the arena's
    /// batched kernel (fold hoisting, fastmod, prefetch blocks,
    /// duplicate coalescing), and the provided defaults all answer bit
    /// for bit what `estimate_edge` answers.
    #[test]
    fn batched_queries_match_scalar_queries(
        sample in vec((0u32..40, 0u32..40, 0u8..8), 1..80),
        tail in vec((0u32..60, 0u32..60, 0u8..8), 0..120),
        dup in 1usize..4,
        shuffle_seed in any::<u64>(),
        depth in 1usize..4,
        seed in any::<u64>(),
    ) {
        let sample = stream_of(&sample);
        let stream: Vec<StreamEdge> =
            sample.iter().chain(&stream_of(&tail)).copied().collect();
        // Duplicate every stream edge `dup` times, add absent probes,
        // and shuffle, so runs of equal keys appear both adjacent (the
        // coalescing path) and scattered.
        let mut queries: Vec<Edge> = Vec::new();
        for se in &stream {
            for _ in 0..dup {
                queries.push(se.edge);
            }
        }
        for v in 0..20u32 {
            queries.push(Edge::new(v, 777u32));
        }
        shuffle_edges(&mut queries, shuffle_seed);

        // GSketch over every backend.
        let mut arena: GSketch<CmArena> = builder(1 << 13, depth, seed)
            .build_from_sample_backend(&sample)
            .unwrap();
        arena.ingest(&stream);
        assert_batch_parity(&arena, &queries);
        let mut pervec: GSketch<CountMinSketch> = builder(1 << 13, depth, seed)
            .build_from_sample_backend(&sample)
            .unwrap();
        pervec.ingest(&stream);
        assert_batch_parity(&pervec, &queries);
        let mut csketch: GSketch<CountSketch> = builder(1 << 13, depth, seed)
            .build_from_sample_backend(&sample)
            .unwrap();
        csketch.ingest(&stream);
        assert_batch_parity(&csketch, &queries);

        // The global baseline and the concurrent deployment.
        let mut global = GlobalSketch::new(1 << 12, depth, seed).unwrap();
        global.ingest(&stream);
        assert_batch_parity(&global, &queries);
        let concurrent = ConcurrentGSketch::from_gsketch(arena.clone());
        assert_batch_parity(&concurrent, &queries);

        // The windowed deployment (re-timestamped so windows rotate) —
        // its fractional surface must match `estimate_lifetime` to the
        // bit, with rounding applied once per edge on the integer path.
        let mut wstream = stream.clone();
        for (t, se) in wstream.iter_mut().enumerate() {
            se.ts = t as u64;
        }
        let mut windowed = WindowedGSketch::new(
            WindowConfig {
                span: 40,
                memory_bytes_per_window: 1 << 12,
                sample_capacity: 32,
                seed,
            },
            GSketch::builder().min_width(16).depth(depth),
        )
        .unwrap();
        windowed.ingest(&wstream);
        assert_batch_parity(&windowed, &queries);

        // The adaptive deployment, straddling its switchover.
        let mut adaptive = AdaptiveGSketch::new(AdaptiveConfig {
            memory_bytes: 1 << 13,
            warmup_arrivals: (stream.len() as u64 / 2).max(1),
            depth,
            min_width: 16,
            seed,
            ..AdaptiveConfig::default()
        })
        .unwrap();
        adaptive.ingest(&stream);
        assert_batch_parity(&adaptive, &queries);

        // Parallel fan-out answers bit-identically to the sequential
        // batch, with real oversubscribed threads.
        let mut sequential = Vec::new();
        arena.estimate_edges(&queries, &mut sequential);
        for threads in [2usize, 5] {
            let pq = ParallelQuery::new(&arena, threads).oversubscribe(true);
            let mut parallel = Vec::new();
            pq.estimate_edges(&queries, &mut parallel);
            prop_assert_eq!(&parallel, &sequential, "{} workers", threads);
        }
    }

    /// The windowed deployment's batched interval surface is
    /// bit-identical to the scalar one for **any** interval — fully
    /// inside one window, straddling several (the overlapping case,
    /// where fractional extrapolation kicks in on both partial ends),
    /// and the open-ended `[t, u64::MAX]` form whose inclusive→exclusive
    /// conversion must saturate, not wrap. This pins the f64→rounded
    /// boundary PR 4 drew: fractional sums accumulate identically in
    /// window order on both paths, and the integer estimator surface
    /// rounds exactly once per edge on both paths.
    #[test]
    fn windowed_interval_batch_matches_scalar(
        arrivals in vec((0u32..30, 0u32..30, 0u8..8), 1..200),
        span in 5u64..60,
        t_a in 0u64..260,
        t_b in 0u64..260,
        open_start in 0u64..260,
        depth in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut windowed = WindowedGSketch::new(
            WindowConfig {
                span,
                memory_bytes_per_window: 1 << 12,
                sample_capacity: 32,
                seed,
            },
            GSketch::builder().min_width(16).depth(depth),
        )
        .unwrap();
        let stream = stream_of(&arrivals);
        windowed.ingest(&stream);

        let mut queries: Vec<Edge> = stream.iter().map(|se| se.edge).collect();
        for v in 0..10u32 {
            queries.push(Edge::new(v, 555u32)); // absent probes
        }
        let (t_start, t_end) = (t_a.min(t_b), t_a.max(t_b));
        let mut batch = Vec::new();
        for (ts, te) in [
            (t_start, t_end),
            (t_start, t_start),              // single instant
            (open_start, u64::MAX),          // open-ended
            (0, windowed.lifetime_end()),    // exact lifetime
        ] {
            windowed.estimate_interval_batch(&queries, ts, te, &mut batch);
            prop_assert_eq!(batch.len(), queries.len());
            for (&q, &b) in queries.iter().zip(&batch) {
                let s = windowed.estimate_interval(q, ts, te);
                prop_assert_eq!(s.to_bits(), b.to_bits(),
                    "interval [{}, {}] diverged on {}: scalar {} batched {}", ts, te, q, s, b);
            }
            // The detailed rows carry the same values, bit for bit.
            let mut rows = Vec::new();
            windowed.estimate_interval_detailed_batch(&queries, ts, te, &mut rows);
            for (row, &b) in rows.iter().zip(&batch) {
                prop_assert_eq!(row.value.to_bits(), b.to_bits());
            }
        }
        // And the estimator surfaces (lifetime): one rounding per edge.
        let mut ints = Vec::new();
        windowed.estimate_edges(&queries, &mut ints);
        for (&q, &v) in queries.iter().zip(&ints) {
            prop_assert_eq!(v, windowed.estimate_edge(q));
        }
    }

    /// Replay-cache invalidation interleavings: a `ReplayEngine`
    /// wrapping each backend must stay **bit-identical to the uncached
    /// path** across arbitrary ingest/query/ingest sequences — writes
    /// through the engine invalidate exactly enough of the memo that no
    /// stale answer survives, on the slot-localized backends and the
    /// rest alike.
    #[test]
    fn replay_cache_interleavings_match_uncached(
        sample in vec((0u32..40, 0u32..40, 0u8..8), 1..80),
        tail in vec((0u32..60, 0u32..60, 0u8..8), 8..160),
        cuts in vec(0usize..160, 1..5),
        depth in 1usize..4,
        seed in any::<u64>(),
    ) {
        let sample = stream_of(&sample);
        let tail = stream_of(&tail);
        // Interleaving plan: ingest tail[c_i..c_{i+1}], then replay the
        // query set, repeatedly.
        let mut cuts: Vec<usize> = cuts.iter().map(|&c| c % (tail.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.push(tail.len());

        fn check<B: gsketch::FrequencySketch>(
            sample: &[StreamEdge],
            tail: &[StreamEdge],
            cuts: &[usize],
            depth: usize,
            seed: u64,
        ) {
            let empty: GSketch<B> = GSketch::builder()
                .memory_bytes(1 << 13)
                .depth(depth)
                .min_width(16)
                .seed(seed)
                .build_from_sample_backend(sample)
                .unwrap();
            let mut bare = empty.clone();
            let mut engine = ReplayEngine::with_capacity(empty, 256);
            let queries: Vec<Edge> = sample
                .iter()
                .chain(tail)
                .map(|se| se.edge)
                .chain((0..8u32).map(|v| Edge::new(v, 999u32)))
                .collect();
            let mut cached_out = Vec::new();
            let mut bare_out = Vec::new();
            let mut at = 0usize;
            for &cut in cuts {
                let chunk = &tail[at..cut];
                at = cut;
                engine.ingest_batch(chunk);
                bare.ingest_batch(chunk);
                // Replay twice so the second pass reads memoized
                // answers (and must still agree bit for bit).
                for _ in 0..2 {
                    engine.estimate_edges(&queries, &mut cached_out);
                    bare.estimate_edges(&queries, &mut bare_out);
                    assert_eq!(cached_out, bare_out);
                }
            }
            // The engine actually exercised the memo.
            assert!(engine.stats().hits > 0);
        }

        check::<CmArena>(&sample, &tail, &cuts, depth, seed);
        check::<CountMinSketch>(&sample, &tail, &cuts, depth, seed);
        check::<CountSketch>(&sample, &tail, &cuts, depth, seed);
    }

    /// Merge on the backend trait agrees with sequential ingest: split
    /// any stream across two workers, merge, and get the bit-exact
    /// serial sketch — on the arena and on the per-partition layout.
    #[test]
    fn merge_agrees_with_sequential_ingest(
        sample in vec((0u32..40, 0u32..40, 0u8..8), 1..100),
        at_frac in 0.0f64..1.0,
        depth in 1usize..4,
        seed in any::<u64>(),
    ) {
        let stream = stream_of(&sample);
        let mid = ((stream.len() as f64) * at_frac) as usize;

        fn check<B>(stream: &[StreamEdge], mid: usize, depth: usize, seed: u64)
        where
            B: gsketch::FrequencySketch,
        {
            let empty: GSketch<B> = GSketch::builder()
                .memory_bytes(1 << 12)
                .depth(depth)
                .min_width(16)
                .seed(seed)
                .build_from_sample_backend(stream)
                .unwrap();
            let mut serial = empty.clone();
            serial.ingest(stream);
            let mut a = empty.clone();
            let mut b = empty;
            a.ingest(&stream[..mid]);
            b.ingest(&stream[mid..]);
            a.merge(&b).unwrap();
            for se in stream {
                assert_eq!(a.estimate(se.edge), serial.estimate(se.edge));
            }
            assert_eq!(a.total_weight(), serial.total_weight());
        }

        check::<CmArena>(&stream, mid, depth, seed);
        check::<CountMinSketch>(&stream, mid, depth, seed);
    }

    /// The owner-sharded engine (scatter → SPSC handoff → per-owner
    /// plain-store commits over disjoint arena slices, DESIGN.md §11) is
    /// observationally identical to sequential ingest for any stream,
    /// owner count, and chunk size, under real oversubscribed threads.
    /// Pre-summed per-owner commits are exact addition in the
    /// non-saturating regime, so parity is bit-for-bit.
    #[test]
    fn sharded_ingest_matches_sequential_ingest(
        sample in vec((0u32..40, 0u32..40, 0u8..8), 1..120),
        tail in vec((0u32..60, 0u32..60, 0u8..8), 0..200),
        owners in 1usize..9,
        chunk in 1usize..600,
        depth in 1usize..4,
        seed in any::<u64>(),
    ) {
        let sample = stream_of(&sample);
        let stream: Vec<StreamEdge> =
            sample.iter().chain(&stream_of(&tail)).copied().collect();
        let empty: GSketch<CmArena> = builder(1 << 13, depth, seed)
            .build_from_sample_backend(&sample)
            .unwrap();

        let mut serial = empty.clone();
        serial.ingest(&stream);

        let mut concurrent = ConcurrentGSketch::from_gsketch(empty);
        let report = ShardedIngest::new(&mut concurrent, owners)
            .chunk_capacity(chunk)
            .oversubscribe(true)
            .run_slice(&stream);
        prop_assert_eq!(report.arrivals as usize, stream.len());
        let sharded = concurrent.into_gsketch();

        for se in &stream {
            prop_assert_eq!(sharded.estimate(se.edge), serial.estimate(se.edge));
        }
        // Collision-only keys must agree too (same cells, same layout).
        for v in 0..60u32 {
            let e = Edge::new(v, 999u32);
            prop_assert_eq!(sharded.estimate(e), serial.estimate(e));
        }
        prop_assert_eq!(sharded.total_weight(), serial.total_weight());
        prop_assert_eq!(sharded.outlier_weight(), serial.outlier_weight());
        prop_assert_eq!(sharded.partition_loads(), serial.partition_loads());
    }

    /// The slot-routed read path answers bit-identically to the
    /// sequential batch on **every backend**: counting-sorting a query
    /// batch by router slot and fanning owner-aligned spans out over
    /// real oversubscribed threads regroups independent per-edge
    /// answers, nothing more (DESIGN.md §11).
    #[test]
    fn routed_queries_match_sequential_batch(
        sample in vec((0u32..40, 0u32..40, 0u8..8), 1..80),
        tail in vec((0u32..60, 0u32..60, 0u8..8), 0..120),
        dup in 1usize..4,
        threads in 1usize..9,
        shuffle_seed in any::<u64>(),
        depth in 1usize..4,
        seed in any::<u64>(),
    ) {
        let sample = stream_of(&sample);
        let stream: Vec<StreamEdge> =
            sample.iter().chain(&stream_of(&tail)).copied().collect();
        let mut queries: Vec<Edge> = Vec::new();
        for se in &stream {
            for _ in 0..dup {
                queries.push(se.edge);
            }
        }
        for v in 0..20u32 {
            queries.push(Edge::new(v, 999u32)); // absent probes
        }
        shuffle_edges(&mut queries, shuffle_seed);

        fn check<B: gsketch::FrequencySketch>(
            sample: &[StreamEdge],
            stream: &[StreamEdge],
            queries: &[Edge],
            threads: usize,
            depth: usize,
            seed: u64,
        ) where
            GSketch<B>: Sync,
        {
            let mut gs: GSketch<B> = GSketch::builder()
                .memory_bytes(1 << 13)
                .depth(depth)
                .min_width(16)
                .seed(seed)
                .build_from_sample_backend(sample)
                .unwrap();
            gs.ingest(stream);
            let mut sequential = Vec::new();
            gs.estimate_edges(queries, &mut sequential);
            let pq = ParallelQuery::new(&gs, threads).oversubscribe(true);
            let mut routed = Vec::new();
            pq.estimate_edges_routed(queries, &mut routed);
            assert_eq!(routed, sequential, "routed read path diverged");
        }

        check::<CmArena>(&sample, &stream, &queries, threads, depth, seed);
        check::<CountMinSketch>(&sample, &stream, &queries, threads, depth, seed);
        check::<CountSketch>(&sample, &stream, &queries, threads, depth, seed);
    }

    /// Windowed epoch handoff: sharded ingest with rotations mid-stream
    /// (including a split *inside* a window, so one window's arrivals
    /// arrive across two sharded calls) seals the same windows, keeps
    /// the same reservoir-driven partitionings, and answers every
    /// lifetime and interval query bit-identically to the sequential
    /// deployment (DESIGN.md §11).
    #[test]
    fn sharded_windowed_ingest_matches_sequential(
        arrivals in vec((0u32..30, 0u32..30, 0u8..8), 2..200),
        span in 5u64..60,
        owners in 1usize..7,
        split_frac in 0.0f64..1.0,
        t_a in 0u64..260,
        t_b in 0u64..260,
        seed in any::<u64>(),
    ) {
        let stream = stream_of(&arrivals);
        let cfg = WindowConfig {
            span,
            memory_bytes_per_window: 1 << 12,
            sample_capacity: 32,
            seed,
        };
        let mut serial =
            WindowedGSketch::new(cfg, GSketch::builder().min_width(16)).unwrap();
        serial.ingest(&stream);

        let mut sharded =
            WindowedGSketch::new(cfg, GSketch::builder().min_width(16)).unwrap();
        let mid = ((stream.len() as f64) * split_frac) as usize;
        sharded.try_ingest_sharded(&stream[..mid], owners, true).unwrap();
        sharded.try_ingest_sharded(&stream[mid..], owners, true).unwrap();

        prop_assert_eq!(sharded.sealed_windows(), serial.sealed_windows());
        prop_assert_eq!(sharded.current_window_start(), serial.current_window_start());
        let mut queries: Vec<Edge> = stream.iter().map(|se| se.edge).collect();
        for v in 0..10u32 {
            queries.push(Edge::new(v, 555u32));
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        sharded.estimate_edges_f64(&queries, &mut a);
        serial.estimate_edges_f64(&queries, &mut b);
        for (&x, &y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "lifetime estimate diverged");
        }
        let (t_start, t_end) = (t_a.min(t_b), t_a.max(t_b));
        sharded.estimate_interval_batch(&queries, t_start, t_end, &mut a);
        serial.estimate_interval_batch(&queries, t_start, t_end, &mut b);
        for (&x, &y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "interval estimate diverged");
        }
    }

    /// Adaptive warm-up switchover under sharded ingest: the
    /// order-dependent warm-up prefix replays sequentially inside
    /// `ingest_sharded` (the switchover fires exactly where it always
    /// did), so for any stream, warm-up length, and split point — before,
    /// at, or after the switchover — the deployment is bit-identical to
    /// sequential ingest under real oversubscribed threads.
    #[test]
    fn sharded_adaptive_ingest_matches_sequential(
        arrivals in vec((0u32..40, 0u32..40, 0u8..8), 2..250),
        warmup_frac in 0.0f64..1.0,
        split_frac in 0.0f64..1.0,
        owners in 1usize..7,
        seed in any::<u64>(),
    ) {
        let stream = stream_of(&arrivals);
        let warmup = (((stream.len() as f64) * warmup_frac) as u64).max(1);
        let cfg = AdaptiveConfig {
            memory_bytes: 1 << 13,
            warmup_arrivals: warmup,
            warmup_memory_fraction: 0.15,
            depth: 2,
            min_width: 16,
            expected_growth: (stream.len() as f64 / warmup as f64).max(1.0),
            seed,
            ..AdaptiveConfig::default()
        };
        let mut serial = AdaptiveGSketch::new(cfg).unwrap();
        serial.ingest(&stream);

        let mut sharded = AdaptiveGSketch::new(cfg).unwrap();
        let mid = ((stream.len() as f64) * split_frac) as usize;
        sharded.ingest_sharded(&stream[..mid], owners, true);
        sharded.ingest_sharded(&stream[mid..], owners, true);

        prop_assert_eq!(sharded.num_partitions(), serial.num_partitions());
        let mut queries: Vec<Edge> = stream.iter().map(|se| se.edge).collect();
        for v in 0..10u32 {
            queries.push(Edge::new(v, 777u32));
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        sharded.estimate_edges(&queries, &mut a);
        serial.estimate_edges(&queries, &mut b);
        prop_assert_eq!(a, b, "adaptive estimates diverged");
    }
}

/// Flush ordering for partial staging buffers: arrivals pushed through
/// the pipeline's `EdgeSink` surface sit in the combiner/staging state
/// and are **not** visible to queries until `flush` (or a batch
/// boundary) commits them — and after `flush`, every accepted arrival
/// is fully visible. This is the contract that distinguishes the
/// buffered sink from the unbuffered estimators.
#[test]
fn flush_commits_partial_staging_buffers() {
    let stream: Vec<StreamEdge> = (0..500u64)
        .map(|t| {
            StreamEdge::weighted(
                Edge::new((t % 13) as u32, (t % 7) as u32 + 50),
                t,
                t % 3 + 1,
            )
        })
        .collect();
    let empty: GSketch<CmArena> = GSketch::builder()
        .memory_bytes(1 << 13)
        .min_width(16)
        .seed(41)
        .build_from_sample_backend(&stream)
        .unwrap();
    let mut serial = empty.clone();
    serial.ingest(&stream);
    let expected_total = serial.total_weight();

    let mut concurrent = ConcurrentGSketch::from_gsketch(empty);
    {
        let mut pipe = ParallelIngest::new_exclusive(&mut concurrent, 4);
        // A partial buffer: far below the pipeline's chunk capacity.
        for se in &stream[..100] {
            pipe.update(*se);
        }
        assert_eq!(
            pipe.staged(),
            100,
            "arrivals should be staged, not committed"
        );
        // Mid-stream flush makes the prefix visible...
        pipe.flush();
        assert_eq!(pipe.staged(), 0);
        // ...then the remainder goes through a second partial buffer.
        pipe.ingest_batch(&stream[100..]);
        pipe.flush();
    }
    // Pre-flush invisibility of the first partial buffer.
    assert_eq!(concurrent.total_weight(), expected_total);
    let piped = concurrent.into_gsketch();
    for se in &stream {
        assert_eq!(piped.estimate(se.edge), serial.estimate(se.edge));
    }
}

/// The companion pre-flush check: without any flush, a partial staging
/// buffer stays invisible; dropping the pipeline then commits it (no
/// accepted arrival is ever lost).
#[test]
fn partial_buffers_invisible_until_flush_or_drop() {
    let stream: Vec<StreamEdge> = (0..50u64)
        .map(|t| StreamEdge::unit(Edge::new((t % 5) as u32, 9u32), t))
        .collect();
    let empty: GSketch<CmArena> = GSketch::builder()
        .memory_bytes(1 << 12)
        .min_width(16)
        .seed(13)
        .build_from_sample_backend(&stream)
        .unwrap();
    let concurrent = ConcurrentGSketch::from_gsketch(empty);
    {
        let mut pipe = ParallelIngest::new(&concurrent, 2);
        pipe.ingest_batch(&stream);
        assert_eq!(pipe.staged(), 50);
        assert_eq!(
            concurrent.total_weight(),
            0,
            "staged arrivals must not be visible before flush"
        );
    }
    assert_eq!(concurrent.total_weight(), 50, "drop must commit staging");
}
