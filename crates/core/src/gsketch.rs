//! The gSketch structure: a set of localized frequency sketches plus an
//! outlier sketch, built by sample-driven partitioning (§4–§5).
//!
//! Since the arena refactor (DESIGN.md §2) the synopsis storage is
//! pluggable: [`GSketch<B>`] is generic over a
//! [`FrequencySketch`] backend and stores all
//! slots in that backend's [`SketchBank`]. The default backend is
//! [`CmArena`] — every partition's counters plus the
//! outlier's in one contiguous slab with a single shared per-row hash
//! family — and the classic one-allocation-per-partition CountMin layout
//! remains available as `GSketch<CountMinSketch>`. Both layouts produce
//! **bit-identical estimates** at equal build parameters (the
//! `backend_parity` proptests pin this), so the choice is purely about
//! memory behaviour.

use crate::partition::{partition, Objective, PartitionConfig, PartitionPlan, WidthAllocation};
use crate::router::{Router, SketchId};
use crate::vstats::SampleStats;
use gstream::edge::{Edge, StreamEdge};
use serde::{Deserialize, Serialize};
use sketch::{BlockedBloom, CmArena, CountMinSketch, FrequencySketch, SketchBank, SketchError};

/// Fraction of the memory budget carved out for the zero-frequency
/// pre-filter (DESIGN.md §12): `1/PREFILTER_SHARE` of `memory_bytes`.
/// The carve happens *before* counter cells are sized, so filter bytes
/// are charged against the same `--memory` budget as the counters.
const PREFILTER_SHARE: usize = 16;

/// Answer one slot run of point queries through a membership mask:
/// absent keys (mask `false`) are answered `0` without touching a
/// counter row; present keys are gathered, probed through `probe` in
/// one batched kernel pass, and scattered back. When every key is
/// present the run is passed through untouched, so present-key answers
/// are bit-identical to the unfiltered path (per-key estimates do not
/// depend on batch grouping).
pub(crate) fn filtered_run(
    mask: &[bool],
    keys: &[u64],
    probe: impl FnOnce(&[u64], &mut Vec<u64>),
    out: &mut Vec<u64>,
) {
    // A mixed mask is adversarial for the branch predictor (an absent
    // fraction near 50% is a coin flip per key), so every pass below is
    // written mask-as-arithmetic rather than mask-as-branch.
    // cast: bool -> usize, exactly 0 or 1.
    let absent: usize = mask.iter().map(|&m| !m as usize).sum();
    if absent == 0 {
        probe(keys, out);
        return;
    }
    // Sparse absence: probing the full run and zeroing the few absent
    // answers afterwards is cheaper than a gather/scatter round trip,
    // and the absent answers are still exactly 0.
    if absent * 8 < keys.len() {
        probe(keys, out);
        for (o, &m) in out.iter_mut().zip(mask) {
            // cast: bool -> u64, exactly 0 or 1; zeroes absent answers.
            *o *= m as u64;
        }
        return;
    }
    // Branch-free gather: write every key at the cursor, advance only on
    // present ones — an absent key's slot is overwritten by the next
    // present key, and the tail past the cursor is truncated away.
    let mut present: Vec<u64> = vec![0; keys.len()];
    let mut j = 0;
    for (&k, &m) in keys.iter().zip(mask) {
        // `j` advances at most once per key, so it stays in bounds; the
        // guard keeps the kernel free of panic edges (`xtask audit`).
        if let Some(p) = present.get_mut(j) {
            *p = k;
        }
        // cast: bool -> usize, exactly 0 or 1.
        j += m as usize;
    }
    present.truncate(j);
    let mut vals = Vec::with_capacity(present.len() + 1);
    probe(&present, &mut vals);
    // Sentinel so the branch-free scatter can always read `vals[j]`:
    // once the cursor passes the last present value, absent keys read
    // the sentinel and multiply it by 0. The read is `get`-guarded all
    // the same (a short `probe` answer degrades to 0, never a panic).
    vals.push(0);
    out.clear();
    out.reserve(keys.len());
    let mut j = 0;
    out.extend(mask.iter().map(|&m| {
        let v = vals.get(j).copied().unwrap_or(0);
        // cast: bool -> usize / u64, exactly 0 or 1.
        j += m as usize;
        v * m as u64
    }));
}

/// Builder-style configuration for a [`GSketch`].
///
/// Serializable so deployments that must rebuild *identical* sketches
/// after a restart — the windowed snapshot store persists the builder in
/// its header and replays rotations with it — can round-trip the full
/// build configuration (the build is deterministic given the fields).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GSketchBuilder {
    memory_bytes: usize,
    depth: usize,
    min_width: usize,
    collision_factor: f64,
    outlier_fraction: f64,
    redistribute: bool,
    sample_rate: f64,
    allocation: WidthAllocation,
    outlier_profile: Option<(u64, u64)>,
    prefilter: bool,
    seed: u64,
    width_quantum: usize,
}

impl Default for GSketchBuilder {
    fn default() -> Self {
        Self {
            memory_bytes: 1 << 20,
            depth: 3, // d = ⌈ln 1/δ⌉ with δ = 0.05
            min_width: 512,
            collision_factor: 0.5,
            outlier_fraction: 0.1,
            redistribute: true,
            sample_rate: 1.0,
            allocation: WidthAllocation::Optimal,
            outlier_profile: None,
            prefilter: true,
            seed: 0x6_5EED,
            width_quantum: 1,
        }
    }
}

impl GSketchBuilder {
    /// Total memory budget for all sketch counters, in bytes. This is the
    /// quantity on the x-axis of the paper's Figures 4–9 and 13–14.
    #[must_use]
    pub fn memory_bytes(mut self, bytes: usize) -> Self {
        self.memory_bytes = bytes;
        self
    }

    /// Sketch depth `d` shared by every partition (§4.1 keeps the global
    /// depth so the per-partition probabilistic guarantee is unchanged).
    #[must_use]
    pub fn depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }

    /// Set the depth from a failure probability: `d = ⌈ln 1/δ⌉`.
    #[must_use]
    pub fn delta(mut self, delta: f64) -> Self {
        self.depth = CountMinSketch::depth_for_delta(delta).unwrap_or(3);
        self
    }

    /// Minimum partition width `w0` (termination criterion 1).
    #[must_use]
    pub fn min_width(mut self, w0: usize) -> Self {
        self.min_width = w0;
        self
    }

    /// Collision constant `C` of Theorem 1 (termination criterion 2).
    #[must_use]
    pub fn collision_factor(mut self, c: f64) -> Self {
        self.collision_factor = c;
        self
    }

    /// Fraction of the budget reserved for the outlier sketch (§5).
    #[must_use]
    pub fn outlier_fraction(mut self, f: f64) -> Self {
        self.outlier_fraction = f;
        self
    }

    /// Whether Theorem-1 width savings are redistributed (DESIGN.md §5).
    #[must_use]
    pub fn redistribute(mut self, on: bool) -> Self {
        self.redistribute = on;
        self
    }

    /// Seed for the shared hash family (estimates are deterministic given
    /// the seed and the stream).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether to build the zero-frequency pre-filter (DESIGN.md §12):
    /// a blocked Bloom filter carved from the same memory budget that
    /// short-circuits never-ingested keys to an exact `0` before any
    /// counter row is read. On by default; turning it off returns the
    /// whole budget to the counters (the ablation/bench configuration).
    #[must_use]
    pub fn prefilter(mut self, on: bool) -> Self {
        self.prefilter = on;
        self
    }

    /// Expected `(frequency mass, error factor)` of the traffic that
    /// will route to the outlier sketch (vertices absent from the data
    /// sample). When provided — e.g. from an online coverage probe — the
    /// outlier sketch is sized by the same optimal `√(F̃·A)` rule as the
    /// partitions instead of the fixed
    /// [`outlier_fraction`](Self::outlier_fraction). Only honoured under
    /// [`WidthAllocation::Optimal`].
    ///
    /// **Units.** Leaf scores are built from sample-*conditioned* vertex
    /// statistics: a vertex enters the statistics only once sampled, so
    /// its extrapolated `f̃v` is at least `1/sample_rate`. For the width
    /// contest to be apples-to-apples, quote the outlier's profile in
    /// the same currency: `uncovered_vertices / sample_rate` for both
    /// components is the estimate consistent with how an uncovered
    /// vertex *would* have scored had it been sampled once.
    #[must_use]
    pub fn outlier_profile(mut self, freq_mass: u64, degree_mass: u64) -> Self {
        self.outlier_profile = Some((freq_mass, degree_mass));
        self
    }

    /// Final width assignment policy
    /// ([`WidthAllocation::Optimal`] by default; `EqualSplit` is the
    /// paper's literal halving scheme, kept for the ablation bench).
    #[must_use]
    pub fn allocation(mut self, allocation: WidthAllocation) -> Self {
        self.allocation = allocation;
        self
    }

    /// Round every slot width to a multiple of `quantum` (default 1 =
    /// no rounding). The windowed deployment's tiering path sets this:
    /// a CountMin bucket is `h(key) mod w`, so when `quantum | w` the
    /// congruence `(h mod w) mod quantum = h mod quantum` lets any
    /// slot's counters be *folded* down to a width-`quantum` sketch
    /// (cell `j` into cell `j mod quantum`) that is a valid sketch of
    /// the same stream — the basis for merging windows built with
    /// different sample-driven layouts (DESIGN.md §13). Rounding is
    /// downward (`(w / q).max(1) · q`), so the memory budget stays an
    /// upper bound except for slots narrower than one quantum.
    #[must_use]
    pub fn width_quantum(mut self, quantum: usize) -> Self {
        self.width_quantum = quantum.max(1);
        self
    }

    /// The fold quantum the windowed tiering path pairs with this
    /// builder: the configured minimum partition width (floored at 2 so
    /// it is always a legal sketch width). Coarsened tiers are
    /// width-`fold_quantum` sketches.
    pub(crate) fn fold_quantum(&self) -> usize {
        self.min_width.max(2)
    }

    /// Fraction of the stream the data sample represents (e.g. `0.05` for
    /// a 5% reservoir sample). Vertex statistics are extrapolated by
    /// `1/rate` before partitioning — see
    /// [`SampleStats::extrapolate`](crate::SampleStats::extrapolate).
    /// Defaults to 1.0 (no extrapolation, the paper's literal reading).
    #[must_use]
    pub fn sample_rate(mut self, rate: f64) -> Self {
        self.sample_rate = rate;
        self
    }

    /// Scenario 1 (§4.1): partition using a data sample only.
    pub fn build_from_sample(self, data_sample: &[StreamEdge]) -> Result<GSketch, SketchError> {
        self.build_from_sample_backend::<CmArena>(data_sample)
    }

    /// [`Self::build_from_sample`] with an explicit synopsis backend.
    pub fn build_from_sample_backend<B: FrequencySketch>(
        self,
        data_sample: &[StreamEdge],
    ) -> Result<GSketch<B>, SketchError> {
        let stats = SampleStats::from_data_sample(data_sample);
        self.build(stats, Objective::DataOnly, None)
    }

    /// Build from pre-computed vertex statistics instead of a sample.
    /// This is the entry point of the sample-free adaptive path
    /// ([`crate::adaptive`]), whose warm-up phase accumulates the
    /// statistics online; it uses the scenario-1 objective (Eq. 9).
    pub fn build_from_stats(self, stats: SampleStats) -> Result<GSketch, SketchError> {
        self.build_from_stats_backend::<CmArena>(stats)
    }

    /// [`Self::build_from_stats`] with an explicit synopsis backend.
    pub fn build_from_stats_backend<B: FrequencySketch>(
        self,
        stats: SampleStats,
    ) -> Result<GSketch<B>, SketchError> {
        self.build(stats, Objective::DataOnly, None)
    }

    /// Scenario 2 (§4.2): partition using both a data sample and a query
    /// workload sample.
    pub fn build_with_workload(
        self,
        data_sample: &[StreamEdge],
        workload_sample: &[Edge],
    ) -> Result<GSketch, SketchError> {
        self.build_with_workload_backend::<CmArena>(data_sample, workload_sample)
    }

    /// [`Self::build_with_workload`] with an explicit synopsis backend.
    pub fn build_with_workload_backend<B: FrequencySketch>(
        self,
        data_sample: &[StreamEdge],
        workload_sample: &[Edge],
    ) -> Result<GSketch<B>, SketchError> {
        let stats = SampleStats::from_samples(data_sample, workload_sample);
        self.build(stats, Objective::DataWorkload, None)
    }

    /// Scenario 1 with a *calibration probe*: after the partitioning tree
    /// fixes the vertex grouping, a routed pass over `probe` (any
    /// unbiased subsample of the stream, e.g. strided arrivals) measures
    /// each leaf's distinct-edge count directly, and widths are assigned
    /// proportionally to those counts. Under within-leaf frequency
    /// homogeneity — which the E′-driven grouping strives for — the
    /// `√(F̃·A)` optimum reduces exactly to width ∝ distinct edges, and
    /// the probe measurement avoids the sample-conditioning bias of the
    /// per-vertex statistics. The outlier sketch participates on the
    /// same footing.
    pub fn build_from_sample_calibrated(
        self,
        data_sample: &[StreamEdge],
        probe: &[StreamEdge],
    ) -> Result<GSketch, SketchError> {
        self.build_from_sample_calibrated_backend::<CmArena>(data_sample, probe)
    }

    /// [`Self::build_from_sample_calibrated`] with an explicit backend.
    pub fn build_from_sample_calibrated_backend<B: FrequencySketch>(
        self,
        data_sample: &[StreamEdge],
        probe: &[StreamEdge],
    ) -> Result<GSketch<B>, SketchError> {
        let stats = SampleStats::from_data_sample(data_sample);
        self.build(stats, Objective::DataOnly, Some(probe))
    }

    /// Scenario 2 with a calibration probe
    /// (see [`Self::build_from_sample_calibrated`]).
    pub fn build_with_workload_calibrated(
        self,
        data_sample: &[StreamEdge],
        workload_sample: &[Edge],
        probe: &[StreamEdge],
    ) -> Result<GSketch, SketchError> {
        self.build_with_workload_calibrated_backend::<CmArena>(data_sample, workload_sample, probe)
    }

    /// [`Self::build_with_workload_calibrated`] with an explicit backend.
    pub fn build_with_workload_calibrated_backend<B: FrequencySketch>(
        self,
        data_sample: &[StreamEdge],
        workload_sample: &[Edge],
        probe: &[StreamEdge],
    ) -> Result<GSketch<B>, SketchError> {
        let stats = SampleStats::from_samples(data_sample, workload_sample);
        self.build(stats, Objective::DataWorkload, Some(probe))
    }

    fn build<B: FrequencySketch>(
        self,
        mut stats: SampleStats,
        objective: Objective,
        probe: Option<&[StreamEdge]>,
    ) -> Result<GSketch<B>, SketchError> {
        if !(0.0..1.0).contains(&self.outlier_fraction) {
            return Err(SketchError::InvalidAccuracy {
                what: "outlier_fraction",
                value: self.outlier_fraction,
            });
        }
        if !(self.sample_rate > 0.0 && self.sample_rate <= 1.0) {
            return Err(SketchError::InvalidAccuracy {
                what: "sample_rate",
                value: self.sample_rate,
            });
        }
        stats.extrapolate(self.sample_rate);
        // The pre-filter is paid for out of the same budget, so the
        // counter cells are sized over what the filter leaves behind —
        // `--memory` stays an honest bound on counters + filter.
        let total_cells = CountMinSketch::cells_for_bytes(self.counter_bytes());
        let total_width = total_cells / self.depth.max(1);
        if total_width < 4 {
            return Err(SketchError::InvalidDimension {
                what: "memory_bytes (too small for depth)",
                value: self.memory_bytes,
            });
        }
        // Calibrated path: fix the grouping from the sample, then
        // measure per-leaf distinct edges on the probe and allocate
        // width ∝ distinct edges (leaves and outlier alike).
        if let Some(probe) = probe {
            if self.allocation == WidthAllocation::Optimal {
                return self.build_calibrated(stats, objective, probe, total_width);
            }
        }

        let (plan, outlier_width) = match (self.outlier_profile, self.allocation) {
            (Some((f_out, d_out)), WidthAllocation::Optimal) => {
                // The outlier sketch competes for width as a pseudo-leaf
                // under the same √(F̃·A) rule as every partition.
                let mut pcfg = PartitionConfig::new(total_width);
                pcfg.min_width = self.min_width.min(total_width).max(2);
                pcfg.collision_factor = self.collision_factor;
                pcfg.objective = objective;
                pcfg.redistribute = self.redistribute;
                pcfg.allocation = self.allocation;
                let mut plan = partition(&stats, &pcfg);
                let ow = crate::partition::outlier_share(&plan, total_width, f_out, d_out);
                // Rescale the leaves into the width the outlier left over.
                let remaining = total_width.saturating_sub(ow).max(2);
                let used: usize = plan.leaves.iter().map(|l| l.width).sum();
                if used > 0 {
                    let scale = remaining as f64 / used as f64;
                    for leaf in &mut plan.leaves {
                        // cast: f64 -> usize truncation; scale <= 1 shrinks each width, and
                        // `.max(2)` keeps the result a legal sketch width.
                        leaf.width = ((leaf.width as f64 * scale) as usize).max(2);
                    }
                }
                let ow = if plan.is_empty() { total_width } else { ow };
                (plan, ow)
            }
            _ => {
                // cast: f64 -> usize truncation; outlier_fraction is validated in
                // (0, 1), so the product is below total_width.
                let outlier_width = ((total_width as f64 * self.outlier_fraction) as usize).max(2);
                let partition_width = total_width - outlier_width;
                let mut pcfg = PartitionConfig::new(partition_width.max(2));
                pcfg.min_width = self.min_width.min(partition_width.max(2)).max(2);
                pcfg.collision_factor = self.collision_factor;
                pcfg.objective = objective;
                pcfg.redistribute = self.redistribute;
                pcfg.allocation = self.allocation;
                let plan = partition(&stats, &pcfg);
                // Width the partitions did not claim (all-leaves-shrunk
                // case, or rounding) flows to the outlier sketch:
                // unsampled vertices get the benefit and the byte budget
                // is never silently wasted.
                let unclaimed = partition_width.saturating_sub(plan.total_width());
                let outlier_width = if plan.is_empty() {
                    total_width
                } else {
                    outlier_width + unclaimed
                };
                (plan, outlier_width)
            }
        };

        self.materialize(plan, outlier_width, None)
    }

    /// Bytes reserved for the pre-filter (0 when disabled).
    fn filter_budget(&self) -> usize {
        if self.prefilter {
            self.memory_bytes / PREFILTER_SHARE
        } else {
            0
        }
    }

    /// Bytes left for counter cells after the filter carve.
    fn counter_bytes(&self) -> usize {
        self.memory_bytes - self.filter_budget()
    }

    /// Materialize the synopsis bank from a finished plan: partition
    /// slots first (in leaf order), the outlier slot last, everything
    /// sharing one hash family seeded from the builder seed. If the
    /// sample was empty the outlier absorbs the whole budget. A router
    /// already built from this plan's vertex grouping may be passed in
    /// to avoid rebuilding it (leaf *widths* do not affect routing).
    ///
    /// This is the single funnel every build path ends in, so the
    /// pre-filter is constructed here: blocks distributed over the same
    /// slot layout, proportionally to slot widths, within the reserved
    /// byte carve. A budget too small to give every slot its one-block
    /// floor skips the filter rather than overshooting `memory_bytes`.
    fn materialize<B: FrequencySketch>(
        self,
        plan: PartitionPlan,
        outlier_width: usize,
        router: Option<Router>,
    ) -> Result<GSketch<B>, SketchError> {
        let q = self.width_quantum.max(1);
        let widths: Vec<usize> = plan
            .leaves
            .iter()
            .map(|l| l.width)
            .chain(std::iter::once(outlier_width))
            // Quantized widths stay foldable to width `q` (see
            // `width_quantum`); `q == 1` is the identity.
            .map(|w| (w / q).max(1) * q)
            .collect();
        let bank = B::Bank::build(&widths, self.depth, self.seed)?;
        let router = router.unwrap_or_else(|| Router::from_plan(&plan));
        let filter = if self.prefilter {
            BlockedBloom::for_widths(&widths, self.filter_budget(), self.seed)
        } else {
            None
        };
        Ok(GSketch {
            bank,
            router,
            plan,
            depth: self.depth,
            filter,
            filter_reads: true,
        })
    }
}

impl GSketchBuilder {
    fn build_calibrated<B: FrequencySketch>(
        self,
        stats: SampleStats,
        objective: Objective,
        probe: &[StreamEdge],
        total_width: usize,
    ) -> Result<GSketch<B>, SketchError> {
        use gstream::fxhash::FxHashSet;

        let mut pcfg = PartitionConfig::new(total_width);
        pcfg.min_width = self.min_width.min(total_width).max(2);
        pcfg.collision_factor = self.collision_factor;
        pcfg.objective = objective;
        pcfg.redistribute = self.redistribute;
        pcfg.allocation = WidthAllocation::Optimal;
        let mut plan = partition(&stats, &pcfg);
        let router = Router::from_plan(&plan);

        // Route the probe, counting distinct edges per sketch. Relative
        // shares are what matter, so the probe's undercount of the full
        // stream's distinct set cancels (it is uniform across leaves for
        // an unbiased probe). The outlier is the last slot, so one flat
        // vector covers leaves and outlier alike.
        let mut slot_edges: Vec<FxHashSet<u64>> = vec![FxHashSet::default(); plan.len() + 1];
        for se in probe {
            let slot = router.slot(se.edge.src);
            slot_edges[slot as usize].insert(se.edge.key());
        }
        let counts: Vec<usize> = slot_edges.iter().map(FxHashSet::len).collect();
        let d_out = counts[plan.len()];
        let total_d: usize = counts.iter().sum();

        // Guarantee a floor of 2 cells everywhere, distribute the rest
        // proportionally to distinct-edge counts.
        let n_sketches = plan.len() + 1;
        let floors = 2 * n_sketches;
        let spare = total_width.saturating_sub(floors);
        let share = move |d: usize| -> usize {
            if total_d == 0 {
                spare / n_sketches.max(1)
            } else {
                // cast: f64 -> usize truncation; d <= total_d, so the proportional
                // share never exceeds `spare`.
                (spare as f64 * d as f64 / total_d as f64) as usize
            }
        };
        for (leaf, &d) in plan.leaves.iter_mut().zip(&counts) {
            leaf.width = 2 + share(d);
        }
        let outlier_width = 2 + share(d_out);

        self.materialize(plan, outlier_width, Some(router))
    }
}

/// An edge-frequency estimate with its per-sketch quality attributes
/// (§5: "the confidence intervals of different queries are likely to be
/// different depending upon the sketches that they are assigned to").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The estimated frequency (never below the true frequency, w.h.p.
    /// exactly per Equation 1, for the CountMin-family backends).
    pub value: u64,
    /// Additive error bound `e·N_i/w_i` of the answering sketch.
    pub error_bound: f64,
    /// Probability the bound holds: `1 − e^{−d}`.
    pub confidence: f64,
    /// Which sketch answered.
    pub sketch: SketchId,
}

/// The gSketch synopsis: partitioned localized sketches plus an outlier
/// sketch in one [`SketchBank`], with a vertex router deciding placement.
///
/// Generic over the synopsis backend `B`; the default [`CmArena`] stores
/// every slot in one contiguous counter slab (see the module docs).
#[derive(Debug, Clone)]
pub struct GSketch<B: FrequencySketch = CmArena> {
    /// Slot `i < num_partitions` is partition `i`; the last slot is the
    /// outlier sketch (the router uses the same convention).
    bank: B::Bank,
    router: Router,
    plan: PartitionPlan,
    depth: usize,
    /// The zero-frequency pre-filter (DESIGN.md §12), slot-partitioned
    /// like the bank; `None` when disabled or the budget was too small.
    filter: Option<BlockedBloom>,
    /// Read-side toggle: membership is always *maintained* while the
    /// filter exists, but reads only consult it when this is set — the
    /// CLI's `--prefilter off` compares answers on identical state.
    filter_reads: bool,
}

// The vendored serde derive cannot express the `B::Bank: Serialize`
// bound, so the impls are written out; they mirror what the derive would
// generate for the four fields.
impl<B: FrequencySketch> serde::Serialize for GSketch<B> {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("bank".to_owned(), self.bank.to_value()),
            ("router".to_owned(), self.router.to_value()),
            ("plan".to_owned(), self.plan.to_value()),
            ("depth".to_owned(), self.depth.to_value()),
        ];
        // The filter key is present exactly when the filter is: older
        // snapshots (and filter-less builds) simply omit it, so the
        // format version is unchanged.
        if let Some(f) = &self.filter {
            fields.push(("filter".to_owned(), f.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl<B: FrequencySketch> serde::Deserialize for GSketch<B> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let filter = match serde::value_field(v, "filter") {
            Ok(fv) => Some(serde::Deserialize::from_value(fv)?),
            Err(_) => None,
        };
        let g = Self {
            bank: serde::Deserialize::from_value(serde::value_field(v, "bank")?)?,
            router: serde::Deserialize::from_value(serde::value_field(v, "router")?)?,
            plan: serde::Deserialize::from_value(serde::value_field(v, "plan")?)?,
            depth: serde::Deserialize::from_value(serde::value_field(v, "depth")?)?,
            filter,
            filter_reads: true,
        };
        // The fields decode independently, so a corrupted or hand-edited
        // snapshot could pair a router with a bank of a different slot
        // count — which would panic on first use instead of erroring
        // here, where malformed input is supposed to be reported.
        if g.router.num_slots() != g.bank.num_slots() {
            return Err(serde::Error(format!(
                "router addresses {} slots but the synopsis bank has {}",
                g.router.num_slots(),
                g.bank.num_slots()
            )));
        }
        if g.bank.depth() != g.depth {
            return Err(serde::Error(format!(
                "declared depth {} but the synopsis bank has depth {}",
                g.depth,
                g.bank.depth()
            )));
        }
        if let Some(f) = &g.filter {
            if f.num_slots() != g.bank.num_slots() {
                return Err(serde::Error(format!(
                    "pre-filter covers {} slots but the synopsis bank has {}",
                    f.num_slots(),
                    g.bank.num_slots()
                )));
            }
        }
        Ok(g)
    }
}

impl GSketch {
    /// Start building a gSketch (arena backend by default; pick another
    /// with the builder's `*_backend` methods).
    pub fn builder() -> GSketchBuilder {
        GSketchBuilder::default()
    }
}

/// A write routes to exactly one slot, and slot counter spans are
/// disjoint, so the router slot is a sound invalidation domain for the
/// replay engine: a write to slot `s` can only move estimates of edges
/// whose source routes to `s`.
impl<B: FrequencySketch> crate::replay::WriteLocalized for GSketch<B> {
    fn write_domains(&self) -> usize {
        self.bank.num_slots()
    }

    #[inline]
    fn write_domain(&self, src: gstream::vertex::VertexId) -> u32 {
        self.router.slot(src)
    }
}

/// The routing view the owner-sharded engine shares between writes and
/// reads (DESIGN.md §11): the slot-routed parallel query groups a miss
/// batch by these slots so each owner answers only its own arena slice.
impl<B: FrequencySketch> crate::sink::SlotRouted for GSketch<B> {
    fn num_slots(&self) -> usize {
        self.bank.num_slots()
    }

    #[inline]
    fn slot_of(&self, src: gstream::vertex::VertexId) -> u32 {
        self.router.slot(src)
    }
}

/// The unified ingest surface: routing one arrival is a single
/// unconditioned bank update (outlier = last slot), and
/// [`ingest_batch`](crate::EdgeSink::ingest_batch) groups a batch by
/// destination slot so the counter traffic walks one slot's block at a
/// time instead of hopping across the whole synopsis (the arena's
/// contiguous layout turns that into cache-line reuse). Estimates are
/// identical either way — counters are commutative.
impl<B: FrequencySketch> crate::EdgeSink for GSketch<B> {
    #[inline]
    fn update(&mut self, se: StreamEdge) {
        let slot = self.router.slot(se.edge.src);
        let key = se.edge.key();
        if let Some(f) = &mut self.filter {
            f.insert(slot, key);
        }
        self.bank.update(slot, key, se.weight);
    }

    fn ingest_batch(&mut self, batch: &[StreamEdge]) {
        let n_slots = self.bank.num_slots();
        let mut counts = vec![0usize; n_slots];
        let slots: Vec<u32> = batch
            .iter()
            .map(|se| self.router.slot(se.edge.src))
            .collect();
        for &s in &slots {
            counts[s as usize] += 1;
        }
        // Counting-sort the (key, weight) pairs by slot.
        let mut cursors = Vec::with_capacity(n_slots);
        let mut acc = 0usize;
        for &c in &counts {
            cursors.push(acc);
            acc += c;
        }
        let starts = cursors.clone();
        let mut grouped: Vec<(u64, u64)> = vec![(0, 0); batch.len()];
        for (se, &s) in batch.iter().zip(&slots) {
            let at = &mut cursors[s as usize];
            grouped[*at] = (se.edge.key(), se.weight);
            *at += 1;
        }
        for (slot, (&start, &count)) in starts.iter().zip(&counts).enumerate() {
            if count > 0 {
                let run = &grouped[start..start + count];
                // cast: usize -> u32; slot counts come from the router,
                // which addresses slots as u32.
                if let Some(f) = &mut self.filter {
                    f.insert_run(slot as u32, run);
                }
                self.bank.add_batch(slot as u32, run);
            }
        }
    }
}

impl<B: FrequencySketch> GSketch<B> {
    /// The active read-side filter, if any.
    #[inline]
    fn read_filter(&self) -> Option<&BlockedBloom> {
        if self.filter_reads {
            self.filter.as_ref()
        } else {
            None
        }
    }

    /// Estimate the aggregate frequency `f̃(x, y)` of an edge. A key the
    /// pre-filter proves was never ingested answers exactly `0` without
    /// reading a counter row (DESIGN.md §12); present keys answer
    /// exactly as they would without the filter.
    #[inline]
    pub fn estimate(&self, edge: Edge) -> u64 {
        let slot = self.router.slot(edge.src);
        let key = edge.key();
        if let Some(f) = self.read_filter() {
            if !f.contains(slot, key) {
                return 0;
            }
        }
        self.bank.estimate(slot, key)
    }

    /// Answer a whole query batch: the read-side mirror of
    /// [`ingest_batch`](crate::EdgeSink::ingest_batch). Queries are
    /// counting-sorted by router slot so each slot's counter block is
    /// probed in one contiguous run (the arena backend answers each run
    /// through its batched kernel — shared hash folds, fastmod range
    /// reduction, block-prefetched cells, duplicate coalescing). `out`
    /// is overwritten with one estimate per edge, in query order;
    /// answers are bit-identical to [`estimate`](Self::estimate) per
    /// edge (pinned by the `backend_parity` proptests).
    /// With the pre-filter active each slot run is first tested through
    /// one [`BlockedBloom::contains_batch`] pass (one cache line per
    /// distinct key): absent keys are answered `0` without touching a
    /// counter row, and only the surviving keys flow through the
    /// counter kernel — present-key answers stay bit-identical.
    // audit: kernel(bounds-free)
    pub fn estimate_batch(&self, edges: &[Edge], out: &mut Vec<u64>) {
        if let Some(f) = self.read_filter() {
            let mut mask = Vec::new();
            crate::query::estimate_batch_by_slot(
                edges,
                self.bank.num_slots(),
                |src| self.router.slot(src),
                |slot, keys, vals| {
                    f.contains_batch(slot, keys, &mut mask);
                    filtered_run(
                        &mask,
                        keys,
                        |ks, vs| self.bank.estimate_batch(slot, ks, vs),
                        vals,
                    );
                },
                out,
            );
            return;
        }
        crate::query::estimate_batch_by_slot(
            edges,
            self.bank.num_slots(),
            |src| self.router.slot(src),
            |slot, keys, vals| self.bank.estimate_batch(slot, keys, vals),
            out,
        );
    }

    /// Estimate with the answering sketch's error bound and confidence
    /// (the CountMin attributes of Equation 1; for a `CountSketch`
    /// backend the bound is the conservative L1 form, not the tighter L2
    /// bound that backend actually obeys).
    /// A key the pre-filter proves absent reports value `0` with error
    /// bound `0.0` — the answer is exact, not a one-sided estimate —
    /// while keeping the answering slot's confidence and identity.
    pub fn estimate_detailed(&self, edge: Edge) -> Estimate {
        let slot = self.router.slot(edge.src);
        let key = edge.key();
        if let Some(f) = self.read_filter() {
            if !f.contains(slot, key) {
                return Estimate {
                    value: 0,
                    error_bound: 0.0,
                    confidence: self.bank.confidence(),
                    sketch: self.router.id_of_slot(slot),
                };
            }
        }
        Estimate {
            value: self.bank.estimate(slot, key),
            error_bound: self.bank.slot_error_bound(slot),
            confidence: self.bank.confidence(),
            sketch: self.router.id_of_slot(slot),
        }
    }

    /// Batched [`estimate_detailed`](Self::estimate_detailed): `out` is
    /// overwritten with one [`Estimate`] per edge, in query order. The
    /// values ride [`estimate_batch`](Self::estimate_batch) (slot
    /// counting-sort + the backend's batched read kernel) and the
    /// quality attributes — per-slot error bound, bank-wide confidence,
    /// answering [`SketchId`] — are constants of the routing, computed
    /// once per slot instead of once per query. One pass answers values
    /// *and* confidence intervals, so workload replay reports both
    /// without re-probing the synopsis. Rows are bit-identical to the
    /// scalar [`estimate_detailed`](Self::estimate_detailed) per edge.
    pub fn estimate_detailed_batch(&self, edges: &[Edge], out: &mut Vec<Estimate>) {
        let mut vals = Vec::with_capacity(edges.len());
        self.estimate_batch(edges, &mut vals);
        let confidence = self.bank.confidence();
        let bounds: Vec<f64> = (0..self.bank.num_slots())
            .map(|s| self.bank.slot_error_bound(s as u32))
            .collect();
        out.clear();
        out.extend(edges.iter().zip(&vals).map(|(e, &value)| {
            let slot = self.router.slot(e.src);
            let absent = self
                .read_filter()
                .is_some_and(|f| !f.contains(slot, e.key()));
            Estimate {
                value,
                // Filter-proven absence is exact (see
                // `estimate_detailed`); the slot's confidence still
                // describes the answering synopsis.
                error_bound: if absent { 0.0 } else { bounds[slot as usize] },
                confidence,
                sketch: self.router.id_of_slot(slot),
            }
        }));
    }

    /// Which sketch would answer a query on `edge`.
    pub fn route(&self, edge: Edge) -> SketchId {
        self.router.route(edge.src)
    }

    /// Number of partitioned (non-outlier) sketches.
    pub fn num_partitions(&self) -> usize {
        self.bank.num_slots() - 1
    }

    /// Shared sketch depth `d`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total synopsis memory — counter cells plus the pre-filter's bit
    /// array — in bytes. Both are carved from the same builder budget,
    /// so this never exceeds the `memory_bytes` the sketch was built
    /// with (pinned by the budget regression tests).
    pub fn bytes(&self) -> usize {
        self.bank.byte_size() + self.prefilter_bytes()
    }

    /// Memory held by the zero-frequency pre-filter, in bytes (`0` when
    /// the filter is disabled).
    pub fn prefilter_bytes(&self) -> usize {
        self.filter.as_ref().map_or(0, BlockedBloom::byte_size)
    }

    /// Whether reads currently consult the pre-filter.
    pub fn prefilter_enabled(&self) -> bool {
        self.filter_reads && self.filter.is_some()
    }

    /// Toggle read-side use of the pre-filter. Membership keeps being
    /// maintained on writes either way, so flipping this back on later
    /// loses nothing; with `false` every read behaves exactly as a
    /// filter-less sketch (the CLI's `--prefilter off`).
    pub fn set_prefilter(&mut self, on: bool) {
        self.filter_reads = on;
    }

    /// Router memory overhead, in bytes (§5 calls it marginal; exposed so
    /// experiments can verify that).
    pub fn router_bytes(&self) -> usize {
        self.router.approx_bytes()
    }

    /// Total stream weight absorbed so far.
    pub fn total_weight(&self) -> u64 {
        (0..self.bank.num_slots())
            .map(|s| self.bank.slot_total(s as u32))
            .sum()
    }

    /// Stream weight absorbed by the outlier sketch alone (§6.6 studies
    /// this split).
    pub fn outlier_weight(&self) -> u64 {
        self.bank.slot_total(self.router.outlier_slot())
    }

    /// The partition plan the sketch was built from (read-only).
    pub fn plan(&self) -> &PartitionPlan {
        &self.plan
    }

    /// Per-partition `(width, absorbed weight)` diagnostics.
    pub fn partition_loads(&self) -> Vec<(usize, u64)> {
        (0..self.num_partitions())
            .map(|s| {
                (
                    self.bank.slot_width(s as u32),
                    self.bank.slot_total(s as u32),
                )
            })
            .collect()
    }

    /// Merge another gSketch into this one (cell-wise), enabling
    /// *distributed ingest*: clone one built (empty) sketch to `k`
    /// workers, split the stream arbitrarily among them, and merge the
    /// results — the counters are linear, so the merged sketch is
    /// bit-identical to one that ingested the whole stream serially.
    ///
    /// Both sketches must come from the same build (identical slot
    /// layout, seed, and routing); anything else is rejected before any
    /// counter is touched, because merging differently-partitioned
    /// sketches would silently mix unrelated counters.
    pub fn merge(&mut self, other: &Self) -> Result<(), SketchError> {
        if self.bank.num_slots() != other.bank.num_slots() {
            return Err(SketchError::IncompatibleMerge {
                reason: format!(
                    "slot count {} vs {}",
                    self.bank.num_slots(),
                    other.bank.num_slots()
                ),
            });
        }
        // Membership must merge with the counters: dropping the other
        // side's filter bits would manufacture false negatives for keys
        // only the other worker ingested. Identical builds have
        // identical filter layouts, so a presence mismatch means a
        // different build.
        match (&mut self.filter, &other.filter) {
            (Some(mine), Some(theirs)) => mine.union_check(theirs)?,
            (None, None) => {}
            _ => {
                return Err(SketchError::IncompatibleMerge {
                    reason: "one side has a pre-filter, the other does not (different builds)"
                        .into(),
                });
            }
        }
        self.bank.merge(&other.bank)?;
        if let (Some(mine), Some(theirs)) = (&mut self.filter, &other.filter) {
            mine.union(theirs);
        }
        Ok(())
    }

    /// Fold the whole synopsis — every partition slot plus the outlier —
    /// into one standalone width-`quantum` backend sketch summarizing
    /// the union of everything this sketch absorbed. Requires every slot
    /// width to be a multiple of `quantum` (build with
    /// [`GSketchBuilder::width_quantum`]); the fold is exact in the
    /// sense that the result is a valid width-`quantum` sketch of the
    /// same stream, with the correspondingly wider `e·N/quantum` bound.
    /// This is the windowed deployment's coarsening kernel (DESIGN.md
    /// §13): expired windows fold to tiers, and tiers built from the
    /// same seed and depth merge with each other.
    pub fn fold(&self, quantum: usize) -> Result<B, SketchError> {
        B::fold_bank(&self.bank, quantum)
    }

    /// Decompose into raw parts (used by [`crate::ConcurrentGSketch`]).
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (
        B::Bank,
        Router,
        PartitionPlan,
        usize,
        Option<BlockedBloom>,
        bool,
    ) {
        (
            self.bank,
            self.router,
            self.plan,
            self.depth,
            self.filter,
            self.filter_reads,
        )
    }

    /// Reassemble from raw parts (used by [`crate::ConcurrentGSketch`]).
    pub(crate) fn from_parts(
        bank: B::Bank,
        router: Router,
        plan: PartitionPlan,
        depth: usize,
        filter: Option<BlockedBloom>,
        filter_reads: bool,
    ) -> Self {
        Self {
            bank,
            router,
            plan,
            depth,
            filter,
            filter_reads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeSink;
    use gstream::vertex::VertexId;

    fn se(s: u32, d: u32, w: u64) -> StreamEdge {
        StreamEdge::weighted(Edge::new(s, d), 0, w)
    }

    /// A stream with a light community (vertices 0..50) and a heavy one
    /// (vertices 100..110).
    fn skewed_stream() -> Vec<StreamEdge> {
        let mut out = Vec::new();
        for v in 0..50u32 {
            for t in 0..8u32 {
                out.push(se(v, 200 + t, 1));
            }
        }
        for v in 100..110u32 {
            for t in 0..8u32 {
                out.push(se(v, 300 + t, 250));
            }
        }
        out
    }

    #[test]
    fn build_rejects_tiny_memory() {
        let r = GSketch::builder().memory_bytes(8).build_from_sample(&[]);
        assert!(r.is_err());
    }

    #[test]
    fn build_rejects_bad_outlier_fraction() {
        let r = GSketch::builder()
            .outlier_fraction(1.5)
            .build_from_sample(&[]);
        assert!(r.is_err());
    }

    #[test]
    fn empty_sample_degenerates_to_outlier_only() {
        let mut g = GSketch::builder()
            .memory_bytes(1 << 16)
            .build_from_sample(&[])
            .unwrap();
        assert_eq!(g.num_partitions(), 0);
        let e = Edge::new(1u32, 2u32);
        g.update(StreamEdge::weighted(e, 0, 5));
        assert!(g.estimate(e) >= 5);
        assert_eq!(g.route(e), SketchId::Outlier);
    }

    #[test]
    fn estimates_never_underestimate() {
        let stream = skewed_stream();
        let mut g = GSketch::builder()
            .memory_bytes(1 << 16)
            .min_width(64)
            .build_from_sample(&stream)
            .unwrap();
        g.ingest(&stream);
        for sev in &stream {
            assert!(
                g.estimate(sev.edge) >= sev.weight,
                "edge {} underestimated",
                sev.edge
            );
        }
    }

    #[test]
    fn sampled_vertices_route_to_partitions() {
        let stream = skewed_stream();
        let g = GSketch::builder()
            .memory_bytes(1 << 16)
            .min_width(64)
            .build_from_sample(&stream)
            .unwrap();
        assert!(g.num_partitions() >= 1);
        assert!(matches!(
            g.route(Edge::new(0u32, 200u32)),
            SketchId::Partition(_)
        ));
        assert_eq!(g.route(Edge::new(9999u32, 1u32)), SketchId::Outlier);
    }

    #[test]
    fn unsampled_vertices_served_by_outlier() {
        let stream = skewed_stream();
        let mut g = GSketch::builder()
            .memory_bytes(1 << 16)
            .min_width(64)
            .build_from_sample(&stream)
            .unwrap();
        let novel = Edge::new(7777u32, 1u32);
        g.update(StreamEdge::weighted(novel, 0, 42));
        assert!(g.estimate(novel) >= 42);
        assert_eq!(g.outlier_weight(), 42);
    }

    #[test]
    fn memory_budget_respected() {
        let stream = skewed_stream();
        for bytes in [1 << 14, 1 << 16, 1 << 20] {
            let g = GSketch::builder()
                .memory_bytes(bytes)
                .min_width(64)
                .build_from_sample(&stream)
                .unwrap();
            assert!(
                g.bytes() <= bytes,
                "sketch uses {} of {} budget",
                g.bytes(),
                bytes
            );
            // And not pathologically under-used either (>50%).
            assert!(g.bytes() * 2 >= bytes, "budget underused: {}", g.bytes());
        }
    }

    #[test]
    fn estimate_detailed_reports_local_bounds() {
        let stream = skewed_stream();
        let mut g = GSketch::builder()
            .memory_bytes(1 << 16)
            .min_width(64)
            .build_from_sample(&stream)
            .unwrap();
        g.ingest(&stream);
        let light = g.estimate_detailed(Edge::new(0u32, 200u32));
        assert!(light.value >= 1);
        assert!(light.confidence > 0.9);
        assert!(light.error_bound >= 0.0);
        // A partitioned sketch's bound depends only on ITS load, which
        // must be below the global bound of an equally-sized single
        // sketch fed the whole stream.
        let total: u64 = stream.iter().map(|s| s.weight).sum();
        let global_bound = std::f64::consts::E * total as f64 / (g.bytes() as f64 / 8.0 / 3.0);
        assert!(light.error_bound <= global_bound * 10.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = skewed_stream();
        let build = || {
            let mut g = GSketch::builder()
                .memory_bytes(1 << 15)
                .min_width(64)
                .seed(7)
                .build_from_sample(&stream)
                .unwrap();
            g.ingest(&stream);
            g
        };
        let a = build();
        let b = build();
        for sev in &stream {
            assert_eq!(a.estimate(sev.edge), b.estimate(sev.edge));
        }
    }

    #[test]
    fn workload_build_runs() {
        let stream = skewed_stream();
        let workload: Vec<Edge> = stream.iter().take(50).map(|s| s.edge).collect();
        let mut g = GSketch::builder()
            .memory_bytes(1 << 16)
            .min_width(64)
            .build_with_workload(&stream, &workload)
            .unwrap();
        g.ingest(&stream);
        for e in &workload {
            assert!(g.estimate(*e) >= 1);
        }
    }

    #[test]
    fn partition_loads_sum_to_routed_weight() {
        let stream = skewed_stream();
        let mut g = GSketch::builder()
            .memory_bytes(1 << 16)
            .min_width(64)
            .build_from_sample(&stream)
            .unwrap();
        g.ingest(&stream);
        let loads: u64 = g.partition_loads().iter().map(|&(_, n)| n).sum();
        assert_eq!(loads + g.outlier_weight(), g.total_weight());
        let stream_weight: u64 = stream.iter().map(|s| s.weight).sum();
        assert_eq!(g.total_weight(), stream_weight);
    }

    #[test]
    fn ingest_batch_matches_streaming_ingest() {
        let stream = skewed_stream();
        let build = || {
            GSketch::builder()
                .memory_bytes(1 << 15)
                .min_width(64)
                .seed(5)
                .build_from_sample(&stream)
                .unwrap()
        };
        let mut streaming = build();
        streaming.ingest(&stream);
        let mut batched = build();
        batched.ingest_batch(&stream);
        for sev in &stream {
            assert_eq!(batched.estimate(sev.edge), streaming.estimate(sev.edge));
        }
        assert_eq!(batched.total_weight(), streaming.total_weight());
        assert_eq!(batched.outlier_weight(), streaming.outlier_weight());
    }

    #[test]
    fn merge_equals_serial_ingest() {
        let stream = skewed_stream();
        let build = || {
            GSketch::builder()
                .memory_bytes(1 << 15)
                .min_width(64)
                .seed(5)
                .build_from_sample(&stream)
                .unwrap()
        };
        let mut serial = build();
        serial.ingest(&stream);

        let mid = stream.len() / 2;
        let mut worker_a = build();
        let mut worker_b = build();
        worker_a.ingest(&stream[..mid]);
        worker_b.ingest(&stream[mid..]);
        worker_a.merge(&worker_b).unwrap();

        for se in &stream {
            assert_eq!(worker_a.estimate(se.edge), serial.estimate(se.edge));
        }
        assert_eq!(worker_a.total_weight(), serial.total_weight());
    }

    #[test]
    fn merge_rejects_different_builds() {
        let stream = skewed_stream();
        let mut a = GSketch::builder()
            .memory_bytes(1 << 15)
            .min_width(64)
            .seed(5)
            .build_from_sample(&stream)
            .unwrap();
        // Different memory → different shapes.
        let b = GSketch::builder()
            .memory_bytes(1 << 14)
            .min_width(64)
            .seed(5)
            .build_from_sample(&stream)
            .unwrap();
        assert!(a.merge(&b).is_err());
        // Different seed → same shapes, different hash families.
        let c = GSketch::builder()
            .memory_bytes(1 << 15)
            .min_width(64)
            .seed(6)
            .build_from_sample(&stream)
            .unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn merge_failure_leaves_receiver_untouched() {
        let stream = skewed_stream();
        let mut a = GSketch::builder()
            .memory_bytes(1 << 15)
            .min_width(64)
            .seed(5)
            .build_from_sample(&stream)
            .unwrap();
        a.ingest(&stream);
        let before: Vec<u64> = stream.iter().map(|se| a.estimate(se.edge)).collect();
        let b = GSketch::builder()
            .memory_bytes(1 << 14)
            .min_width(64)
            .seed(5)
            .build_from_sample(&stream)
            .unwrap();
        let _ = a.merge(&b);
        let after: Vec<u64> = stream.iter().map(|se| a.estimate(se.edge)).collect();
        assert_eq!(before, after, "failed merge must not mutate");
    }

    #[test]
    fn countmin_backend_builds_and_answers() {
        let stream = skewed_stream();
        let mut g = GSketch::builder()
            .memory_bytes(1 << 16)
            .min_width(64)
            .build_from_sample_backend::<CountMinSketch>(&stream)
            .unwrap();
        g.ingest(&stream);
        for sev in &stream {
            assert!(g.estimate(sev.edge) >= sev.weight);
        }
        assert!(g.num_partitions() >= 1);
    }

    #[test]
    fn countsketch_backend_builds_and_answers() {
        use sketch::CountSketch;
        let stream = skewed_stream();
        let mut g = GSketch::builder()
            .memory_bytes(1 << 16)
            .min_width(64)
            .build_from_sample_backend::<CountSketch>(&stream)
            .unwrap();
        g.ingest(&stream);
        // CountSketch is unbiased, not one-sided: require ballpark.
        let heavy = g.estimate(Edge::new(100u32, 300u32));
        assert!(heavy >= 125, "heavy edge estimate collapsed: {heavy}");
        assert_eq!(g.total_weight(), stream.iter().map(|s| s.weight).sum());
    }

    #[test]
    fn heavy_and_light_separated_improves_light_estimates() {
        // The headline effect: light edges must not absorb heavy noise.
        let stream = skewed_stream();
        let mut g = GSketch::builder()
            .memory_bytes(1 << 13) // deliberately tight
            .min_width(16)
            .collision_factor(0.01)
            .build_from_sample(&stream)
            .unwrap();
        g.ingest(&stream);
        // All light edges have true frequency 1·8 = 8 per (v, t) pair?
        // No: each (v, 200+t) appears once with weight 1 → truth 1.
        let mut total_rel_err = 0.0;
        let mut n = 0;
        for v in 0..50u32 {
            for t in 0..8u32 {
                let est = g.estimate(Edge::new(v, 200 + t));
                total_rel_err += (est as f64 - 1.0) / 1.0;
                n += 1;
            }
        }
        let avg = total_rel_err / n as f64;
        // With heavy edges (weight 250) quarantined in their own sketch,
        // light-edge error must stay moderate even at this tiny budget.
        assert!(avg < 30.0, "light-edge avg rel err too high: {avg}");
        let _ = VertexId(0); // silence unused import in some cfgs
    }
}
