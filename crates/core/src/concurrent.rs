//! Concurrent ingest (an engineering extension beyond the paper).
//!
//! gSketch's partitioned layout shards naturally: each localized sketch
//! gets its own lock, so writers updating edges routed to different
//! partitions never contend. The router itself is read-only after
//! construction. This module exists because real deployments ingest from
//! multiple network threads; the paper's experiments are single-threaded
//! and none of the reproduction benches depend on this type.

use crate::gsketch::GSketch;
use crate::router::{Router, SketchId};
use gstream::edge::{Edge, StreamEdge};
use parking_lot::Mutex;
use sketch::CountMinSketch;

/// A thread-safe gSketch supporting shared-reference ingest.
#[derive(Debug)]
pub struct ConcurrentGSketch {
    partitions: Vec<Mutex<CountMinSketch>>,
    outlier: Mutex<CountMinSketch>,
    router: Router,
    depth: usize,
}

impl ConcurrentGSketch {
    /// Shard a built [`GSketch`] into a concurrent one.
    pub fn from_gsketch(g: GSketch) -> Self {
        let (partitions, outlier, router, depth) = g.into_parts();
        Self {
            partitions: partitions.into_iter().map(Mutex::new).collect(),
            outlier: Mutex::new(outlier),
            router,
            depth,
        }
    }

    /// Record one arrival (callable from any thread).
    pub fn update(&self, edge: Edge, weight: u64) {
        let key = edge.key();
        match self.router.route(edge.src) {
            SketchId::Partition(i) => self.partitions[i as usize].lock().update(key, weight),
            SketchId::Outlier => self.outlier.lock().update(key, weight),
        }
    }

    /// Ingest a slice of arrivals.
    pub fn ingest(&self, stream: &[StreamEdge]) {
        for se in stream {
            self.update(se.edge, se.weight);
        }
    }

    /// Estimate the aggregate frequency of an edge.
    pub fn estimate(&self, edge: Edge) -> u64 {
        let key = edge.key();
        match self.router.route(edge.src) {
            SketchId::Partition(i) => self.partitions[i as usize].lock().estimate(key),
            SketchId::Outlier => self.outlier.lock().estimate(key),
        }
    }

    /// Number of partitioned sketches (lock shards).
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Reassemble a sequential [`GSketch`].
    pub fn into_gsketch(self) -> GSketch {
        GSketch::from_parts(
            self.partitions
                .into_iter()
                .map(Mutex::into_inner)
                .collect(),
            self.outlier.into_inner(),
            self.router,
            self.depth,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn build() -> ConcurrentGSketch {
        let sample: Vec<StreamEdge> = (0..100u32)
            .map(|v| StreamEdge::unit(Edge::new(v, v + 1000), v as u64))
            .collect();
        let g = GSketch::builder()
            .memory_bytes(1 << 16)
            .min_width(32)
            .build_from_sample(&sample)
            .unwrap();
        ConcurrentGSketch::from_gsketch(g)
    }

    #[test]
    fn single_thread_matches_sequential_semantics() {
        let c = build();
        let e = Edge::new(5u32, 1005u32);
        c.update(e, 7);
        assert!(c.estimate(e) >= 7);
    }

    #[test]
    fn concurrent_ingest_loses_nothing() {
        let c = Arc::new(build());
        let threads = 8;
        let per_thread = 1_000u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                // All threads hammer the same edge plus a private one.
                let shared = Edge::new(1u32, 1001u32);
                let private = Edge::new(t as u32, 1000 + t as u32);
                for _ in 0..per_thread {
                    c.update(shared, 1);
                    c.update(private, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let shared = Edge::new(1u32, 1001u32);
        assert!(c.estimate(shared) >= threads as u64 * per_thread);
        // Counter totals must reflect every update exactly (no lost
        // increments under the locks).
        let g = Arc::try_unwrap(c).unwrap().into_gsketch();
        assert_eq!(g.total_weight(), threads as u64 * per_thread * 2);
    }

    #[test]
    fn roundtrip_preserves_estimates() {
        let c = build();
        let e = Edge::new(3u32, 1003u32);
        c.update(e, 11);
        let g = c.into_gsketch();
        assert!(g.estimate(e) >= 11);
    }
}
