//! Concurrent ingest (an engineering extension beyond the paper).
//!
//! gSketch's partitioned layout shards naturally: writers whose edges
//! route to different partitions touch disjoint slices of the counter
//! slab, and the router itself is read-only after construction. Since
//! the arena refactor (DESIGN.md §2) this module no longer takes a lock
//! per partition: the synopsis is an [`AtomicCmArena`] — the same
//! contiguous slab as the sequential [`CmArena`](sketch::CmArena) with
//! `AtomicU64` cells — so updates are lock-free saturating CAS adds and
//! contention is striped across slots (per-slot total counters included)
//! instead of serialized behind `Vec<Mutex<CountMinSketch>>`. This module
//! exists because real deployments ingest from multiple network threads;
//! the paper's experiments are single-threaded.

use crate::gsketch::GSketch;
use crate::partition::PartitionPlan;
use crate::pipeline::SlotSink;
use crate::router::{Router, SketchId};
use crate::sink::{EdgeSink, SlotRouted};
use gstream::edge::{Edge, StreamEdge};
use gstream::vertex::VertexId;
use sketch::{AtomicBlockedBloom, AtomicCmArena};

/// A thread-safe gSketch supporting shared-reference ingest over the
/// default arena backend.
#[derive(Debug)]
pub struct ConcurrentGSketch {
    bank: AtomicCmArena,
    router: Router,
    plan: PartitionPlan,
    depth: usize,
    /// Zero-frequency pre-filter in its lock-free form; membership is
    /// maintained on every commit surface (DESIGN.md §12).
    filter: Option<AtomicBlockedBloom>,
    /// Whether reads consult the filter (mirrors the sequential toggle).
    filter_reads: bool,
}

impl ConcurrentGSketch {
    /// Freeze a built [`GSketch`] into a concurrent one.
    pub fn from_gsketch(g: GSketch) -> Self {
        let (bank, router, plan, depth, filter, filter_reads) = g.into_parts();
        Self {
            bank: bank.into_atomic(),
            router,
            plan,
            depth,
            filter: filter.map(sketch::BlockedBloom::into_atomic),
            filter_reads,
        }
    }

    /// The pre-filter, if reads should consult it.
    #[inline]
    fn read_filter(&self) -> Option<&AtomicBlockedBloom> {
        if self.filter_reads {
            self.filter.as_ref()
        } else {
            None
        }
    }

    /// Estimate the aggregate frequency of an edge. Lock-free; sees every
    /// update that happened-before the call. Keys the pre-filter has
    /// never seen answer exactly `0` without touching a counter row.
    pub fn estimate(&self, edge: Edge) -> u64 {
        let slot = self.router.slot(edge.src);
        let key = edge.key();
        if let Some(f) = self.read_filter() {
            if !f.contains(slot, key) {
                return 0;
            }
        }
        self.bank.estimate_slot(slot, key)
    }

    /// Answer a whole query batch, counting-sorted by router slot and
    /// probed through the atomic arena's batched read kernel — the same
    /// slot-grouped discipline as [`GSketch::estimate_batch`], callable
    /// from any thread concurrently with ingest (each answer sees every
    /// update that happened-before the call). With the pre-filter on,
    /// each slot run is first screened through the batched membership
    /// kernel and only surviving keys reach the counters.
    // audit: kernel(bounds-free)
    pub fn estimate_batch(&self, edges: &[Edge], out: &mut Vec<u64>) {
        if let Some(f) = self.read_filter() {
            let mut mask = Vec::new();
            crate::query::estimate_batch_by_slot(
                edges,
                self.bank.num_slots(),
                |src| self.router.slot(src),
                |slot, keys, vals| {
                    f.contains_batch(slot, keys, &mut mask);
                    crate::gsketch::filtered_run(
                        &mask,
                        keys,
                        |ks, vs| self.bank.estimate_batch_slot(slot, ks, vs),
                        vals,
                    );
                },
                out,
            );
            return;
        }
        crate::query::estimate_batch_by_slot(
            edges,
            self.bank.num_slots(),
            |src| self.router.slot(src),
            |slot, keys, vals| self.bank.estimate_batch_slot(slot, keys, vals),
            out,
        );
    }

    /// Which sketch serves `edge`.
    pub fn route(&self, edge: Edge) -> SketchId {
        self.router.route(edge.src)
    }

    /// Number of partitioned sketches (contention stripes).
    pub fn num_partitions(&self) -> usize {
        self.bank.num_slots() - 1
    }

    /// Total stream weight absorbed so far across all slots (sees every
    /// update that happened-before the call).
    pub fn total_weight(&self) -> u64 {
        (0..self.bank.num_slots())
            .map(|s| self.bank.slot_total(s as u32))
            .fold(0u64, u64::saturating_add)
    }

    /// Thaw back into a sequential [`GSketch`]. Requires exclusive
    /// ownership, so no updates can be in flight.
    pub fn into_gsketch(self) -> GSketch {
        GSketch::from_parts(
            self.bank.into_arena(),
            self.router,
            self.plan,
            self.depth,
            self.filter.map(AtomicBlockedBloom::into_bloom),
            self.filter_reads,
        )
    }
}

impl EdgeSink for ConcurrentGSketch {
    #[inline]
    fn update(&mut self, se: StreamEdge) {
        (&*self).update(se);
    }
}

/// The shared-reference sink: what each worker thread holds. Updates go
/// through the lock-free saturating-CAS adds, so any number of `&self`
/// sinks may ingest concurrently.
impl EdgeSink for &ConcurrentGSketch {
    #[inline]
    fn update(&mut self, se: StreamEdge) {
        let slot = self.router.slot(se.edge.src);
        let key = se.edge.key();
        if let Some(f) = &self.filter {
            f.insert(slot, key);
        }
        self.bank.update_slot(slot, key, se.weight);
    }
}

/// Same soundness argument as the sequential [`GSketch`]: slot spans
/// are disjoint, so the router slot bounds a write's blast radius.
impl crate::replay::WriteLocalized for ConcurrentGSketch {
    fn write_domains(&self) -> usize {
        self.bank.num_slots()
    }

    #[inline]
    fn write_domain(&self, src: VertexId) -> u32 {
        self.router.slot(src)
    }
}

/// The routing view shared by both pipelines and the slot-routed query
/// path: the read-only router over the arena's flat slot space.
impl SlotRouted for ConcurrentGSketch {
    fn num_slots(&self) -> usize {
        self.bank.num_slots()
    }

    #[inline]
    fn slot_of(&self, src: VertexId) -> u32 {
        self.router.slot(src)
    }
}

/// The pipeline-facing surface: route by source vertex, commit key-sorted
/// runs straight into the atomic arena's slot spans.
impl SlotSink for ConcurrentGSketch {
    #[inline]
    fn commit_run(&self, slot: u32, sorted_run: &[(u64, u64)]) {
        if let Some(f) = &self.filter {
            f.insert_run(slot, sorted_run);
        }
        self.bank.add_batch_saturating(slot, sorted_run);
    }

    #[inline]
    fn commit_run_exclusive(&self, slot: u32, sorted_run: &[(u64, u64)]) {
        if let Some(f) = &self.filter {
            // Sound under the same contract as the counter path: the
            // caller owns this slot exclusively, and the filter's blocks
            // are slot-partitioned just like the arena's spans.
            f.insert_run_exclusive(slot, sorted_run);
        }
        self.bank.add_batch_saturating_exclusive(slot, sorted_run);
    }

    /// First-touch the owner's contiguous slice of the slab (see
    /// [`sketch::AtomicCmArena::touch_slot_range`]).
    fn warm_slots(&self, lo: u32, hi: u32) {
        self.bank.touch_slot_range(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn build() -> ConcurrentGSketch {
        let sample: Vec<StreamEdge> = (0..100u32)
            .map(|v| StreamEdge::unit(Edge::new(v, v + 1000), v as u64))
            .collect();
        let g = GSketch::builder()
            .memory_bytes(1 << 16)
            .min_width(32)
            .build_from_sample(&sample)
            .unwrap();
        ConcurrentGSketch::from_gsketch(g)
    }

    #[test]
    fn single_thread_matches_sequential_semantics() {
        let mut c = build();
        let e = Edge::new(5u32, 1005u32);
        c.update(StreamEdge::weighted(e, 0, 7));
        assert!(c.estimate(e) >= 7);
    }

    #[test]
    fn concurrent_ingest_loses_nothing() {
        let c = Arc::new(build());
        let threads = 8;
        let per_thread = 1_000u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                // Each thread ingests through its own shared-reference
                // sink, all hammering one edge plus a private one.
                let mut sink: &ConcurrentGSketch = &c;
                let shared = Edge::new(1u32, 1001u32);
                let private = Edge::new(t as u32, 1000 + t as u32);
                for _ in 0..per_thread {
                    sink.update(StreamEdge::unit(shared, 0));
                    sink.update(StreamEdge::unit(private, 0));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let shared = Edge::new(1u32, 1001u32);
        assert!(c.estimate(shared) >= threads as u64 * per_thread);
        assert_eq!(c.total_weight(), threads as u64 * per_thread * 2);
        // Counter totals must reflect every update exactly (no lost
        // increments under the atomic adds).
        let g = Arc::try_unwrap(c).unwrap().into_gsketch();
        assert_eq!(g.total_weight(), threads as u64 * per_thread * 2);
    }

    #[test]
    fn roundtrip_preserves_estimates() {
        let mut c = build();
        let e = Edge::new(3u32, 1003u32);
        c.update(StreamEdge::weighted(e, 0, 11));
        let g = c.into_gsketch();
        assert!(g.estimate(e) >= 11);
    }

    #[test]
    fn roundtrip_preserves_routing_and_plan() {
        let sample: Vec<StreamEdge> = (0..100u32)
            .map(|v| StreamEdge::unit(Edge::new(v, v + 1000), v as u64))
            .collect();
        let g = GSketch::builder()
            .memory_bytes(1 << 16)
            .min_width(32)
            .build_from_sample(&sample)
            .unwrap();
        let partitions = g.num_partitions();
        let routes: Vec<SketchId> = sample.iter().map(|se| g.route(se.edge)).collect();
        let back = ConcurrentGSketch::from_gsketch(g).into_gsketch();
        assert_eq!(back.num_partitions(), partitions);
        assert_eq!(back.plan().len(), partitions);
        for (se, r) in sample.iter().zip(routes) {
            assert_eq!(back.route(se.edge), r);
        }
    }
}
