//! The sketch-partitioning algorithm (§4, Figures 2 and 3).
//!
//! A virtual global CountMin sketch of width `w` is recursively split in
//! two, decision-tree style. At each node the sample vertices are sorted
//! by the scenario's key (`f̃v/d̃` for data-only, `f̃v/w̃` with a workload
//! sample) and the pivot minimizing the objective `E′` (Eq. 9 / Eq. 11)
//! is chosen; each child receives half the node's width. A node stops
//! splitting — and a localized sketch is materialized — when its width
//! would drop below `w0`, or when it counts so few distinct edges that
//! collisions are already improbable (`Σ d̃(m) ≤ C·width`, Theorem 1).
//! Sketches terminated by the second criterion are shrunk to width
//! `Σ d̃(m)`; the saved width is redistributed over the remaining leaves
//! proportionally to their estimated frequency mass (the paper notes the
//! space "can be allocated to other sketches" without prescribing a
//! scheme; see DESIGN.md §5).

use crate::vstats::{SampleStats, VertexStat};
use gstream::vertex::VertexId;
use serde::{Deserialize, Serialize};

/// Which objective function drives pivot selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Objective {
    /// Scenario 1: data sample only — Eq. (9), sort key `f̃v/d̃`.
    #[default]
    DataOnly,
    /// Scenario 2: data + workload samples — Eq. (11), sort key `f̃v/w̃`.
    DataWorkload,
}

/// How the final leaf widths are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WidthAllocation {
    /// Minimize `Σ_i E_i = Σ_i F̃(S_i)·A(S_i)/w_i` exactly: by Lagrange
    /// multipliers the optimum is `w_i ∝ √(F̃(S_i)·A(S_i))`. Widths are
    /// additionally capped at twice the leaf's estimated distinct-edge
    /// count (more cells than edges is waste, Theorem 1), with the
    /// surplus re-flowing to uncapped leaves. This solves the paper's
    /// Problem 2 objective directly instead of approximating it with
    /// equal halving; the ablation bench compares both.
    #[default]
    Optimal,
    /// The paper's literal scheme (Figures 2–3): every split halves the
    /// width, Theorem-1 leaves shrink to `Σ d̃(m)`, and saved width is
    /// redistributed proportionally to frequency mass.
    EqualSplit,
}

/// Tunables of the partitioning algorithm.
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Width of the virtual global sketch (cells per row) available to
    /// the partitioned (non-outlier) sketches.
    pub total_width: usize,
    /// Minimum width a sketch may be split down to (`w0`).
    pub min_width: usize,
    /// Collision-probability constant `C ∈ (0, 1)` of Theorem 1.
    pub collision_factor: f64,
    /// Objective/scenario selector.
    pub objective: Objective,
    /// Whether width saved by Theorem-1 shrinking is redistributed to the
    /// remaining leaves (DESIGN.md §5). Only meaningful under
    /// [`WidthAllocation::EqualSplit`]; the ablation bench toggles it.
    pub redistribute: bool,
    /// Final width assignment policy.
    pub allocation: WidthAllocation,
}

impl PartitionConfig {
    /// Reasonable defaults for a given total width.
    pub fn new(total_width: usize) -> Self {
        Self {
            total_width,
            min_width: 512,
            collision_factor: 0.5,
            objective: Objective::DataOnly,
            redistribute: true,
            allocation: WidthAllocation::Optimal,
        }
    }

    fn validate(&self) {
        // lint: allow(no-panics) — documented precondition: a malformed partition plan must fail fast at build time, not skew estimates later.
        assert!(self.total_width >= 2, "total width must be at least 2");
        assert!(self.min_width >= 2, "min width must be at least 2");
        assert!(
            self.collision_factor > 0.0 && self.collision_factor < 1.0,
            "collision factor must lie in (0, 1)"
        );
    }
}

/// A materialized leaf of the partitioning tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanLeaf {
    /// The sample vertices routed to this sketch.
    pub vertices: Vec<VertexId>,
    /// Final width of the localized sketch.
    pub width: usize,
    /// Whether the leaf was terminated (and shrunk) by the Theorem-1
    /// distinct-edge criterion.
    pub shrunk: bool,
    /// Estimated frequency mass `F̃(S_i) = Σ f̃v(m)` of the leaf.
    pub freq_mass: u64,
    /// Estimated distinct-edge count `Σ d̃(m)` of the leaf.
    pub degree_mass: u64,
    /// The leaf's error factor `A(S_i)` (sum of per-vertex numerator
    /// factors of E′); `E_i ∝ F̃(S_i)·A(S_i)/w_i`.
    pub error_factor: f64,
}

/// The output of the partitioning pre-processing step: the leaves whose
/// sketches will be physically constructed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionPlan {
    /// Materialized leaves. Never empty if the sample was non-empty.
    pub leaves: Vec<PlanLeaf>,
    /// Nodes examined while building the tree (diagnostics).
    pub nodes_examined: usize,
}

impl PartitionPlan {
    /// Total width across all leaves.
    pub fn total_width(&self) -> usize {
        self.leaves.iter().map(|l| l.width).sum()
    }

    /// Number of localized sketches.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the plan has no leaves (empty sample).
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }
}

/// One vertex with its partitioning keys, precomputed once.
#[derive(Debug, Clone, Copy)]
struct Item {
    vertex: VertexId,
    /// `f̃v(m)` — frequency mass contribution.
    freq: u64,
    /// `d̃(m)` — degree mass contribution.
    degree: u64,
    /// Sort key (scenario dependent).
    key: f64,
    /// Per-vertex numerator factor of `E′`:
    /// data-only `d̃²/f̃v`; data+workload `w̃·d̃/f̃v`.
    factor: f64,
}

fn make_items(stats: &SampleStats, objective: Objective) -> Vec<Item> {
    let mut items: Vec<Item> = stats
        .iter()
        .map(|(v, s)| Item {
            vertex: v,
            freq: s.freq,
            degree: s.degree,
            key: sort_key(s, objective),
            factor: factor(s, objective),
        })
        .collect();
    items.sort_unstable_by(|a, b| {
        a.key
            .partial_cmp(&b.key)
            // lint: allow(no-panics) — keys are ratios of finite, non-negative
            // sample statistics; NaN cannot reach the comparator.
            .expect("keys are finite")
            .then(a.vertex.cmp(&b.vertex))
    });
    items
}

fn sort_key(s: &VertexStat, objective: Objective) -> f64 {
    match objective {
        Objective::DataOnly => s.avg_freq(),
        Objective::DataWorkload => s.freq_per_weight(),
    }
}

fn factor(s: &VertexStat, objective: Objective) -> f64 {
    let d = s.degree as f64;
    let f = s.freq as f64;
    match objective {
        // d̃(m) · F̃ / (f̃v/d̃) = (d̃²/f̃v) · F̃
        Objective::DataOnly => d * d / f,
        // w̃(n) · F̃ / (f̃v/d̃) = (w̃·d̃/f̃v) · F̃
        Objective::DataWorkload => s.workload * d / f,
    }
}

/// Find the pivot `k ∈ [1, n)` minimizing
/// `E′(k) = F̃(S1)·A(S1) + F̃(S2)·A(S2)` over the sorted items, where
/// `A(S) = Σ factor(m)`. Returns `(pivot, E′)`, or `None` when `n < 2`.
fn best_pivot(items: &[Item]) -> Option<(usize, f64)> {
    let n = items.len();
    if n < 2 {
        return None;
    }
    // Prefix sums of freq-mass and factor allow O(1) evaluation per pivot.
    let total_freq: f64 = items.iter().map(|i| i.freq as f64).sum();
    let total_factor: f64 = items.iter().map(|i| i.factor).sum();
    let mut best: Option<(usize, f64)> = None;
    let mut f1 = 0.0f64;
    let mut a1 = 0.0f64;
    for (k, item) in items.iter().enumerate().take(n - 1) {
        f1 += item.freq as f64;
        a1 += item.factor;
        let f2 = total_freq - f1;
        let a2 = total_factor - a1;
        let e = f1 * a1 + f2 * a2;
        let pivot = k + 1;
        match best {
            Some((_, be)) if be <= e => {}
            _ => best = Some((pivot, e)),
        }
    }
    best
}

/// Run the partitioning algorithm of Figure 2 / Figure 3 over the sample
/// statistics, producing the set of leaves to materialize.
pub fn partition(stats: &SampleStats, cfg: &PartitionConfig) -> PartitionPlan {
    cfg.validate();
    let items = make_items(stats, cfg.objective);
    if items.is_empty() {
        return PartitionPlan {
            leaves: Vec::new(),
            nodes_examined: 0,
        };
    }

    // Active list of (sorted item range, width); the tree is traversed
    // iteratively, exactly as the paper's active list `L`.
    struct Node {
        lo: usize,
        hi: usize,
        width: usize,
    }
    let mut active = vec![Node {
        lo: 0,
        hi: items.len(),
        width: cfg.total_width,
    }];
    let mut leaves: Vec<PlanLeaf> = Vec::new();
    let mut nodes_examined = 0usize;

    while let Some(node) = active.pop() {
        nodes_examined += 1;
        let slice = &items[node.lo..node.hi];
        let degree_mass: u64 = slice.iter().map(|i| i.degree).sum();
        let freq_mass: u64 = slice.iter().map(|i| i.freq).sum();
        let error_factor: f64 = slice.iter().map(|i| i.factor).sum();

        // Theorem-1 criterion: few enough distinct edges → materialize,
        // shrunk to Σ d̃(m).
        let collision_ok = (degree_mass as f64) <= cfg.collision_factor * node.width as f64;
        // Width criterion: too narrow to split further.
        let too_narrow = node.width / 2 < cfg.min_width;
        // Degenerate: a single vertex cannot be split.
        let unsplittable = slice.len() < 2;

        if collision_ok || too_narrow || unsplittable {
            let (width, shrunk) = if collision_ok {
                ((degree_mass as usize).clamp(2, node.width), true)
            } else {
                (node.width, false)
            };
            leaves.push(PlanLeaf {
                vertices: slice.iter().map(|i| i.vertex).collect(),
                width,
                shrunk,
                freq_mass,
                degree_mass,
                error_factor,
            });
            continue;
        }

        // lint: allow(no-panics) — the `len < 2` case `continue`d above, and
        // `best_pivot` always yields a pivot for a slice of two or more.
        let (pivot, _e) = best_pivot(slice).expect("len >= 2 checked above");
        let half = node.width / 2;
        active.push(Node {
            lo: node.lo,
            hi: node.lo + pivot,
            width: half,
        });
        active.push(Node {
            lo: node.lo + pivot,
            hi: node.hi,
            width: half,
        });
    }

    match cfg.allocation {
        WidthAllocation::EqualSplit => {
            if cfg.redistribute {
                redistribute_saved_width(&mut leaves, cfg.total_width);
            }
        }
        WidthAllocation::Optimal => {
            allocate_optimal_widths(&mut leaves, cfg.total_width);
        }
    }

    PartitionPlan {
        leaves,
        nodes_examined,
    }
}

/// Compute the optimal width share of an *extra* pseudo-leaf (the
/// outlier sketch) alongside a plan's leaves: the same
/// `w ∝ √(F̃·A)` rule, where the outlier's error factor is approximated
/// by its expected distinct-edge count (uncovered traffic is dominated
/// by frequency-1 edges, for which `Σ d̃²/f̃v = Σ d̃`). Returns the
/// width (of `total_width`) the outlier should receive.
pub fn outlier_share(
    plan: &PartitionPlan,
    total_width: usize,
    outlier_freq_mass: u64,
    outlier_degree_mass: u64,
) -> usize {
    let outlier_score = (outlier_freq_mass as f64 * outlier_degree_mass as f64).sqrt();
    let leaf_scores: f64 = plan
        .leaves
        .iter()
        .map(|l| (l.freq_mass as f64 * l.error_factor).sqrt())
        .sum();
    let denom = outlier_score + leaf_scores;
    if denom <= 0.0 {
        return (total_width / 10).max(2);
    }
    // cast: f64 -> usize truncation; outlier_score/denom <= 1, so the
    // ideal width never exceeds total_width.
    let ideal = (total_width as f64 * outlier_score / denom) as usize;
    // Cap like any leaf: no more than two cells per expected edge.
    ideal.clamp(2, (outlier_degree_mass as usize * 2).max(2))
}

/// Assign widths minimizing `Σ_i F̃_i·A_i/w_i` subject to `Σ w_i = W`:
/// the Lagrange optimum is `w_i ∝ √(F̃_i·A_i)`. Each width is capped at
/// `2·Σ d̃(m)` (beyond two cells per estimated distinct edge, extra width
/// buys nothing — Theorem 1 already bounds collisions at C = 0.5 there);
/// surplus re-flows to uncapped leaves until fixpoint.
fn allocate_optimal_widths(leaves: &mut [PlanLeaf], total_width: usize) {
    if leaves.is_empty() {
        return;
    }
    let score = |l: &PlanLeaf| (l.freq_mass as f64 * l.error_factor).sqrt();
    let cap = |l: &PlanLeaf| (l.degree_mass as usize * 2).max(2);
    let mut capped = vec![false; leaves.len()];
    let mut remaining = total_width;
    // A few rounds suffice: every round either finishes or caps ≥1 leaf.
    for _ in 0..leaves.len().min(64) {
        let denom: f64 = leaves
            .iter()
            .zip(&capped)
            .filter(|(_, &c)| !c)
            .map(|(l, _)| score(l))
            .sum();
        if denom <= 0.0 || remaining == 0 {
            break;
        }
        let mut newly_capped = false;
        let budget = remaining;
        for (i, leaf) in leaves.iter_mut().enumerate() {
            if capped[i] {
                continue;
            }
            // cast: f64 -> usize truncation; score/denom <= 1, so each ideal
            // share is bounded by `budget`.
            let ideal = (budget as f64 * score(leaf) / denom).floor() as usize;
            let c = cap(leaf);
            if ideal >= c {
                leaf.width = c;
                leaf.shrunk = true;
                capped[i] = true;
                remaining = remaining.saturating_sub(c);
                newly_capped = true;
            }
        }
        if !newly_capped {
            // Final assignment for the uncapped leaves.
            for (i, leaf) in leaves.iter_mut().enumerate() {
                if !capped[i] {
                    // cast: f64 -> usize truncation; score/denom <= 1 bounds the share
                    // by `budget`, and `.max(2)` keeps the width legal.
                    leaf.width = ((budget as f64 * score(leaf) / denom).floor() as usize).max(2);
                }
            }
            return;
        }
    }
    // All leaves capped (or degenerate). The cap is a *soft* optimum
    // derived from estimated distinct-edge counts; when the whole budget
    // still is not spent, estimated degrees were the binding constraint
    // everywhere, and since collision mass shrinks linearly with width,
    // the surplus is worth spending: grow every leaf pro rata by score.
    for (i, leaf) in leaves.iter_mut().enumerate() {
        if !capped[i] {
            leaf.width = leaf.width.max(2);
        }
    }
    let used: usize = leaves.iter().map(|l| l.width).sum();
    let surplus = total_width.saturating_sub(used);
    if surplus > 0 {
        let denom: f64 = leaves.iter().map(score).sum();
        if denom > 0.0 {
            for leaf in leaves.iter_mut() {
                // cast: f64 -> usize truncation; score/denom <= 1 bounds each share
                // by `surplus`.
                leaf.width += (surplus as f64 * score(leaf) / denom).floor() as usize;
            }
        }
    }
}

/// Hand width saved by shrunk leaves to the non-shrunk ones,
/// proportionally to their frequency mass.
fn redistribute_saved_width(leaves: &mut [PlanLeaf], total_width: usize) {
    let used: usize = leaves.iter().map(|l| l.width).sum();
    let saved = total_width.saturating_sub(used);
    if saved == 0 {
        return;
    }
    let grow_mass: u64 = leaves
        .iter()
        .filter(|l| !l.shrunk)
        .map(|l| l.freq_mass)
        .sum();
    if grow_mass == 0 {
        return;
    }
    for leaf in leaves.iter_mut().filter(|l| !l.shrunk) {
        let share = saved as f64 * leaf.freq_mass as f64 / grow_mass as f64;
        // cast: f64 -> usize truncation; leaf mass / grow_mass <= 1 bounds
        // each share by `saved`.
        leaf.width += share.floor() as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstream::edge::{Edge, StreamEdge};

    fn se(s: u32, d: u32, w: u64) -> StreamEdge {
        StreamEdge::weighted(Edge::new(s, d), 0, w)
    }

    /// A bimodal sample: vertices 0..10 have light edges, 100..110 heavy.
    fn bimodal() -> SampleStats {
        let mut sample = Vec::new();
        for v in 0..10u32 {
            for t in 0..4u32 {
                sample.push(se(v, 1000 + t, 1));
            }
        }
        for v in 100..110u32 {
            for t in 0..4u32 {
                sample.push(se(v, 2000 + t, 100));
            }
        }
        SampleStats::from_data_sample(&sample)
    }

    #[test]
    fn empty_sample_yields_empty_plan() {
        let stats = SampleStats::from_data_sample(&[]);
        let plan = partition(&stats, &PartitionConfig::new(1 << 14));
        assert!(plan.is_empty());
    }

    #[test]
    fn all_sample_vertices_covered_exactly_once() {
        let stats = bimodal();
        let mut cfg = PartitionConfig::new(1 << 14);
        cfg.min_width = 256;
        let plan = partition(&stats, &cfg);
        let mut seen: Vec<VertexId> = plan
            .leaves
            .iter()
            .flat_map(|l| l.vertices.iter().copied())
            .collect();
        seen.sort_unstable();
        let mut expect: Vec<VertexId> = stats.iter().map(|(v, _)| v).collect();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    fn split_separates_frequency_modes() {
        // With two sharply different frequency regimes, no leaf should mix
        // light (avg 1) and heavy (avg 100) vertices.
        let stats = bimodal();
        let mut cfg = PartitionConfig::new(1 << 14);
        cfg.min_width = 256;
        // Disable Theorem-1 early exit so splitting is driven by E'.
        cfg.collision_factor = 0.0001;
        let plan = partition(&stats, &cfg);
        assert!(plan.len() >= 2, "expected at least one split");
        for leaf in &plan.leaves {
            let light = leaf.vertices.iter().filter(|v| v.0 < 50).count();
            let heavy = leaf.vertices.iter().filter(|v| v.0 >= 50).count();
            assert!(
                light == 0 || heavy == 0,
                "leaf mixes modes: {light} light, {heavy} heavy"
            );
        }
    }

    #[test]
    fn width_never_exceeds_budget_without_shrink() {
        let stats = bimodal();
        for allocation in [WidthAllocation::EqualSplit, WidthAllocation::Optimal] {
            let mut cfg = PartitionConfig::new(1 << 12);
            cfg.redistribute = false;
            cfg.allocation = allocation;
            let plan = partition(&stats, &cfg);
            assert!(
                plan.total_width() <= cfg.total_width,
                "{allocation:?} overflowed the budget"
            );
        }
    }

    #[test]
    fn redistribution_reuses_saved_width() {
        let stats = bimodal();
        let mut cfg = PartitionConfig::new(1 << 14);
        cfg.collision_factor = 0.9; // encourage Theorem-1 shrinking
        cfg.allocation = WidthAllocation::EqualSplit;
        cfg.redistribute = false;
        let without = partition(&stats, &cfg);
        cfg.redistribute = true;
        let with = partition(&stats, &cfg);
        assert!(with.total_width() >= without.total_width());
        assert!(with.total_width() <= cfg.total_width);
    }

    #[test]
    fn theorem_one_shrinks_tiny_nodes() {
        // A sample with a handful of distinct edges and a huge width must
        // terminate immediately, shrunk to the degree mass.
        let sample = vec![se(1, 2, 5), se(3, 4, 5)];
        let stats = SampleStats::from_data_sample(&sample);
        let mut cfg = PartitionConfig::new(1 << 16);
        cfg.allocation = WidthAllocation::EqualSplit;
        let plan = partition(&stats, &cfg);
        assert_eq!(plan.len(), 1);
        let leaf = &plan.leaves[0];
        assert!(leaf.shrunk);
        assert_eq!(leaf.degree_mass, 2);
        assert_eq!(leaf.width, 2);
    }

    #[test]
    fn min_width_respected_under_equal_split() {
        let stats = bimodal();
        let mut cfg = PartitionConfig::new(4096);
        cfg.min_width = 1024;
        cfg.collision_factor = 0.0001; // force splitting pressure
        cfg.redistribute = false;
        cfg.allocation = WidthAllocation::EqualSplit;
        let plan = partition(&stats, &cfg);
        for leaf in &plan.leaves {
            assert!(leaf.width >= 1024, "leaf narrower than w0: {}", leaf.width);
        }
    }

    #[test]
    fn optimal_allocation_favours_high_error_mass() {
        // Heavy-mass leaves must receive more width than light ones,
        // proportionally to sqrt(F·A), unless capped.
        let stats = bimodal();
        let mut cfg = PartitionConfig::new(1 << 12);
        cfg.min_width = 64;
        cfg.collision_factor = 0.0001; // no Theorem-1 exits
        cfg.allocation = WidthAllocation::Optimal;
        let plan = partition(&stats, &cfg);
        assert!(plan.len() >= 2);
        // Within budget always; fully used unless every leaf hit its
        // 2×degree-mass cap (the builder hands unclaimed width to the
        // outlier sketch in that case).
        assert!(plan.total_width() <= cfg.total_width);
        let all_capped = plan.leaves.iter().all(|l| l.shrunk);
        if !all_capped {
            assert!(plan.total_width() + plan.len() * 2 >= cfg.total_width * 9 / 10);
        }
        // sqrt(F·A) ordering respected among uncapped leaves.
        let mut by_score: Vec<(f64, usize)> = plan
            .leaves
            .iter()
            .filter(|l| !l.shrunk)
            .map(|l| ((l.freq_mass as f64 * l.error_factor).sqrt(), l.width))
            .collect();
        by_score.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in by_score.windows(2) {
            assert!(
                w[0].1 <= w[1].1 + 1,
                "width ordering violates score ordering: {by_score:?}"
            );
        }
    }

    #[test]
    fn optimal_allocation_caps_sparse_leaves() {
        // With every leaf degree-capped, the cap first limits each leaf,
        // and the surplus is then re-flowed pro rata by error score so
        // the byte budget is never silently wasted.
        let sample = vec![se(1, 2, 1_000_000), se(3, 4, 1), se(3, 5, 1)];
        let stats = SampleStats::from_data_sample(&sample);
        let mut cfg = PartitionConfig::new(1 << 14);
        cfg.min_width = 4;
        cfg.collision_factor = 0.0001;
        cfg.allocation = WidthAllocation::Optimal;
        let plan = partition(&stats, &cfg);
        // The full budget is spent (up to rounding slack).
        let used = plan.total_width();
        assert!(
            used <= 1 << 14 && used + plan.len() >= (1 << 14) - 1,
            "budget not fully allocated: {used} of {}",
            1 << 14
        );
        // Error-optimal allocation scores a leaf by √(F̃·A); the sparse
        // leaf (vertex 3: two freq-1 edges, A = 2) has the higher error
        // mass than the single heavy edge (A = 10⁻⁶), so it receives at
        // least as much width.
        let heavy = plan
            .leaves
            .iter()
            .find(|l| l.vertices.contains(&VertexId(1)))
            .unwrap();
        let light = plan
            .leaves
            .iter()
            .find(|l| l.vertices.contains(&VertexId(3)))
            .unwrap();
        assert!(light.width >= heavy.width);
    }

    #[test]
    fn pivot_prefers_mode_boundary() {
        // Direct unit test of best_pivot: two clusters of keys.
        let items: Vec<Item> = (0..8)
            .map(|i| Item {
                vertex: VertexId(i),
                freq: if i < 4 { 2 } else { 200 },
                degree: 2,
                key: if i < 4 { 1.0 } else { 100.0 },
                factor: 4.0 / if i < 4 { 2.0 } else { 200.0 },
            })
            .collect();
        let (pivot, _) = best_pivot(&items).unwrap();
        assert_eq!(pivot, 4, "pivot should fall at the cluster boundary");
    }

    #[test]
    fn best_pivot_none_for_singleton() {
        let items = vec![Item {
            vertex: VertexId(0),
            freq: 1,
            degree: 1,
            key: 1.0,
            factor: 1.0,
        }];
        assert!(best_pivot(&items).is_none());
    }

    #[test]
    fn workload_objective_groups_by_query_weight() {
        // Two vertices with identical data behaviour but very different
        // workload weights should be separated under DataWorkload.
        let data = vec![se(1, 10, 50), se(2, 20, 50), se(3, 30, 1), se(4, 40, 1)];
        let workload: Vec<Edge> = std::iter::repeat_n(Edge::new(3u32, 30u32), 100).collect();
        let stats = SampleStats::from_samples(&data, &workload);
        let mut cfg = PartitionConfig::new(1 << 14);
        cfg.objective = Objective::DataWorkload;
        cfg.collision_factor = 0.0001;
        cfg.min_width = 256;
        let plan = partition(&stats, &cfg);
        // Vertex 3 (heavily queried, low freq) must not share a leaf with
        // vertex 1/2 (high freq, unqueried).
        let leaf_of = |v: u32| {
            plan.leaves
                .iter()
                .position(|l| l.vertices.contains(&VertexId(v)))
                .unwrap()
        };
        assert_ne!(leaf_of(3), leaf_of(1));
        assert_ne!(leaf_of(3), leaf_of(2));
    }

    #[test]
    #[should_panic(expected = "collision factor")]
    fn invalid_collision_factor_rejected() {
        let stats = bimodal();
        let mut cfg = PartitionConfig::new(1024);
        cfg.collision_factor = 1.5;
        partition(&stats, &cfg);
    }
}
