//! Accuracy metrics of §6.2: average relative error (Eq. 12–13) and the
//! number of "effective queries" (Eq. 14), for both edge and aggregate
//! subgraph query sets.

use crate::query::{estimate_subgraph, Aggregator, EdgeEstimator};
use gstream::edge::Edge;
use gstream::workload::SubgraphQuery;
use gstream::ExactCounter;

/// The default effectiveness threshold `G0` (§6.2).
pub const DEFAULT_G0: f64 = 5.0;

/// Relative error `er(q) = f̃(q)/f(q) − 1` (Eq. 12). Returns infinity for
/// a positive estimate of a zero-truth query and 0 for 0/0.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        estimate / truth - 1.0
    }
}

/// Aggregate accuracy of a query set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Average relative error `e(Q)` (Eq. 13).
    pub avg_relative_error: f64,
    /// Number of effective queries `g(Q)` (Eq. 14): `er(q) ≤ G0`.
    pub effective_queries: usize,
    /// Size of the query set.
    pub total_queries: usize,
    /// The threshold used.
    pub g0: f64,
}

impl Accuracy {
    /// Fraction of effective queries.
    pub fn effective_fraction(&self) -> f64 {
        if self.total_queries == 0 {
            0.0
        } else {
            self.effective_queries as f64 / self.total_queries as f64
        }
    }
}

/// Evaluate an estimator over an edge query set against exact truth.
/// The whole query set is answered as **one batch** through
/// [`EdgeEstimator::estimate_edges`] — on the partitioned estimators
/// that replays the workload slot-sorted through the batched bank
/// kernels, which is what makes §6-scale evaluation (10⁴–10⁶ queries per
/// configuration) cheap enough to re-run per memory point.
pub fn evaluate_edge_queries<E: EdgeEstimator + ?Sized>(
    estimator: &E,
    queries: &[Edge],
    truth: &ExactCounter,
    g0: f64,
) -> Accuracy {
    let mut estimates = Vec::with_capacity(queries.len());
    estimator.estimate_edges(queries, &mut estimates);
    let mut sum = 0.0f64;
    let mut effective = 0usize;
    for (&q, &est) in queries.iter().zip(&estimates) {
        let e = relative_error(est as f64, truth.frequency(q) as f64);
        sum += e;
        if e <= g0 {
            effective += 1;
        }
    }
    Accuracy {
        avg_relative_error: if queries.is_empty() {
            0.0
        } else {
            sum / queries.len() as f64
        },
        effective_queries: effective,
        total_queries: queries.len(),
        g0,
    }
}

/// Evaluate an estimator over an aggregate subgraph query set (Eq. 15).
pub fn evaluate_subgraph_queries<E: EdgeEstimator + ?Sized>(
    estimator: &E,
    queries: &[SubgraphQuery],
    truth: &ExactCounter,
    aggregator: Aggregator,
    g0: f64,
) -> Accuracy {
    let mut sum = 0.0f64;
    let mut effective = 0usize;
    for q in queries {
        let est = estimate_subgraph(estimator, q, aggregator);
        let tru = estimate_subgraph(truth, q, aggregator);
        let e = relative_error(est, tru);
        sum += e;
        if e <= g0 {
            effective += 1;
        }
    }
    Accuracy {
        avg_relative_error: if queries.is_empty() {
            0.0
        } else {
            sum / queries.len() as f64
        },
        effective_queries: effective,
        total_queries: queries.len(),
        g0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstream::edge::StreamEdge;

    #[test]
    fn relative_error_definition() {
        assert_eq!(relative_error(10.0, 10.0), 0.0);
        assert_eq!(relative_error(20.0, 10.0), 1.0);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
    }

    #[test]
    fn exact_estimator_scores_perfectly() {
        let stream: Vec<StreamEdge> = (0..100u32)
            .map(|i| StreamEdge::unit(Edge::new(i % 10, i / 10), i as u64))
            .collect();
        let truth = ExactCounter::from_stream(&stream);
        let queries: Vec<Edge> = stream.iter().map(|s| s.edge).take(50).collect();
        let acc = evaluate_edge_queries(&truth, &queries, &truth, DEFAULT_G0);
        assert_eq!(acc.avg_relative_error, 0.0);
        assert_eq!(acc.effective_queries, 50);
        assert_eq!(acc.total_queries, 50);
        assert_eq!(acc.effective_fraction(), 1.0);
    }

    #[test]
    fn overestimates_counted_against_g0() {
        struct Doubler<'a>(&'a ExactCounter);
        impl EdgeEstimator for Doubler<'_> {
            fn estimate_edge(&self, e: Edge) -> u64 {
                self.0.frequency(e) * 8
            }
        }
        let stream = vec![StreamEdge::unit(Edge::new(1u32, 2u32), 0)];
        let truth = ExactCounter::from_stream(&stream);
        let q = vec![Edge::new(1u32, 2u32)];
        // 8x estimate → rel err 7 > G0=5 → not effective.
        let acc = evaluate_edge_queries(&Doubler(&truth), &q, &truth, DEFAULT_G0);
        assert_eq!(acc.effective_queries, 0);
        assert!((acc.avg_relative_error - 7.0).abs() < 1e-12);
        // With a looser threshold it becomes effective.
        let acc = evaluate_edge_queries(&Doubler(&truth), &q, &truth, 10.0);
        assert_eq!(acc.effective_queries, 1);
    }

    #[test]
    fn subgraph_evaluation_uses_gamma() {
        let stream = vec![
            StreamEdge::weighted(Edge::new(1u32, 2u32), 0, 10),
            StreamEdge::weighted(Edge::new(2u32, 3u32), 0, 30),
        ];
        let truth = ExactCounter::from_stream(&stream);
        let queries = vec![SubgraphQuery {
            edges: vec![Edge::new(1u32, 2u32), Edge::new(2u32, 3u32)],
        }];
        let acc = evaluate_subgraph_queries(&truth, &queries, &truth, Aggregator::Sum, DEFAULT_G0);
        assert_eq!(acc.avg_relative_error, 0.0);
        assert_eq!(acc.effective_queries, 1);
    }

    #[test]
    fn empty_query_set_is_neutral() {
        let truth = ExactCounter::new();
        let acc = evaluate_edge_queries(&truth, &[], &truth, DEFAULT_G0);
        assert_eq!(acc.avg_relative_error, 0.0);
        assert_eq!(acc.effective_fraction(), 0.0);
    }
}
