//! The unified ingest surface: every estimator is an [`EdgeSink`]
//! (DESIGN.md §7).
//!
//! Before this trait each ingest-capable type grew its own ad-hoc
//! signatures — `GSketch::{update, ingest, ingest_batch}`,
//! `GlobalSketch::ingest`, `WindowedGSketch::insert`,
//! `ConcurrentGSketch`'s shared-reference `update` — which meant the
//! evaluation harness, the CLI, and the parallel pipeline each needed
//! per-type plumbing. [`EdgeSink`] replaces all of them with one
//! contract:
//!
//! * [`update`](EdgeSink::update) — record one arrival;
//! * [`ingest_batch`](EdgeSink::ingest_batch) — record a contiguous batch
//!   (sinks override this when batching buys locality, e.g. the
//!   slot-grouped counting sort of `GSketch`);
//! * [`flush`](EdgeSink::flush) — make every accepted arrival visible to
//!   queries. A no-op for unbuffered sinks; buffered sinks such as
//!   [`ParallelIngest`](crate::pipeline::ParallelIngest) hold arrivals in
//!   staging buffers until a batch boundary or a flush.
//!
//! The provided [`ingest`](EdgeSink::ingest) and
//! [`drain`](EdgeSink::drain) methods are the only stream-shaped loops in
//! the workspace: everything that used to hand-roll `for se in stream`
//! now goes through them, so "ingest a stream into X" means the same
//! thing for every estimator.
//!
//! Implementors: [`GSketch`](crate::GSketch) (any backend),
//! [`GlobalSketch`](crate::GlobalSketch),
//! [`AdaptiveGSketch`](crate::AdaptiveGSketch),
//! [`WindowedGSketch`](crate::WindowedGSketch),
//! [`ConcurrentGSketch`](crate::ConcurrentGSketch) (both owned and via
//! `&ConcurrentGSketch`, the form worker threads use), and
//! [`ParallelIngest`](crate::pipeline::ParallelIngest).

use gstream::edge::StreamEdge;
use gstream::source::EdgeSource;
use gstream::vertex::VertexId;

/// The routing view of a partitioned synopsis: a flat slot space and the
/// §5 hash structure `H : V → S_i` mapping source vertices into it.
///
/// This is the half of [`SlotSink`](crate::pipeline::SlotSink) that the
/// *read* path needs too: the owner-sharded engine derives one
/// [`OwnerMap`](crate::router::OwnerMap) from `num_slots`, and both the
/// scatter stage (writes) and the slot-routed parallel query (reads)
/// group work by `slot_of` so each slot's cache lines are only ever
/// touched by the slot's owner. Implementors: `GSketch<B>` (any
/// backend) and `ConcurrentGSketch`.
pub trait SlotRouted {
    /// Total number of slots (partitions + outlier).
    fn num_slots(&self) -> usize;

    /// The flat slot responsible for edges emanating from `src`.
    fn slot_of(&self, src: VertexId) -> u32;
}

impl<T: SlotRouted + ?Sized> SlotRouted for &T {
    fn num_slots(&self) -> usize {
        (**self).num_slots()
    }
    fn slot_of(&self, src: VertexId) -> u32 {
        (**self).slot_of(src)
    }
}

/// Anything that can absorb a graph stream, arrival by arrival or in
/// contiguous batches.
///
/// Counters are commutative, so sinks make no ordering promises between
/// arrivals beyond what their own documentation states (the windowed sink
/// requires non-decreasing timestamps, for example). After
/// [`flush`](Self::flush) returns, every arrival previously accepted is
/// visible to the sink's query side.
pub trait EdgeSink {
    /// Record one arrival.
    fn update(&mut self, se: StreamEdge);

    /// Record a contiguous batch of arrivals. Equivalent to updating each
    /// element in order; sinks override it when batch shape buys locality
    /// or amortization.
    fn ingest_batch(&mut self, batch: &[StreamEdge]) {
        for se in batch {
            self.update(*se);
        }
    }

    /// Make every accepted arrival visible to queries. No-op for
    /// unbuffered sinks.
    fn flush(&mut self) {}

    /// Ingest a whole stream in arrival order, then flush.
    fn ingest<'a, I: IntoIterator<Item = &'a StreamEdge>>(&mut self, stream: I)
    where
        Self: Sized,
    {
        for se in stream {
            self.update(*se);
        }
        self.flush();
    }

    /// Drain a chunked [`EdgeSource`] to exhaustion through
    /// [`ingest_batch`](Self::ingest_batch), then flush. Returns the
    /// number of arrivals absorbed. `chunk` bounds the staging buffer
    /// (arrivals per refill).
    fn drain<S: EdgeSource>(&mut self, source: &mut S, chunk: usize) -> u64
    where
        Self: Sized,
    {
        let chunk = chunk.max(1);
        let mut buf = Vec::with_capacity(chunk);
        let mut absorbed = 0u64;
        while source.fill_chunk(&mut buf, chunk) > 0 {
            absorbed += buf.len() as u64;
            self.ingest_batch(&buf);
        }
        self.flush();
        absorbed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstream::edge::Edge;

    /// A sink that records what reached it, to pin the provided-method
    /// plumbing (batching boundaries, flush-at-end) independently of any
    /// real estimator.
    #[derive(Default)]
    struct Probe {
        arrivals: Vec<StreamEdge>,
        batches: Vec<usize>,
        flushes: usize,
    }

    impl EdgeSink for Probe {
        fn update(&mut self, se: StreamEdge) {
            self.arrivals.push(se);
        }
        fn ingest_batch(&mut self, batch: &[StreamEdge]) {
            self.batches.push(batch.len());
            for se in batch {
                self.update(*se);
            }
        }
        fn flush(&mut self) {
            self.flushes += 1;
        }
    }

    fn toy(n: u64) -> Vec<StreamEdge> {
        (0..n)
            .map(|t| StreamEdge::unit(Edge::new((t % 5) as u32, 9u32), t))
            .collect()
    }

    #[test]
    fn ingest_visits_in_order_and_flushes_once() {
        let stream = toy(10);
        let mut p = Probe::default();
        p.ingest(&stream);
        assert_eq!(p.arrivals, stream);
        assert_eq!(p.flushes, 1);
    }

    #[test]
    fn drain_chunks_and_flushes() {
        let stream = toy(10);
        let mut src = gstream::SliceSource::new(&stream);
        let mut p = Probe::default();
        let n = p.drain(&mut src, 4);
        assert_eq!(n, 10);
        assert_eq!(p.arrivals, stream);
        assert_eq!(p.batches, vec![4, 4, 2]);
        assert_eq!(p.flushes, 1);
    }

    #[test]
    fn drain_clamps_zero_chunk() {
        let stream = toy(3);
        let mut src = gstream::SliceSource::new(&stream);
        let mut p = Probe::default();
        assert_eq!(p.drain(&mut src, 0), 3);
    }
}
