//! # gsketch — query estimation in graph streams via sketch partitioning
//!
//! A from-scratch Rust reproduction of **gSketch: On Query Estimation in
//! Graph Streams** (Zhao, Aggarwal & Wang, PVLDB 5(3), VLDB 2011).
//!
//! A graph stream delivers directed edges `(x, y; t)` at high speed over a
//! massive vertex domain. gSketch answers *edge queries* (the frequency of
//! one edge) and *aggregate subgraph queries* (an aggregate `Γ` over a bag
//! of edges) by partitioning one virtual CountMin sketch into localized
//! sketches, using vertex statistics estimated from a small data sample
//! (and optionally a query-workload sample). Structurally similar regions
//! share a sketch, so low-frequency edges are no longer crushed by
//! collisions with heavy edges — the core reason gSketch beats a single
//! global sketch by up to an order of magnitude at equal memory.
//!
//! ## Quick start
//!
//! ```
//! use gsketch::{EdgeSink, GSketch, GlobalSketch};
//! use gstream::{Edge, StreamEdge};
//!
//! // A toy stream: one heavy edge and many light ones.
//! let mut stream = Vec::new();
//! for t in 0..1000u64 {
//!     stream.push(StreamEdge::unit(Edge::new(1u32, 2u32), t));       // heavy
//!     stream.push(StreamEdge::unit(Edge::new((t % 50) as u32 + 10, 99u32), t)); // light
//! }
//!
//! // Scenario 1: partition from a data sample (here: the stream prefix).
//! let mut gs = GSketch::builder()
//!     .memory_bytes(64 * 1024)
//!     .min_width(64)
//!     .build_from_sample(&stream[..200])
//!     .unwrap();
//! gs.ingest(&stream);
//!
//! // CountMin never underestimates; partitioning keeps the light edges
//! // accurate despite the heavy hitter.
//! assert!(gs.estimate(Edge::new(1u32, 2u32)) >= 1000);
//! assert!(gs.estimate(Edge::new(10u32, 99u32)) >= 20);
//! ```
//!
//! ## Module map
//!
//! | paper section | module |
//! |---|---|
//! | §3.2 global sketch baseline | [`global`] |
//! | §4 vertex statistics from samples | [`vstats`] |
//! | §4.1–4.2 partitioning trees (Figs. 2–3) | [`partition`] |
//! | §5 router `H: V → S_i`, outlier sketch | [`router`], [`gsketch`] |
//! | §3.1/§5 edge + subgraph queries (batched engine) | [`query`] |
//! | §6.2 accuracy metrics | [`metrics`] |
//! | §5 time-windowed deployment | [`window`] |
//! | beyond the paper: lock-free concurrent ingest | [`concurrent`] |
//! | beyond the paper: unified ingest surface | [`sink`] |
//! | beyond the paper: parallel sharded ingest | [`pipeline`] |
//! | beyond the paper: memoized query replay | [`replay`] |
//!
//! ## Synopsis backends
//!
//! [`GSketch`] is generic over a [`FrequencySketch`] backend
//! (DESIGN.md §2). The default, [`CmArena`], keeps every partition's
//! counters plus the outlier's in **one contiguous slab** with a single
//! shared per-row hash family; `GSketch<CountMinSketch>` is the classic
//! one-allocation-per-partition layout, and `GSketch<CountSketch>` swaps
//! in unbiased L2-error estimates for the ablation benches. Arena and
//! per-partition layouts return bit-identical estimates at equal build
//! parameters (pinned by the `backend_parity` proptests).

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod adaptive;
pub mod concurrent;
pub mod global;
pub mod gsketch;
pub mod metrics;
pub mod partition;
pub mod persist;
pub mod pipeline;
pub mod query;
pub mod replay;
pub mod router;
pub mod sink;
pub mod vstats;
pub mod window;

pub use adaptive::{AdaptiveConfig, AdaptiveGSketch};
pub use concurrent::ConcurrentGSketch;
pub use global::GlobalSketch;
pub use gsketch::{Estimate, GSketch, GSketchBuilder};
pub use metrics::{
    evaluate_edge_queries, evaluate_subgraph_queries, relative_error, Accuracy, DEFAULT_G0,
};
pub use partition::{Objective, PartitionConfig, PartitionPlan, WidthAllocation};
pub use persist::{
    load_gsketch, load_gsketch_backend, load_windowed, load_windowed_backend,
    load_windowed_horizon, load_windowed_horizon_backend, save_gsketch, save_windowed,
    PersistError, RawSnapshot, FORMAT_VERSION, WINDOWED_FORMAT_VERSION,
};
pub use pipeline::{IngestReport, ParallelIngest, ShardedIngest, SlotSink};
pub use query::{
    estimate_subgraph, estimate_subgraph_with, Aggregator, EdgeEstimator, ParallelQuery,
};
pub use replay::{ReplayEngine, ReplayStats, WindowedReplay, WriteLocalized};
pub use router::{OwnerMap, Router, SketchId};
pub use sink::{EdgeSink, SlotRouted};
pub use sketch::{CmArena, CountMinSketch, CountSketch, DetailedRow, FrequencySketch, SketchBank};
pub use vstats::SampleStats;
pub use window::{IntervalEstimate, WindowConfig, WindowedGSketch};
