//! Persistence: save and load sketch state across process restarts.
//!
//! A deployed gSketch accumulates stream state that must survive
//! restarts, rollouts, and migration between hosts. This module
//! serializes the full synopsis — every localized sketch with its hash
//! coefficients, the outlier sketch, the router table, and the partition
//! plan — into a versioned JSON envelope. JSON is chosen over a binary
//! codec deliberately: sketch snapshots are small relative to the streams
//! they summarize (a 2 MB sketch is a large one), and an inspectable
//! format lets operators diff snapshots with standard tools. The envelope
//! carries a format version so future layout changes can be detected
//! rather than mis-parsed.

use crate::global::GlobalSketch;
use crate::gsketch::GSketch;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Current snapshot format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors produced while saving or loading snapshots.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed or non-snapshot JSON.
    Format(serde_json::Error),
    /// The snapshot was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The snapshot holds a different kind of sketch than requested.
    KindMismatch {
        /// Kind found in the file.
        found: String,
        /// Kind the caller asked for.
        expected: &'static str,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            PersistError::Format(e) => write!(f, "snapshot format error: {e}"),
            PersistError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} (this build reads {expected})")
            }
            PersistError::KindMismatch { found, expected } => {
                write!(f, "snapshot holds a `{found}` sketch, expected `{expected}`")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// The versioned on-disk envelope.
#[derive(Serialize, Deserialize)]
struct Envelope<T> {
    format_version: u32,
    kind: String,
    sketch: T,
}

fn check_header(version: u32, kind: &str, expected: &'static str) -> Result<(), PersistError> {
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    if kind != expected {
        return Err(PersistError::KindMismatch {
            found: kind.to_owned(),
            expected,
        });
    }
    Ok(())
}

/// Serialize a [`GSketch`] snapshot to `w`.
pub fn write_gsketch<W: Write>(w: W, sketch: &GSketch) -> Result<(), PersistError> {
    let mut out = BufWriter::new(w);
    serde_json::to_writer(
        &mut out,
        &Envelope {
            format_version: FORMAT_VERSION,
            kind: "gsketch".to_owned(),
            sketch,
        },
    )?;
    out.flush()?;
    Ok(())
}

/// Deserialize a [`GSketch`] snapshot from `r`.
pub fn read_gsketch<R: Read>(r: R) -> Result<GSketch, PersistError> {
    let env: Envelope<GSketch> = serde_json::from_reader(BufReader::new(r))?;
    check_header(env.format_version, &env.kind, "gsketch")?;
    Ok(env.sketch)
}

/// Save a [`GSketch`] snapshot to the file at `path`.
pub fn save_gsketch<P: AsRef<Path>>(path: P, sketch: &GSketch) -> Result<(), PersistError> {
    write_gsketch(File::create(path)?, sketch)
}

/// Load a [`GSketch`] snapshot from the file at `path`.
pub fn load_gsketch<P: AsRef<Path>>(path: P) -> Result<GSketch, PersistError> {
    read_gsketch(File::open(path)?)
}

/// Serialize a [`GlobalSketch`] snapshot to `w`.
pub fn write_global<W: Write>(w: W, sketch: &GlobalSketch) -> Result<(), PersistError> {
    let mut out = BufWriter::new(w);
    serde_json::to_writer(
        &mut out,
        &Envelope {
            format_version: FORMAT_VERSION,
            kind: "global".to_owned(),
            sketch,
        },
    )?;
    out.flush()?;
    Ok(())
}

/// Deserialize a [`GlobalSketch`] snapshot from `r`.
pub fn read_global<R: Read>(r: R) -> Result<GlobalSketch, PersistError> {
    let env: Envelope<GlobalSketch> = serde_json::from_reader(BufReader::new(r))?;
    check_header(env.format_version, &env.kind, "global")?;
    Ok(env.sketch)
}

/// Save a [`GlobalSketch`] snapshot to the file at `path`.
pub fn save_global<P: AsRef<Path>>(path: P, sketch: &GlobalSketch) -> Result<(), PersistError> {
    write_global(File::create(path)?, sketch)
}

/// Load a [`GlobalSketch`] snapshot from the file at `path`.
pub fn load_global<P: AsRef<Path>>(path: P) -> Result<GlobalSketch, PersistError> {
    read_global(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstream::edge::{Edge, StreamEdge};

    fn sample_stream() -> Vec<StreamEdge> {
        (0..500u64)
            .map(|t| {
                StreamEdge::unit(
                    Edge::new((t % 20) as u32, 100 + (t % 7) as u32),
                    t,
                )
            })
            .collect()
    }

    fn built_gsketch() -> GSketch {
        let stream = sample_stream();
        let mut g = GSketch::builder()
            .memory_bytes(1 << 14)
            .min_width(32)
            .build_from_sample(&stream)
            .unwrap();
        g.ingest(&stream);
        g
    }

    #[test]
    fn gsketch_round_trip_preserves_estimates() {
        let g = built_gsketch();
        let mut buf = Vec::new();
        write_gsketch(&mut buf, &g).unwrap();
        let back = read_gsketch(&buf[..]).unwrap();
        for t in 0..500u64 {
            let e = Edge::new((t % 20) as u32, 100 + (t % 7) as u32);
            assert_eq!(g.estimate(e), back.estimate(e));
            assert_eq!(g.route(e), back.route(e));
        }
        assert_eq!(g.num_partitions(), back.num_partitions());
        assert_eq!(g.bytes(), back.bytes());
    }

    #[test]
    fn restored_sketch_accepts_more_stream() {
        let g = built_gsketch();
        let mut buf = Vec::new();
        write_gsketch(&mut buf, &g).unwrap();
        let mut back = read_gsketch(&buf[..]).unwrap();
        let e = Edge::new(3u32, 103u32);
        let before = back.estimate(e);
        back.update(e, 10);
        assert_eq!(back.estimate(e), before + 10);
    }

    #[test]
    fn global_round_trip_preserves_estimates() {
        let stream = sample_stream();
        let mut g = GlobalSketch::new(1 << 14, 3, 7).unwrap();
        g.ingest(&stream);
        let mut buf = Vec::new();
        write_global(&mut buf, &g).unwrap();
        let back = read_global(&buf[..]).unwrap();
        for se in &stream {
            assert_eq!(g.estimate(se.edge), back.estimate(se.edge));
        }
    }

    #[test]
    fn version_mismatch_detected() {
        let g = built_gsketch();
        let mut buf = Vec::new();
        write_gsketch(&mut buf, &g).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text = text.replace("\"format_version\":1", "\"format_version\":999");
        let err = read_gsketch(text.as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            PersistError::VersionMismatch { found: 999, .. }
        ));
    }

    #[test]
    fn kind_mismatch_detected() {
        let stream = sample_stream();
        let mut g = GlobalSketch::new(1 << 12, 3, 7).unwrap();
        g.ingest(&stream);
        let mut buf = Vec::new();
        write_global(&mut buf, &g).unwrap();
        let err = read_gsketch(&buf[..]).unwrap_err();
        // A GlobalSketch body cannot parse as a GSketch, or if it does,
        // the kind check rejects it. Either error is acceptable.
        assert!(matches!(
            err,
            PersistError::KindMismatch { .. } | PersistError::Format(_)
        ));
    }

    #[test]
    fn garbage_is_a_format_error() {
        let err = read_gsketch("not json at all".as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("gsketch_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        let g = built_gsketch();
        save_gsketch(&path, &g).unwrap();
        let back = load_gsketch(&path).unwrap();
        assert_eq!(g.estimate(Edge::new(1u32, 101u32)), back.estimate(Edge::new(1u32, 101u32)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_gsketch("/nonexistent/missing.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn display_messages() {
        let e = PersistError::VersionMismatch {
            found: 9,
            expected: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = PersistError::KindMismatch {
            found: "x".into(),
            expected: "gsketch",
        };
        assert!(e.to_string().contains("gsketch"));
    }
}
