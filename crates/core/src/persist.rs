//! Persistence: save and load sketch state across process restarts.
//!
//! A deployed gSketch accumulates stream state that must survive
//! restarts, rollouts, and migration between hosts. This module
//! serializes the full synopsis — every localized sketch with its hash
//! coefficients, the outlier sketch, the router table, and the partition
//! plan — into a versioned JSON envelope. JSON is chosen over a binary
//! codec deliberately: sketch snapshots are small relative to the streams
//! they summarize (a 2 MB sketch is a large one), and an inspectable
//! format lets operators diff snapshots with standard tools. The envelope
//! carries a format version so future layout changes can be detected
//! rather than mis-parsed. The one exception to plain JSON is counter
//! slabs: they serialize as a compact self-delimiting nibble-stream
//! string (`sketch::slab`, DESIGN.md §13) so a snapshot load decodes cells
//! with one byte scan instead of one heap `Value` per counter — the
//! array form is still accepted on read.

use crate::global::GlobalSketch;
use crate::gsketch::GSketch;
use serde::{Deserialize, Serialize};
use sketch::FrequencySketch;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

/// Current snapshot format version. Version 2 is the arena-backend
/// layout: the `GSketch` body is a synopsis *bank* (slot widths + one
/// slab or one sketch per slot) instead of version 1's
/// partitions/outlier pair, and the envelope kind carries the backend
/// (`gsketch:cm-arena`, `gsketch:countmin`, ...), so snapshots built
/// with one backend cannot be silently decoded as another.
pub const FORMAT_VERSION: u32 = 2;

/// Snapshot format version for **windowed** deployments (DESIGN.md §13).
/// A v3 file is line-oriented: a header line (config + builder + tiering
/// parameters), one append-only record line per sealed window, one
/// mutable tail line (tiers, live window, reservoir, RNG, counters), and
/// a footer line indexing every window record's byte offset. The footer
/// is what makes [`save_windowed`] incremental — an append truncates at
/// the recorded `tail_offset` and writes only windows sealed since the
/// last save — and what lets [`load_windowed_horizon`] decode only the
/// records overlapping a queried span.
pub const WINDOWED_FORMAT_VERSION: u32 = 3;

/// Errors produced while saving or loading snapshots.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed or non-snapshot JSON.
    Format(serde_json::Error),
    /// The snapshot was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The snapshot holds a different kind of sketch (or a different
    /// synopsis backend) than requested.
    KindMismatch {
        /// Kind found in the file.
        found: String,
        /// Kind the caller asked for.
        expected: String,
    },
    /// The instance was loaded through [`load_windowed_horizon`] and
    /// holds only part of its history; saving it would silently shrink
    /// the snapshot, so the save is refused.
    PartialInstance,
    /// An incremental append found the target file's recorded history
    /// incompatible with the instance being saved (different deployment,
    /// diverged windows, or a mismatched configuration).
    AppendMismatch(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            PersistError::Format(e) => write!(f, "snapshot format error: {e}"),
            PersistError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} (this build reads {expected})")
            }
            PersistError::KindMismatch { found, expected } => {
                write!(
                    f,
                    "snapshot holds a `{found}` sketch, expected `{expected}`"
                )
            }
            PersistError::PartialInstance => write!(
                f,
                "refusing to save a horizon-limited (partial) snapshot load: \
                 it holds only part of the deployment's history"
            ),
            PersistError::AppendMismatch(why) => {
                write!(f, "snapshot append rejected: {why}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

impl From<serde::Error> for PersistError {
    fn from(e: serde::Error) -> Self {
        PersistError::Format(e.into())
    }
}

/// The versioned on-disk envelope.
#[derive(Serialize, Deserialize)]
struct Envelope<T> {
    format_version: u32,
    kind: String,
    sketch: T,
}

fn check_header(
    version: u32,
    accepted: &[u32],
    kind: &str,
    expected: &str,
) -> Result<(), PersistError> {
    // Kind first: "this is a `global` snapshot, not `gsketch:cm-arena`"
    // diagnoses a wrong-file mistake better than a version complaint
    // (the flat and windowed formats version independently).
    if kind != expected {
        return Err(PersistError::KindMismatch {
            found: kind.to_owned(),
            expected: expected.to_owned(),
        });
    }
    if !accepted.contains(&version) {
        return Err(PersistError::VersionMismatch {
            found: version,
            // Report the newest version this call path understands.
            expected: accepted.iter().copied().max().unwrap_or(FORMAT_VERSION),
        });
    }
    Ok(())
}

/// The envelope kind tag for a `GSketch` with backend `B`.
fn gsketch_kind<B: FrequencySketch>() -> String {
    format!("gsketch:{}", B::KIND)
}

/// A snapshot whose envelope has been parsed but whose body has not been
/// decoded yet. Lets callers inspect [`kind`](Self::kind) — e.g. to pick
/// the right `GSketch` backend — and then decode the body exactly once,
/// instead of speculatively decoding megabytes of counters under the
/// wrong layout.
pub struct RawSnapshot {
    version: u32,
    kind: String,
    body: serde::Value,
}

impl RawSnapshot {
    /// Parse a snapshot envelope from `r` without decoding the body.
    pub fn read<R: Read>(mut r: R) -> Result<Self, PersistError> {
        // read_to_string already reads to EOF in chunks; no BufReader
        // needed (it would only add an intermediate copy).
        let mut text = String::new();
        r.read_to_string(&mut text)?;
        let v = serde_json::parse(&text)?;
        let bad = |msg: &str| PersistError::Format(serde::Error(msg.to_owned()).into());
        // The parse tree is owned, so the (potentially megabytes-large)
        // body is moved out of the envelope rather than cloned.
        let serde::Value::Map(entries) = v else {
            return Err(bad("snapshot envelope is not a JSON object"));
        };
        let mut version = None;
        let mut kind = None;
        let mut body = None;
        for (key, value) in entries {
            match key.as_str() {
                "format_version" => {
                    version =
                        Some(u32::from_value(&value).map_err(|e| PersistError::Format(e.into()))?);
                }
                "kind" => {
                    kind = Some(
                        String::from_value(&value).map_err(|e| PersistError::Format(e.into()))?,
                    );
                }
                "sketch" => body = Some(value),
                _ => {}
            }
        }
        Ok(Self {
            version: version.ok_or_else(|| bad("missing field `format_version`"))?,
            kind: kind.ok_or_else(|| bad("missing field `kind`"))?,
            body: body.ok_or_else(|| bad("missing field `sketch`"))?,
        })
    }

    /// Open and parse the envelope of the snapshot file at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, PersistError> {
        Self::read(File::open(path)?)
    }

    /// The envelope kind tag (`gsketch:cm-arena`, `global`, ...).
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Format version recorded in the envelope.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Decode the body as a [`GSketch`] with backend `B`, verifying the
    /// header first.
    pub fn decode_gsketch<B: FrequencySketch>(&self) -> Result<GSketch<B>, PersistError> {
        check_header(
            self.version,
            &[FORMAT_VERSION],
            &self.kind,
            &gsketch_kind::<B>(),
        )?;
        serde::Deserialize::from_value(&self.body).map_err(|e| PersistError::Format(e.into()))
    }

    /// Decode the body as a [`GlobalSketch`], verifying the header first.
    /// Version 1 is still accepted for this kind: the arena refactor that
    /// bumped [`FORMAT_VERSION`] did not change the global-sketch layout.
    pub fn decode_global(&self) -> Result<GlobalSketch, PersistError> {
        check_header(self.version, &[1, FORMAT_VERSION], &self.kind, "global")?;
        serde::Deserialize::from_value(&self.body).map_err(|e| PersistError::Format(e.into()))
    }
}

/// Serialize a [`GSketch`] snapshot to `w`. Works for any backend; the
/// envelope kind records which one (`gsketch:cm-arena` for the default).
pub fn write_gsketch<W: Write, B: FrequencySketch>(
    w: W,
    sketch: &GSketch<B>,
) -> Result<(), PersistError> {
    let mut out = BufWriter::new(w);
    serde_json::to_writer(
        &mut out,
        &Envelope {
            format_version: FORMAT_VERSION,
            kind: gsketch_kind::<B>(),
            sketch,
        },
    )?;
    out.flush()?;
    Ok(())
}

/// Deserialize a [`GSketch`] snapshot from `r`. The snapshot must have
/// been written with the same backend `B` — the kind tag is checked
/// *before* the body decodes, so a wrong-backend load reports
/// [`PersistError::KindMismatch`] rather than an opaque parse failure.
pub fn read_gsketch_backend<R: Read, B: FrequencySketch>(r: R) -> Result<GSketch<B>, PersistError> {
    RawSnapshot::read(r)?.decode_gsketch()
}

/// Deserialize a default-backend [`GSketch`] snapshot from `r`.
pub fn read_gsketch<R: Read>(r: R) -> Result<GSketch, PersistError> {
    read_gsketch_backend(r)
}

/// Save a [`GSketch`] snapshot (any backend) to the file at `path`.
pub fn save_gsketch<P: AsRef<Path>, B: FrequencySketch>(
    path: P,
    sketch: &GSketch<B>,
) -> Result<(), PersistError> {
    write_gsketch(File::create(path)?, sketch)
}

/// Load a default-backend [`GSketch`] snapshot from the file at `path`.
pub fn load_gsketch<P: AsRef<Path>>(path: P) -> Result<GSketch, PersistError> {
    read_gsketch(File::open(path)?)
}

/// Load a [`GSketch`] snapshot with an explicit backend from `path`.
pub fn load_gsketch_backend<P: AsRef<Path>, B: FrequencySketch>(
    path: P,
) -> Result<GSketch<B>, PersistError> {
    read_gsketch_backend(File::open(path)?)
}

/// Serialize a [`GlobalSketch`] snapshot to `w`.
pub fn write_global<W: Write>(w: W, sketch: &GlobalSketch) -> Result<(), PersistError> {
    let mut out = BufWriter::new(w);
    serde_json::to_writer(
        &mut out,
        &Envelope {
            format_version: FORMAT_VERSION,
            kind: "global".to_owned(),
            sketch,
        },
    )?;
    out.flush()?;
    Ok(())
}

/// Deserialize a [`GlobalSketch`] snapshot from `r`.
pub fn read_global<R: Read>(r: R) -> Result<GlobalSketch, PersistError> {
    RawSnapshot::read(r)?.decode_global()
}

/// Save a [`GlobalSketch`] snapshot to the file at `path`.
pub fn save_global<P: AsRef<Path>>(path: P, sketch: &GlobalSketch) -> Result<(), PersistError> {
    write_global(File::create(path)?, sketch)
}

/// Load a [`GlobalSketch`] snapshot from the file at `path`.
pub fn load_global<P: AsRef<Path>>(path: P) -> Result<GlobalSketch, PersistError> {
    read_global(File::open(path)?)
}

// ---------------------------------------------------------------------------
// Windowed snapshots (format v3, DESIGN.md §13)
// ---------------------------------------------------------------------------
//
// Layout (one JSON document per line):
//
//   line 0   {"format_version":3,"kind":"gsketch-windowed:<backend>","header":{...}}
//   line 1.. one record per sealed window: {"start":..,"end":..,"sketch":{...}}
//   tail     {"tiers":[...],"current":{...},"reservoir":{...},"rng":[...],...}
//   footer   {"windows":[[start,end,byte_offset],...],"tail_offset":N}
//
// Sealed windows are immutable, so their record lines are append-only:
// `save_windowed` onto an existing file validates the header, truncates
// at the recorded `tail_offset`, and writes only the windows sealed
// since the last save plus a fresh tail and footer — O(new), not
// O(history). Coarsened windows' records stay in the file as history;
// the tail's tiers supersede them at load. The footer's byte offsets let
// `load_windowed_horizon` parse only the records overlapping a queried
// span.

use crate::window::WindowedGSketch;
use sketch::CmArena;
use std::io::Seek;

/// The envelope kind tag for a windowed deployment with backend `B`.
fn windowed_kind<B: FrequencySketch>() -> String {
    format!("gsketch-windowed:{}", B::KIND)
}

fn format_err(msg: impl Into<String>) -> PersistError {
    PersistError::Format(serde::Error(msg.into()).into())
}

/// The JSON document starting at byte `off` (one line; no trailing
/// newline). Offsets come from a snapshot footer, so every access is
/// checked — a truncated or tampered file reports a format error instead
/// of panicking.
fn line_at(text: &str, off: u64) -> Result<&str, PersistError> {
    let off = usize::try_from(off).map_err(|_| format_err("snapshot offset out of range"))?;
    let rest = text
        .get(off..)
        .ok_or_else(|| format_err("snapshot offset past end of file"))?;
    match rest.split('\n').next() {
        Some(line) if !line.trim().is_empty() => Ok(line),
        _ => Err(format_err("snapshot record at indexed offset is empty")),
    }
}

/// Parsed v3 framing: the header envelope plus the footer index. Window
/// record bodies are *not* parsed here — callers decode only the lines
/// they need.
struct WindowedFraming {
    header: serde::Value,
    /// `(start, end, byte_offset)` per sealed-window record.
    windows: Vec<(u64, u64, u64)>,
    tail_offset: u64,
}

fn parse_windowed_framing(
    text: &str,
    expected_kind: &str,
) -> Result<WindowedFraming, PersistError> {
    let first = text
        .lines()
        .next()
        .filter(|l| !l.trim().is_empty())
        .ok_or_else(|| format_err("snapshot file is empty"))?;
    let envelope = serde_json::parse(first)?;
    let version = u32::from_value(serde::value_field(&envelope, "format_version")?)
        .map_err(|e| PersistError::Format(e.into()))?;
    let kind = String::from_value(serde::value_field(&envelope, "kind")?)
        .map_err(|e| PersistError::Format(e.into()))?;
    check_header(version, &[WINDOWED_FORMAT_VERSION], &kind, expected_kind)?;
    let header = serde::value_field(&envelope, "header")?.clone();

    let last = text
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| format_err("snapshot file has no footer"))?;
    let footer = serde_json::parse(last)
        .map_err(|_| format_err("snapshot footer is unreadable (truncated file?)"))?;
    let tail_offset = u64::from_value(serde::value_field(&footer, "tail_offset")?)
        .map_err(|e| PersistError::Format(e.into()))?;
    let mut windows = Vec::new();
    match serde::value_field(&footer, "windows")? {
        serde::Value::Seq(items) => {
            for item in items {
                let triple =
                    serde::value_seq(item, 3).map_err(|e| PersistError::Format(e.into()))?;
                let start =
                    u64::from_value(&triple[0]).map_err(|e| PersistError::Format(e.into()))?;
                let end =
                    u64::from_value(&triple[1]).map_err(|e| PersistError::Format(e.into()))?;
                let off =
                    u64::from_value(&triple[2]).map_err(|e| PersistError::Format(e.into()))?;
                if start >= end {
                    return Err(format_err(format!(
                        "snapshot footer window [{start}, {end}) is empty or inverted"
                    )));
                }
                if let Some(&(_, prev_end, _)) = windows.last() {
                    if start < prev_end {
                        return Err(format_err("snapshot footer windows out of order"));
                    }
                }
                windows.push((start, end, off));
            }
        }
        other => {
            return Err(format_err(format!(
                "snapshot footer `windows` is {other:?}"
            )))
        }
    }
    // The footer must point inside the file; a stale footer after an
    // interrupted append is a format error, not a panic.
    line_at(text, tail_offset)?;
    Ok(WindowedFraming {
        header,
        windows,
        tail_offset,
    })
}

/// Render one line-framed snapshot section (record, tail) as JSON.
fn encode_line(v: &serde::Value) -> Result<String, PersistError> {
    Ok(serde_json::to_string(v)?)
}

fn encode_footer(windows: &[(u64, u64, u64)], tail_offset: u64) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{\"windows\":[");
    for (i, (start, end, off)) in windows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        // Infallible: writing to a String cannot error.
        let _ = write!(s, "[{start},{end},{off}]");
    }
    let _ = write!(s, "],\"tail_offset\":{tail_offset}}}");
    s
}

/// Save a windowed deployment to `path` (format v3). If `path` does not
/// exist, the full state is written. If it does, the save is an
/// **incremental append**: the existing header is validated against the
/// instance (same deployment, same configuration), the file is truncated
/// at its recorded `tail_offset`, and only the windows sealed since the
/// last save are written, followed by a fresh tail and footer — the
/// write cost is O(new windows), independent of how much history the
/// file already holds.
pub fn save_windowed<P: AsRef<Path>, B: FrequencySketch>(
    path: P,
    w: &WindowedGSketch<B>,
) -> Result<(), PersistError> {
    if w.is_partial() {
        return Err(PersistError::PartialInstance);
    }
    let path = path.as_ref();
    let header = serde::Value::Map(vec![
        (
            "format_version".to_owned(),
            serde::Value::U64(u64::from(WINDOWED_FORMAT_VERSION)),
        ),
        ("kind".to_owned(), serde::Value::Str(windowed_kind::<B>())),
        ("header".to_owned(), w.encode_header()),
    ]);
    let spans = w.sealed_spans();

    // Returns the windows already recorded (kept with their offsets) and
    // the byte position appends start from; `None` means a fresh write.
    let existing = if path.exists() {
        let text = std::fs::read_to_string(path)?;
        let framing = parse_windowed_framing(&text, &windowed_kind::<B>())?;
        if framing.header != w.encode_header() {
            return Err(PersistError::AppendMismatch(
                "file header (config/builder/horizon) differs from this instance".to_owned(),
            ));
        }
        let file_end = framing.windows.last().map_or(0, |&(_, end, _)| end);
        // Every live sealed window inside the file's recorded range must
        // already be in the file; every recorded window the instance no
        // longer holds must have been coarsened into its tiers.
        for &(start, end) in spans.iter().filter(|&&(s, _)| s < file_end) {
            if !framing
                .windows
                .iter()
                .any(|&(fs, fe, _)| (fs, fe) == (start, end))
            {
                return Err(PersistError::AppendMismatch(format!(
                    "instance window [{start}, {end}) is missing from the file's history"
                )));
            }
        }
        let tiers_end = w.tiers_end();
        for &(fs, fe, _) in &framing.windows {
            if fe > tiers_end && !spans.iter().any(|&(s, e)| (s, e) == (fs, fe)) {
                return Err(PersistError::AppendMismatch(format!(
                    "file window [{fs}, {fe}) is neither held nor coarsened by this instance"
                )));
            }
        }
        Some((framing.windows, framing.tail_offset, file_end))
    } else {
        None
    };

    let (mut index, mut offset, file_end) = match &existing {
        Some((windows, tail_offset, file_end)) => (windows.clone(), *tail_offset, *file_end),
        None => (Vec::new(), 0, 0),
    };

    // Lines to write from `offset` on: new window records, tail, footer.
    let mut lines: Vec<String> = Vec::new();
    if existing.is_none() {
        let header_line = encode_line(&header)?;
        offset = header_line.len() as u64 + 1;
        lines.push(header_line);
    }
    for (i, &(start, end)) in spans.iter().enumerate() {
        if start < file_end {
            continue; // already recorded
        }
        let Some(record) = w.encode_sealed(i) else {
            return Err(format_err("sealed window index out of range"));
        };
        let line = encode_line(&record)?;
        index.push((start, end, offset));
        offset += line.len() as u64 + 1;
        lines.push(line);
    }
    let tail_line = encode_line(&w.encode_tail())?;
    let tail_offset = offset;
    lines.push(tail_line);
    lines.push(encode_footer(&index, tail_offset));

    let mut file = if let Some((_, old_tail, _)) = existing {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        // Drop the old tail + footer; everything before is append-only.
        f.set_len(old_tail)?;
        let mut f = f;
        f.seek(io::SeekFrom::End(0))?;
        f
    } else {
        File::create(path)?
    };
    let mut out = BufWriter::new(&mut file);
    for line in &lines {
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()?;
    Ok(())
}

fn decode_windowed<B: FrequencySketch>(
    text: &str,
    framing: &WindowedFraming,
    span_filter: Option<(u64, u64)>,
) -> Result<WindowedGSketch<B>, PersistError> {
    let tail = serde_json::parse(line_at(text, framing.tail_offset)?)?;
    // Records already absorbed into the tail's tiers are history: skip
    // the (expensive) sketch decode, the tiers answer for that span.
    let tiers_end = match serde::value_field(&tail, "tiers") {
        Ok(serde::Value::Seq(items)) => match items.last() {
            Some(last) => u64::from_value(serde::value_field(last, "end")?)
                .map_err(|e| PersistError::Format(e.into()))?,
            None => 0,
        },
        _ => 0,
    };
    let mut records = Vec::new();
    let mut skipped_any = false;
    for &(start, end, off) in &framing.windows {
        if end <= tiers_end {
            continue;
        }
        if let Some((ts, te)) = span_filter {
            // Overlap of [ts, te] (inclusive) with [start, end).
            if end <= ts || start > te {
                skipped_any = true;
                continue;
            }
        }
        records.push(serde_json::parse(line_at(text, off)?)?);
    }
    WindowedGSketch::<B>::from_snapshot(&framing.header, &records, &tail, skipped_any)
        .map_err(|e| PersistError::Format(e.into()))
}

/// Load a full windowed snapshot (default backend) from `path`.
pub fn load_windowed<P: AsRef<Path>>(path: P) -> Result<WindowedGSketch, PersistError> {
    load_windowed_backend::<P, CmArena>(path)
}

/// [`load_windowed`] with an explicit synopsis backend.
pub fn load_windowed_backend<P: AsRef<Path>, B: FrequencySketch>(
    path: P,
) -> Result<WindowedGSketch<B>, PersistError> {
    let text = std::fs::read_to_string(path)?;
    let framing = parse_windowed_framing(&text, &windowed_kind::<B>())?;
    decode_windowed(&text, &framing, None)
}

/// Load only the sealed windows overlapping `[t_start, t_end]`
/// (inclusive), plus the tail. The footer's byte index means records
/// outside the span are never parsed — a query over a narrow horizon
/// pays for the windows it touches, not the whole history. If any
/// record was skipped the returned instance is **partial**
/// ([`WindowedGSketch::is_partial`]): answers are only valid inside the
/// loaded span and re-saving it is refused.
pub fn load_windowed_horizon<P: AsRef<Path>>(
    path: P,
    t_start: u64,
    t_end: u64,
) -> Result<WindowedGSketch, PersistError> {
    load_windowed_horizon_backend::<P, CmArena>(path, t_start, t_end)
}

/// [`load_windowed_horizon`] with an explicit synopsis backend.
pub fn load_windowed_horizon_backend<P: AsRef<Path>, B: FrequencySketch>(
    path: P,
    t_start: u64,
    t_end: u64,
) -> Result<WindowedGSketch<B>, PersistError> {
    let text = std::fs::read_to_string(path)?;
    let framing = parse_windowed_framing(&text, &windowed_kind::<B>())?;
    decode_windowed(&text, &framing, Some((t_start, t_end)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeSink;
    use gstream::edge::{Edge, StreamEdge};

    fn sample_stream() -> Vec<StreamEdge> {
        (0..500u64)
            .map(|t| StreamEdge::unit(Edge::new((t % 20) as u32, 100 + (t % 7) as u32), t))
            .collect()
    }

    fn built_gsketch() -> GSketch {
        let stream = sample_stream();
        let mut g = GSketch::builder()
            .memory_bytes(1 << 14)
            .min_width(32)
            .build_from_sample(&stream)
            .unwrap();
        g.ingest(&stream);
        g
    }

    #[test]
    fn gsketch_round_trip_preserves_estimates() {
        let g = built_gsketch();
        let mut buf = Vec::new();
        write_gsketch(&mut buf, &g).unwrap();
        let back = read_gsketch(&buf[..]).unwrap();
        for t in 0..500u64 {
            let e = Edge::new((t % 20) as u32, 100 + (t % 7) as u32);
            assert_eq!(g.estimate(e), back.estimate(e));
            assert_eq!(g.route(e), back.route(e));
        }
        assert_eq!(g.num_partitions(), back.num_partitions());
        assert_eq!(g.bytes(), back.bytes());
    }

    #[test]
    fn restored_sketch_accepts_more_stream() {
        let g = built_gsketch();
        let mut buf = Vec::new();
        write_gsketch(&mut buf, &g).unwrap();
        let mut back = read_gsketch(&buf[..]).unwrap();
        let e = Edge::new(3u32, 103u32);
        let before = back.estimate(e);
        back.update(StreamEdge::weighted(e, 0, 10));
        assert_eq!(back.estimate(e), before + 10);
    }

    #[test]
    fn global_round_trip_preserves_estimates() {
        let stream = sample_stream();
        let mut g = GlobalSketch::new(1 << 14, 3, 7).unwrap();
        g.ingest(&stream);
        let mut buf = Vec::new();
        write_global(&mut buf, &g).unwrap();
        let back = read_global(&buf[..]).unwrap();
        for se in &stream {
            assert_eq!(g.estimate(se.edge), back.estimate(se.edge));
        }
    }

    #[test]
    fn version_mismatch_detected() {
        let g = built_gsketch();
        let mut buf = Vec::new();
        write_gsketch(&mut buf, &g).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text = text.replace(
            &format!("\"format_version\":{FORMAT_VERSION}"),
            "\"format_version\":999",
        );
        let err = read_gsketch(text.as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            PersistError::VersionMismatch { found: 999, .. }
        ));
    }

    #[test]
    fn kind_mismatch_detected() {
        let stream = sample_stream();
        let mut g = GlobalSketch::new(1 << 12, 3, 7).unwrap();
        g.ingest(&stream);
        let mut buf = Vec::new();
        write_global(&mut buf, &g).unwrap();
        let err = read_gsketch(&buf[..]).unwrap_err();
        // The kind tag rejects it before any body decode is attempted.
        assert!(matches!(err, PersistError::KindMismatch { .. }));
    }

    #[test]
    fn inconsistent_router_bank_pair_is_a_format_error() {
        // A hand-edited snapshot whose router addresses more slots than
        // the bank holds must fail cleanly at load, not panic at query.
        let g = built_gsketch();
        let mut buf = Vec::new();
        write_gsketch(&mut buf, &g).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let needle = "\"outlier_slot\":";
        let at = text.find(needle).unwrap() + needle.len();
        let end = at + text[at..].find([',', '}']).unwrap();
        let tampered = format!("{}99{}", &text[..at], &text[end..]);
        let err = read_gsketch(tampered.as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "got: {err}");
    }

    #[test]
    fn version_one_global_snapshots_still_load() {
        // The arena refactor bumped the envelope version for gSketch
        // bodies; the global-sketch layout is unchanged, so a v1 global
        // snapshot must keep loading.
        let stream = sample_stream();
        let mut g = GlobalSketch::new(1 << 12, 3, 7).unwrap();
        g.ingest(&stream);
        let mut buf = Vec::new();
        write_global(&mut buf, &g).unwrap();
        let text = String::from_utf8(buf).unwrap().replace(
            &format!("\"format_version\":{FORMAT_VERSION}"),
            "\"format_version\":1",
        );
        let back = read_global(text.as_bytes()).unwrap();
        for se in stream.iter().take(50) {
            assert_eq!(g.estimate(se.edge), back.estimate(se.edge));
        }
    }

    #[test]
    fn garbage_is_a_format_error() {
        let err = read_gsketch("not json at all".as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("gsketch_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        let g = built_gsketch();
        save_gsketch(&path, &g).unwrap();
        let back = load_gsketch(&path).unwrap();
        assert_eq!(
            g.estimate(Edge::new(1u32, 101u32)),
            back.estimate(Edge::new(1u32, 101u32))
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_gsketch("/nonexistent/missing.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn backend_round_trip_and_cross_backend_rejection() {
        use sketch::CountMinSketch;
        let stream = sample_stream();
        let mut g = GSketch::builder()
            .memory_bytes(1 << 14)
            .min_width(32)
            .build_from_sample_backend::<CountMinSketch>(&stream)
            .unwrap();
        g.ingest(&stream);
        let mut buf = Vec::new();
        write_gsketch(&mut buf, &g).unwrap();
        let back: GSketch<CountMinSketch> = read_gsketch_backend(&buf[..]).unwrap();
        for se in &stream {
            assert_eq!(g.estimate(se.edge), back.estimate(se.edge));
        }
        // The same snapshot refuses to decode as the arena backend: the
        // kind tag rejects it before the body is ever decoded.
        let err = read_gsketch(&buf[..]).unwrap_err();
        assert!(matches!(err, PersistError::KindMismatch { .. }));
        // The raw envelope exposes the tag for backend dispatch.
        let raw = RawSnapshot::read(&buf[..]).unwrap();
        assert_eq!(raw.kind(), "gsketch:countmin");
        assert_eq!(raw.version(), FORMAT_VERSION);
    }

    #[test]
    fn display_messages() {
        let e = PersistError::VersionMismatch {
            found: 9,
            expected: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = PersistError::KindMismatch {
            found: "x".into(),
            expected: "gsketch:cm-arena".into(),
        };
        assert!(e.to_string().contains("gsketch"));
        assert!(PersistError::PartialInstance
            .to_string()
            .contains("partial"));
        assert!(PersistError::AppendMismatch("diverged".into())
            .to_string()
            .contains("diverged"));
    }

    // -- windowed snapshots (format v3) -----------------------------------

    use crate::window::WindowConfig;
    use crate::WindowedGSketch;

    fn wcfg() -> WindowConfig {
        WindowConfig {
            span: 100,
            memory_bytes_per_window: 1 << 14,
            sample_capacity: 64,
            seed: 7,
        }
    }

    fn wbuilder() -> crate::GSketchBuilder {
        GSketch::builder().min_width(16)
    }

    fn wstream(range: std::ops::Range<u64>) -> Vec<StreamEdge> {
        range
            .map(|ts| StreamEdge::unit(Edge::new((ts % 9) as u32, 40 + (ts % 4) as u32), ts))
            .collect()
    }

    fn query_edges() -> Vec<Edge> {
        (0..9u32)
            .flat_map(|s| (40..44u32).map(move |d| Edge::new(s, d)))
            .collect()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gsketch_persist_windowed");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    /// Every interval answer — plain and detailed — must be
    /// bit-identical between the two instances across a spread of spans.
    fn assert_windowed_answers_identical<B: FrequencySketch>(
        a: &WindowedGSketch<B>,
        b: &WindowedGSketch<B>,
        ctx: &str,
    ) {
        let edges = query_edges();
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        let (mut ra, mut rb) = (Vec::new(), Vec::new());
        for (ts, te) in [(0u64, u64::MAX), (0, 349), (120, 480), (333, 333)] {
            a.estimate_interval_batch(&edges, ts, te, &mut va);
            b.estimate_interval_batch(&edges, ts, te, &mut vb);
            for (x, y) in va.iter().zip(&vb) {
                assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: [{ts}, {te}]");
            }
            a.estimate_interval_detailed_batch(&edges, ts, te, &mut ra);
            b.estimate_interval_detailed_batch(&edges, ts, te, &mut rb);
            for (x, y) in ra.iter().zip(&rb) {
                assert_eq!(x.value.to_bits(), y.value.to_bits(), "{ctx}");
                assert_eq!(x.error_bound.to_bits(), y.error_bound.to_bits(), "{ctx}");
                assert_eq!(x.confidence.to_bits(), y.confidence.to_bits(), "{ctx}");
            }
        }
    }

    #[test]
    fn windowed_round_trip_is_bit_identical_and_resumable() {
        let path = temp_path("round_trip.json");
        let mut w = WindowedGSketch::new(wcfg(), wbuilder()).unwrap();
        for se in wstream(0..550) {
            w.try_insert(se).unwrap();
        }
        save_windowed(&path, &w).unwrap();
        let mut back = load_windowed(&path).unwrap();
        assert!(!back.is_partial());
        assert_eq!(back.sealed_windows(), w.sealed_windows());
        assert_eq!(back.current_window_start(), w.current_window_start());
        assert_windowed_answers_identical(&w, &back, "after load");
        // Resumability is the hard part: reservoir + RNG state round-trip,
        // so continued ingest (rotations included) stays bit-identical.
        for se in wstream(550..900) {
            w.try_insert(se).unwrap();
            back.try_insert(se).unwrap();
        }
        assert_windowed_answers_identical(&w, &back, "after resumed ingest");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn windowed_append_writes_only_new_windows() {
        let path = temp_path("append.json");
        let mut w = WindowedGSketch::new(wcfg(), wbuilder()).unwrap();
        for se in wstream(0..350) {
            w.try_insert(se).unwrap();
        }
        save_windowed(&path, &w).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        let framing = parse_windowed_framing(&first, &windowed_kind::<sketch::CmArena>()).unwrap();
        assert_eq!(framing.windows.len(), 3);

        for se in wstream(350..900) {
            w.try_insert(se).unwrap();
        }
        save_windowed(&path, &w).unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        // Append-only: everything before the old tail offset is
        // byte-for-byte unchanged — old records were not rewritten.
        let old_tail = usize::try_from(framing.tail_offset).unwrap();
        assert_eq!(&first[..old_tail], &second[..old_tail]);
        let framing2 =
            parse_windowed_framing(&second, &windowed_kind::<sketch::CmArena>()).unwrap();
        assert_eq!(framing2.windows.len(), 8);

        let back = load_windowed(&path).unwrap();
        assert_windowed_answers_identical(&w, &back, "after append + load");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn windowed_append_rejects_diverged_history() {
        let path = temp_path("diverged.json");
        let mut w = WindowedGSketch::new(wcfg(), wbuilder()).unwrap();
        for se in wstream(0..350) {
            w.try_insert(se).unwrap();
        }
        save_windowed(&path, &w).unwrap();
        // A different deployment (different seed ⇒ different header).
        let mut other = WindowedGSketch::new(
            WindowConfig {
                seed: 1234,
                ..wcfg()
            },
            wbuilder(),
        )
        .unwrap();
        for se in wstream(0..350) {
            other.try_insert(se).unwrap();
        }
        let err = save_windowed(&path, &other).unwrap_err();
        assert!(matches!(err, PersistError::AppendMismatch(_)), "got {err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn windowed_horizon_load_skips_records_and_is_partial() {
        let path = temp_path("horizon.json");
        let mut w = WindowedGSketch::new(wcfg(), wbuilder()).unwrap();
        for se in wstream(0..800) {
            w.try_insert(se).unwrap();
        }
        save_windowed(&path, &w).unwrap();
        let narrow = load_windowed_horizon(&path, 300, 499).unwrap();
        assert!(narrow.is_partial());
        assert!(narrow.sealed_windows() < w.sealed_windows());
        // Inside the loaded span, answers match the full instance
        // bit-for-bit (absent windows contribute exactly 0 elsewhere).
        let edges = query_edges();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        w.estimate_interval_batch(&edges, 300, 499, &mut a);
        narrow.estimate_interval_batch(&edges, 300, 499, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // A partial instance refuses to overwrite durable history.
        let err = save_windowed(&path, &narrow).unwrap_err();
        assert!(matches!(err, PersistError::PartialInstance));
        // A horizon covering everything is not partial.
        let full = load_windowed_horizon(&path, 0, u64::MAX).unwrap();
        assert!(!full.is_partial());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn windowed_tiered_round_trip_and_append() {
        let path = temp_path("tiered.json");
        let mut w = WindowedGSketch::with_horizon(wcfg(), wbuilder(), 2).unwrap();
        let mut shadow = WindowedGSketch::with_horizon(wcfg(), wbuilder(), 2).unwrap();
        for se in wstream(0..900) {
            w.try_insert(se).unwrap();
            shadow.try_insert(se).unwrap();
        }
        assert!(w.num_tiers() >= 1, "test needs coarsened history");
        save_windowed(&path, &w).unwrap();
        let mut back = load_windowed(&path).unwrap();
        assert_eq!(back.num_tiers(), w.num_tiers());
        assert_eq!(back.coarsenings(), w.coarsenings());
        assert_windowed_answers_identical(&w, &back, "tiered load");
        // Append after further coarsening, then reload: still identical
        // to the shadow instance that never went through a file.
        for se in wstream(900..1500) {
            w.try_insert(se).unwrap();
            shadow.try_insert(se).unwrap();
            back.try_insert(se).unwrap();
        }
        assert_windowed_answers_identical(&shadow, &back, "tiered resumed ingest");
        save_windowed(&path, &w).unwrap();
        let again = load_windowed(&path).unwrap();
        assert_windowed_answers_identical(&shadow, &again, "tiered append + reload");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn windowed_cross_backend_and_flat_kind_rejected() {
        use sketch::CountMinSketch;
        let path = temp_path("kind.json");
        let mut w = WindowedGSketch::<CountMinSketch>::new_backend(wcfg(), wbuilder()).unwrap();
        for se in wstream(0..250) {
            w.try_insert(se).unwrap();
        }
        save_windowed(&path, &w).unwrap();
        // Round trip under the right backend works…
        let back = load_windowed_backend::<_, CountMinSketch>(&path).unwrap();
        assert_windowed_answers_identical(&w, &back, "countmin windowed");
        // …the default backend refuses, naming both kinds…
        let err = load_windowed(&path).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, PersistError::KindMismatch { .. }));
        assert!(msg.contains("gsketch-windowed:countmin"), "{msg}");
        assert!(msg.contains("gsketch-windowed:cm-arena"), "{msg}");
        // …and a flat snapshot is rejected by kind, not by parse chaos.
        let flat = temp_path("flat.json");
        save_gsketch(&flat, &built_gsketch()).unwrap();
        let err = load_windowed(&flat).unwrap_err();
        assert!(
            matches!(
                err,
                PersistError::KindMismatch { .. } | PersistError::Format(_)
            ),
            "got {err}"
        );
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&flat).unwrap();
    }

    #[test]
    fn windowed_version_mismatch_names_windowed_version() {
        let path = temp_path("version.json");
        let mut w = WindowedGSketch::new(wcfg(), wbuilder()).unwrap();
        for se in wstream(0..150) {
            w.try_insert(se).unwrap();
        }
        save_windowed(&path, &w).unwrap();
        let text = std::fs::read_to_string(&path).unwrap().replace(
            &format!("\"format_version\":{WINDOWED_FORMAT_VERSION}"),
            "\"format_version\":77",
        );
        std::fs::write(&path, text).unwrap();
        let err = load_windowed(&path).unwrap_err();
        match err {
            PersistError::VersionMismatch { found, expected } => {
                assert_eq!(found, 77);
                assert_eq!(expected, WINDOWED_FORMAT_VERSION);
            }
            other => panic!("expected version mismatch, got {other}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Truncation at any byte must produce an error, never a panic: the
    /// decode path is what `xtask lint` pins as panic-free.
    #[test]
    fn truncated_windowed_snapshots_error_cleanly() {
        let path = temp_path("truncated.json");
        let mut w = WindowedGSketch::new(wcfg(), wbuilder()).unwrap();
        for se in wstream(0..350) {
            w.try_insert(se).unwrap();
        }
        save_windowed(&path, &w).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Sweep cut points across the whole file (step keeps it fast).
        // Every cut below len−1 severs the footer line; len−1 would only
        // drop the trailing newline, which is legitimately loadable.
        for cut in (0..full.len().saturating_sub(1)).step_by(97) {
            std::fs::write(&path, &full[..cut]).unwrap();
            match load_windowed(&path) {
                Err(_) => {}
                Ok(_) => panic!("truncation at byte {cut} decoded successfully"),
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}
