//! Persistence: save and load sketch state across process restarts.
//!
//! A deployed gSketch accumulates stream state that must survive
//! restarts, rollouts, and migration between hosts. This module
//! serializes the full synopsis — every localized sketch with its hash
//! coefficients, the outlier sketch, the router table, and the partition
//! plan — into a versioned JSON envelope. JSON is chosen over a binary
//! codec deliberately: sketch snapshots are small relative to the streams
//! they summarize (a 2 MB sketch is a large one), and an inspectable
//! format lets operators diff snapshots with standard tools. The envelope
//! carries a format version so future layout changes can be detected
//! rather than mis-parsed.

use crate::global::GlobalSketch;
use crate::gsketch::GSketch;
use serde::{Deserialize, Serialize};
use sketch::FrequencySketch;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

/// Current snapshot format version. Version 2 is the arena-backend
/// layout: the `GSketch` body is a synopsis *bank* (slot widths + one
/// slab or one sketch per slot) instead of version 1's
/// partitions/outlier pair, and the envelope kind carries the backend
/// (`gsketch:cm-arena`, `gsketch:countmin`, ...), so snapshots built
/// with one backend cannot be silently decoded as another.
pub const FORMAT_VERSION: u32 = 2;

/// Errors produced while saving or loading snapshots.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed or non-snapshot JSON.
    Format(serde_json::Error),
    /// The snapshot was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The snapshot holds a different kind of sketch (or a different
    /// synopsis backend) than requested.
    KindMismatch {
        /// Kind found in the file.
        found: String,
        /// Kind the caller asked for.
        expected: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            PersistError::Format(e) => write!(f, "snapshot format error: {e}"),
            PersistError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} (this build reads {expected})")
            }
            PersistError::KindMismatch { found, expected } => {
                write!(
                    f,
                    "snapshot holds a `{found}` sketch, expected `{expected}`"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// The versioned on-disk envelope.
#[derive(Serialize, Deserialize)]
struct Envelope<T> {
    format_version: u32,
    kind: String,
    sketch: T,
}

fn check_header(
    version: u32,
    accepted: &[u32],
    kind: &str,
    expected: &str,
) -> Result<(), PersistError> {
    if !accepted.contains(&version) {
        return Err(PersistError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    if kind != expected {
        return Err(PersistError::KindMismatch {
            found: kind.to_owned(),
            expected: expected.to_owned(),
        });
    }
    Ok(())
}

/// The envelope kind tag for a `GSketch` with backend `B`.
fn gsketch_kind<B: FrequencySketch>() -> String {
    format!("gsketch:{}", B::KIND)
}

/// A snapshot whose envelope has been parsed but whose body has not been
/// decoded yet. Lets callers inspect [`kind`](Self::kind) — e.g. to pick
/// the right `GSketch` backend — and then decode the body exactly once,
/// instead of speculatively decoding megabytes of counters under the
/// wrong layout.
pub struct RawSnapshot {
    version: u32,
    kind: String,
    body: serde::Value,
}

impl RawSnapshot {
    /// Parse a snapshot envelope from `r` without decoding the body.
    pub fn read<R: Read>(mut r: R) -> Result<Self, PersistError> {
        // read_to_string already reads to EOF in chunks; no BufReader
        // needed (it would only add an intermediate copy).
        let mut text = String::new();
        r.read_to_string(&mut text)?;
        let v = serde_json::parse(&text)?;
        let bad = |msg: &str| PersistError::Format(serde::Error(msg.to_owned()).into());
        // The parse tree is owned, so the (potentially megabytes-large)
        // body is moved out of the envelope rather than cloned.
        let serde::Value::Map(entries) = v else {
            return Err(bad("snapshot envelope is not a JSON object"));
        };
        let mut version = None;
        let mut kind = None;
        let mut body = None;
        for (key, value) in entries {
            match key.as_str() {
                "format_version" => {
                    version =
                        Some(u32::from_value(&value).map_err(|e| PersistError::Format(e.into()))?);
                }
                "kind" => {
                    kind = Some(
                        String::from_value(&value).map_err(|e| PersistError::Format(e.into()))?,
                    );
                }
                "sketch" => body = Some(value),
                _ => {}
            }
        }
        Ok(Self {
            version: version.ok_or_else(|| bad("missing field `format_version`"))?,
            kind: kind.ok_or_else(|| bad("missing field `kind`"))?,
            body: body.ok_or_else(|| bad("missing field `sketch`"))?,
        })
    }

    /// Open and parse the envelope of the snapshot file at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, PersistError> {
        Self::read(File::open(path)?)
    }

    /// The envelope kind tag (`gsketch:cm-arena`, `global`, ...).
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Format version recorded in the envelope.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Decode the body as a [`GSketch`] with backend `B`, verifying the
    /// header first.
    pub fn decode_gsketch<B: FrequencySketch>(&self) -> Result<GSketch<B>, PersistError> {
        check_header(
            self.version,
            &[FORMAT_VERSION],
            &self.kind,
            &gsketch_kind::<B>(),
        )?;
        serde::Deserialize::from_value(&self.body).map_err(|e| PersistError::Format(e.into()))
    }

    /// Decode the body as a [`GlobalSketch`], verifying the header first.
    /// Version 1 is still accepted for this kind: the arena refactor that
    /// bumped [`FORMAT_VERSION`] did not change the global-sketch layout.
    pub fn decode_global(&self) -> Result<GlobalSketch, PersistError> {
        check_header(self.version, &[1, FORMAT_VERSION], &self.kind, "global")?;
        serde::Deserialize::from_value(&self.body).map_err(|e| PersistError::Format(e.into()))
    }
}

/// Serialize a [`GSketch`] snapshot to `w`. Works for any backend; the
/// envelope kind records which one (`gsketch:cm-arena` for the default).
pub fn write_gsketch<W: Write, B: FrequencySketch>(
    w: W,
    sketch: &GSketch<B>,
) -> Result<(), PersistError> {
    let mut out = BufWriter::new(w);
    serde_json::to_writer(
        &mut out,
        &Envelope {
            format_version: FORMAT_VERSION,
            kind: gsketch_kind::<B>(),
            sketch,
        },
    )?;
    out.flush()?;
    Ok(())
}

/// Deserialize a [`GSketch`] snapshot from `r`. The snapshot must have
/// been written with the same backend `B` — the kind tag is checked
/// *before* the body decodes, so a wrong-backend load reports
/// [`PersistError::KindMismatch`] rather than an opaque parse failure.
pub fn read_gsketch_backend<R: Read, B: FrequencySketch>(r: R) -> Result<GSketch<B>, PersistError> {
    RawSnapshot::read(r)?.decode_gsketch()
}

/// Deserialize a default-backend [`GSketch`] snapshot from `r`.
pub fn read_gsketch<R: Read>(r: R) -> Result<GSketch, PersistError> {
    read_gsketch_backend(r)
}

/// Save a [`GSketch`] snapshot (any backend) to the file at `path`.
pub fn save_gsketch<P: AsRef<Path>, B: FrequencySketch>(
    path: P,
    sketch: &GSketch<B>,
) -> Result<(), PersistError> {
    write_gsketch(File::create(path)?, sketch)
}

/// Load a default-backend [`GSketch`] snapshot from the file at `path`.
pub fn load_gsketch<P: AsRef<Path>>(path: P) -> Result<GSketch, PersistError> {
    read_gsketch(File::open(path)?)
}

/// Load a [`GSketch`] snapshot with an explicit backend from `path`.
pub fn load_gsketch_backend<P: AsRef<Path>, B: FrequencySketch>(
    path: P,
) -> Result<GSketch<B>, PersistError> {
    read_gsketch_backend(File::open(path)?)
}

/// Serialize a [`GlobalSketch`] snapshot to `w`.
pub fn write_global<W: Write>(w: W, sketch: &GlobalSketch) -> Result<(), PersistError> {
    let mut out = BufWriter::new(w);
    serde_json::to_writer(
        &mut out,
        &Envelope {
            format_version: FORMAT_VERSION,
            kind: "global".to_owned(),
            sketch,
        },
    )?;
    out.flush()?;
    Ok(())
}

/// Deserialize a [`GlobalSketch`] snapshot from `r`.
pub fn read_global<R: Read>(r: R) -> Result<GlobalSketch, PersistError> {
    RawSnapshot::read(r)?.decode_global()
}

/// Save a [`GlobalSketch`] snapshot to the file at `path`.
pub fn save_global<P: AsRef<Path>>(path: P, sketch: &GlobalSketch) -> Result<(), PersistError> {
    write_global(File::create(path)?, sketch)
}

/// Load a [`GlobalSketch`] snapshot from the file at `path`.
pub fn load_global<P: AsRef<Path>>(path: P) -> Result<GlobalSketch, PersistError> {
    read_global(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeSink;
    use gstream::edge::{Edge, StreamEdge};

    fn sample_stream() -> Vec<StreamEdge> {
        (0..500u64)
            .map(|t| StreamEdge::unit(Edge::new((t % 20) as u32, 100 + (t % 7) as u32), t))
            .collect()
    }

    fn built_gsketch() -> GSketch {
        let stream = sample_stream();
        let mut g = GSketch::builder()
            .memory_bytes(1 << 14)
            .min_width(32)
            .build_from_sample(&stream)
            .unwrap();
        g.ingest(&stream);
        g
    }

    #[test]
    fn gsketch_round_trip_preserves_estimates() {
        let g = built_gsketch();
        let mut buf = Vec::new();
        write_gsketch(&mut buf, &g).unwrap();
        let back = read_gsketch(&buf[..]).unwrap();
        for t in 0..500u64 {
            let e = Edge::new((t % 20) as u32, 100 + (t % 7) as u32);
            assert_eq!(g.estimate(e), back.estimate(e));
            assert_eq!(g.route(e), back.route(e));
        }
        assert_eq!(g.num_partitions(), back.num_partitions());
        assert_eq!(g.bytes(), back.bytes());
    }

    #[test]
    fn restored_sketch_accepts_more_stream() {
        let g = built_gsketch();
        let mut buf = Vec::new();
        write_gsketch(&mut buf, &g).unwrap();
        let mut back = read_gsketch(&buf[..]).unwrap();
        let e = Edge::new(3u32, 103u32);
        let before = back.estimate(e);
        back.update(StreamEdge::weighted(e, 0, 10));
        assert_eq!(back.estimate(e), before + 10);
    }

    #[test]
    fn global_round_trip_preserves_estimates() {
        let stream = sample_stream();
        let mut g = GlobalSketch::new(1 << 14, 3, 7).unwrap();
        g.ingest(&stream);
        let mut buf = Vec::new();
        write_global(&mut buf, &g).unwrap();
        let back = read_global(&buf[..]).unwrap();
        for se in &stream {
            assert_eq!(g.estimate(se.edge), back.estimate(se.edge));
        }
    }

    #[test]
    fn version_mismatch_detected() {
        let g = built_gsketch();
        let mut buf = Vec::new();
        write_gsketch(&mut buf, &g).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text = text.replace(
            &format!("\"format_version\":{FORMAT_VERSION}"),
            "\"format_version\":999",
        );
        let err = read_gsketch(text.as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            PersistError::VersionMismatch { found: 999, .. }
        ));
    }

    #[test]
    fn kind_mismatch_detected() {
        let stream = sample_stream();
        let mut g = GlobalSketch::new(1 << 12, 3, 7).unwrap();
        g.ingest(&stream);
        let mut buf = Vec::new();
        write_global(&mut buf, &g).unwrap();
        let err = read_gsketch(&buf[..]).unwrap_err();
        // The kind tag rejects it before any body decode is attempted.
        assert!(matches!(err, PersistError::KindMismatch { .. }));
    }

    #[test]
    fn inconsistent_router_bank_pair_is_a_format_error() {
        // A hand-edited snapshot whose router addresses more slots than
        // the bank holds must fail cleanly at load, not panic at query.
        let g = built_gsketch();
        let mut buf = Vec::new();
        write_gsketch(&mut buf, &g).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let needle = "\"outlier_slot\":";
        let at = text.find(needle).unwrap() + needle.len();
        let end = at + text[at..].find([',', '}']).unwrap();
        let tampered = format!("{}99{}", &text[..at], &text[end..]);
        let err = read_gsketch(tampered.as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "got: {err}");
    }

    #[test]
    fn version_one_global_snapshots_still_load() {
        // The arena refactor bumped the envelope version for gSketch
        // bodies; the global-sketch layout is unchanged, so a v1 global
        // snapshot must keep loading.
        let stream = sample_stream();
        let mut g = GlobalSketch::new(1 << 12, 3, 7).unwrap();
        g.ingest(&stream);
        let mut buf = Vec::new();
        write_global(&mut buf, &g).unwrap();
        let text = String::from_utf8(buf).unwrap().replace(
            &format!("\"format_version\":{FORMAT_VERSION}"),
            "\"format_version\":1",
        );
        let back = read_global(text.as_bytes()).unwrap();
        for se in stream.iter().take(50) {
            assert_eq!(g.estimate(se.edge), back.estimate(se.edge));
        }
    }

    #[test]
    fn garbage_is_a_format_error() {
        let err = read_gsketch("not json at all".as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("gsketch_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        let g = built_gsketch();
        save_gsketch(&path, &g).unwrap();
        let back = load_gsketch(&path).unwrap();
        assert_eq!(
            g.estimate(Edge::new(1u32, 101u32)),
            back.estimate(Edge::new(1u32, 101u32))
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_gsketch("/nonexistent/missing.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn backend_round_trip_and_cross_backend_rejection() {
        use sketch::CountMinSketch;
        let stream = sample_stream();
        let mut g = GSketch::builder()
            .memory_bytes(1 << 14)
            .min_width(32)
            .build_from_sample_backend::<CountMinSketch>(&stream)
            .unwrap();
        g.ingest(&stream);
        let mut buf = Vec::new();
        write_gsketch(&mut buf, &g).unwrap();
        let back: GSketch<CountMinSketch> = read_gsketch_backend(&buf[..]).unwrap();
        for se in &stream {
            assert_eq!(g.estimate(se.edge), back.estimate(se.edge));
        }
        // The same snapshot refuses to decode as the arena backend: the
        // kind tag rejects it before the body is ever decoded.
        let err = read_gsketch(&buf[..]).unwrap_err();
        assert!(matches!(err, PersistError::KindMismatch { .. }));
        // The raw envelope exposes the tag for backend dispatch.
        let raw = RawSnapshot::read(&buf[..]).unwrap();
        assert_eq!(raw.kind(), "gsketch:countmin");
        assert_eq!(raw.version(), FORMAT_VERSION);
    }

    #[test]
    fn display_messages() {
        let e = PersistError::VersionMismatch {
            found: 9,
            expected: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = PersistError::KindMismatch {
            found: "x".into(),
            expected: "gsketch:cm-arena".into(),
        };
        assert!(e.to_string().contains("gsketch"));
    }
}
