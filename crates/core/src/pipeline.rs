//! The parallel sharded ingest pipeline (DESIGN.md §7).
//!
//! `ConcurrentGSketch` has accepted concurrent callers since the arena
//! refactor, but nothing in the repo actually *fanned a stream out*
//! across cores — and naive fan-out (every thread calling `update` per
//! arrival) pays the router probe, `d` hash evaluations and `d` atomic
//! RMWs for every single arrival. This module adds the missing stages
//! between a chunked [`EdgeSource`] and the shared
//! [`AtomicCmArena`](sketch::AtomicCmArena):
//!
//! 1. **Staging.** Each worker refills a private staging buffer from the
//!    shared source under one short lock (the source hands out contiguous
//!    chunks, so the lock is held for a `memcpy`, not per arrival).
//! 2. **Hot-key combining.** The worker folds its chunk through a 4-way
//!    set-associative combiner cache tagged by the raw `(src, dst)`
//!    endpoint pair (one 64-byte set per probe, heaviest-stays eviction,
//!    software-prefetched a few arrivals ahead). The Zipf head of a real
//!    graph stream hits the cache over and over, accumulating one weight
//!    instead of issuing one synopsis update per arrival; both the
//!    router probe and the 64-bit sketch-key mix happen only when an
//!    entry enters or leaves the cache, so hot edges pay them once, not
//!    once per arrival.
//! 3. **Slot sort.** Evicted and drained cache entries — now one
//!    `(slot, key, weight)` triple per distinct key per cache residency —
//!    are counting-sorted by destination slot, extending PR 2's
//!    slot-grouped batching to the concurrent path.
//! 4. **Span commit.** Each slot run is committed through
//!    [`SlotSink::commit_run`] →
//!    [`add_batch_saturating`](sketch::AtomicCmArena::add_batch_saturating):
//!    the run walks one slot's contiguous span at a time, adjacent
//!    duplicates coalesce, the per-key field fold is hoisted out of the
//!    row loop, range reduction uses precomputed fastmod constants, and
//!    the slot's total counter is contended once per run instead of once
//!    per arrival.
//!
//! Workers touch disjoint staging and cache state and commit through
//! saturating atomic adds, so the result is within saturating-add
//! semantics of a sequential ingest of the same stream — bit-identical
//! in the non-saturating regime (pinned by `backend_parity`'s parallel
//! parity proptest). Nothing about the math depends on the thread count
//! or the chunking, only on the multiset of arrivals.
//!
//! **The owner-sharded engine** ([`ShardedIngest`], DESIGN.md §11)
//! inverts the sharing story: instead of every worker committing any
//! slot through the shared atomic path, a scatter stage counting-sorts
//! each chunk by router slot and hands per-owner batches over bounded
//! SPSC queues to owning workers, each of which is the *sole writer* of
//! a contiguous slot range and commits it with plain load/add/store
//! cycles — [`ParallelIngest::new_exclusive`]'s single-worker contract,
//! generalized to N disjoint owners by the [`OwnerMap`] slot partition
//! instead of a `&mut` borrow.
//! When the map clamps to one owner the engine fuses scatter and
//! commit on the calling thread (no queue, no spawn), which is what
//! keeps `sharded/1t` ahead of `parallel/1t` rather than merely equal.
//!
//! **Worker-pool sizing.** Like every CPU-bound pool (rayon, TBB), both
//! engines treat the requested thread count as an *upper bound* and
//! clamp it to the machine's available parallelism: oversubscribing a
//! single core with N compute-bound workers buys nothing and costs
//! context switches and per-worker cache dilution. Tests that need real
//! thread interleaving regardless of the host use
//! [`oversubscribe`](ParallelIngest::oversubscribe) (mirrored on
//! [`ShardedIngest::oversubscribe`]).

use crate::concurrent::ConcurrentGSketch;
use crate::router::OwnerMap;
use crate::sink::{EdgeSink, SlotRouted};
use gstream::edge::StreamEdge;
use gstream::source::EdgeSource;
use sketch::prefetch;
use sketch::sync::spsc::SpscQueue;
// Atomics and scoped threads come through the `sync` shim seam so
// `xtask check` can run `run_slice`'s real chunk-claiming loop under
// the deterministic scheduler (DESIGN.md §10); std items in normal
// builds. `run()`'s source mutex stays `std::sync::Mutex` — blocking
// locks are opaque to the model scheduler, so only the lock-free
// `run_slice` path is the checked surface.
use sketch::sync::{thread, AtomicU64, Ordering};
use std::sync::Mutex;

/// Default arrivals per staging buffer. The combiner cache carries
/// duplicate state *across* chunks, so this only needs to amortize the
/// source lock, not maximize within-chunk duplication.
pub const DEFAULT_CHUNK: usize = 1 << 15;

/// log2 of the combiner sets per worker: 2^16 sets × 4 ways × 16 B =
/// 4 MiB per worker — sized so the Zipf head plus most of the warm tail
/// of a multi-million-arrival stream stays resident (the sweep on the
/// R-MAT traffic bench plateaus here; see `benches/parallel_ingest.rs`).
const SET_BITS: u32 = 16;

/// Commit the evicted-entry list once it reaches this length.
const EVICT_COMMIT_LEN: usize = 1 << 13;

/// How many arrivals ahead the absorb loop prefetches its combiner set.
const PREFETCH_AHEAD: usize = 12;

/// Clamp a requested worker count to the host's available parallelism —
/// the rayon-style rule every CPU-bound pool in the workspace shares
/// (ingest's [`ParallelIngest`] and [`ShardedIngest`], and the query
/// engine's [`ParallelQuery`](crate::query::ParallelQuery), including
/// its slot-routed read path). Oversubscribing a
/// single core with N compute-bound workers buys nothing and costs
/// context switches; `oversubscribe` exists so correctness tests can
/// force real thread interleaving on small machines.
pub(crate) fn clamp_workers(requested: usize, oversubscribe: bool) -> usize {
    let requested = requested.max(1);
    if oversubscribe {
        requested
    } else {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        requested.min(cores)
    }
}

/// A shard-addressable, thread-shareable sink: the consumer-side contract
/// of [`ParallelIngest`] and [`ShardedIngest`]. The routing half lives in
/// the [`SlotRouted`] supertrait (shared with the slot-routed query
/// path); this trait adds the write side. Implemented by
/// [`ConcurrentGSketch`] (routing through its read-only router into the
/// shared atomic arena); the generic parameter is what future shard
/// placements (NUMA-pinned arenas, remote shards) implement.
pub trait SlotSink: SlotRouted + Sync {
    /// Commit a run of `(key, weight)` pairs into `slot`. Callable from
    /// any thread; runs for different slots touch disjoint counter
    /// spans. Adjacent equal keys are coalesced into one counter write.
    fn commit_run(&self, slot: u32, run: &[(u64, u64)]);

    /// [`commit_run`](Self::commit_run) for a caller that is the **sole
    /// writer of `slot`** for the duration of the commit: sinks may
    /// override it with a plain-store commit that skips atomic RMW
    /// serialization. Two callers establish that contract today — a
    /// [`ParallelIngest::new_exclusive`] pipeline running one worker
    /// (sole writer of *every* slot), and a [`ShardedIngest`] owner
    /// (sole writer of its [`OwnerMap`] slot range, by the disjointness
    /// of owner ranges). The default just forwards to the shared-safe
    /// path.
    fn commit_run_exclusive(&self, slot: u32, run: &[(u64, u64)]) {
        self.commit_run(slot, run);
    }

    /// Best-effort first-touch of slots `lo..hi` (half-open) from the
    /// calling thread, so a first-touch NUMA policy places the range's
    /// counter pages on the caller's node. [`ShardedIngest`] owners call
    /// this for their slot range before absorbing arrivals; the caller
    /// must be the range's sole writer. The default is a no-op.
    fn warm_slots(&self, lo: u32, hi: u32) {
        let _ = (lo, hi);
    }
}

/// What a pipeline run absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Stream arrivals absorbed.
    pub arrivals: u64,
    /// Chunks pulled from the source across all workers.
    pub chunks: u64,
    /// Worker threads actually spawned (requested, clamped to the
    /// host's available parallelism unless oversubscription was forced).
    pub workers: usize,
}

/// One 4-way combiner set, exactly one cache line. Ways are tagged by
/// the raw `(src, dst)` endpoint pair — exact equality, no hashing —
/// and `weights[j] == 0` marks way `j` free (zero-weight arrivals are
/// identities and are dropped at the door), so a probe is one line
/// fill, four compares. The 64-bit sketch key is only derived when an
/// entry leaves the cache, i.e. once per distinct entry per residency
/// instead of once per arrival.
#[repr(align(64))]
#[derive(Clone, Copy)]
struct CacheSet {
    pairs: [u64; 4],
    slots: [u32; 4],
    weights: [u32; 4],
}

const EMPTY_SET: CacheSet = CacheSet {
    pairs: [0; 4],
    slots: [0; 4],
    weights: [0; 4],
};

/// The packed endpoint pair identifying an edge exactly.
#[inline]
fn edge_pair(se: &StreamEdge) -> u64 {
    (u64::from(se.edge.src.0) << 32) | u64::from(se.edge.dst.0)
}

/// Combiner set index for a pair: one Fibonacci multiply — the cache
/// only needs spread, not pairwise independence.
#[inline]
fn set_index(pair: u64, shift: u32) -> usize {
    // cast: u64 -> usize; `>> shift` leaves at most (64 - shift) bits,
    // the set-count bit width, so the index fits and is in range.
    ((pair ^ (pair >> 29)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize
}

/// The sketch key of a cached pair (must agree with [`Edge::key`], which
/// the query side uses).
#[inline]
fn pair_key(pair: u64) -> u64 {
    sketch::hash::combine64(pair >> 32, pair & 0xFFFF_FFFF)
}

/// Per-worker pipeline state: the combiner cache, the evicted-entry
/// staging list, and the counting-sort scratch. Private to one worker —
/// never shared, never locked.
struct Worker {
    sets: Box<[CacheSet]>,
    /// `64 - log2(sets.len())`: the set-index shift.
    shift: u32,
    /// Commit through the exclusive-writer path (see
    /// [`ParallelIngest::new_exclusive`]; only set for a sole worker).
    exclusive: bool,
    /// Evicted `(slot, pair, weight)` triples awaiting a batched commit.
    evicted: Vec<(u32, u64, u64)>,
    /// Counting-sort scratch, sized to the sink's slot count.
    counts: Vec<usize>,
    cursors: Vec<usize>,
    runs: Vec<(u64, u64)>,
}

impl Worker {
    fn new(n_slots: usize, exclusive: bool) -> Self {
        Self {
            sets: vec![EMPTY_SET; 1 << SET_BITS].into_boxed_slice(),
            shift: 64 - SET_BITS,
            exclusive,
            evicted: Vec::with_capacity(EVICT_COMMIT_LEN + DEFAULT_CHUNK),
            counts: vec![0; n_slots],
            cursors: Vec::with_capacity(n_slots),
            runs: Vec::new(),
        }
    }

    /// Fold one arrival into the combiner. Hits cost one compare-and-add
    /// in a resident line; misses route the source vertex once and
    /// displace the set's lightest way — the heaviest (hottest) entries
    /// are the ones that stay.
    #[inline]
    fn absorb<B: SlotSink>(&mut self, sink: &B, se: &StreamEdge) {
        if se.weight == 0 {
            return;
        }
        let pair = edge_pair(se);
        if se.weight > u64::from(u32::MAX) {
            // Heavier than the packed weight field: commit out-of-band.
            self.evicted
                .push((sink.slot_of(se.edge.src), pair, se.weight));
            return;
        }
        let set = &mut self.sets[set_index(pair, self.shift)];
        // Branch-free hit detection: all four ways are compared with
        // plain boolean arithmetic, leaving a single well-predicted
        // hit/miss branch instead of a data-dependent branch per way.
        let p = &set.pairs;
        let w = &set.weights;
        let hit_mask = u32::from(p[0] == pair && w[0] != 0)
            | u32::from(p[1] == pair && w[1] != 0) << 1
            | u32::from(p[2] == pair && w[2] != 0) << 2
            | u32::from(p[3] == pair && w[3] != 0) << 3;
        if hit_mask != 0 {
            let j = hit_mask.trailing_zeros() as usize;
            let sum = u64::from(set.weights[j]) + se.weight;
            if sum <= u64::from(u32::MAX) {
                set.weights[j] = sum as u32;
            } else {
                // Accumulator full: flush it and restart the count.
                self.evicted
                    .push((set.slots[j], pair, u64::from(set.weights[j])));
                set.weights[j] = se.weight as u32;
            }
            return;
        }
        // Miss: displace the lightest way (branchless min — an empty way
        // has weight 0 and always wins).
        let mut victim = 0usize;
        for j in 1..4 {
            victim = if set.weights[j] < set.weights[victim] {
                j
            } else {
                victim
            };
        }
        if set.weights[victim] != 0 {
            self.evicted.push((
                set.slots[victim],
                set.pairs[victim],
                u64::from(set.weights[victim]),
            ));
        }
        set.pairs[victim] = pair;
        set.slots[victim] = sink.slot_of(se.edge.src);
        set.weights[victim] = se.weight as u32;
    }

    /// Absorb a staged chunk with prefetch lookahead, committing the
    /// evicted list when it has accumulated a batch worth sorting.
    fn process_chunk<B: SlotSink>(&mut self, sink: &B, batch: &[StreamEdge]) {
        for (i, se) in batch.iter().enumerate() {
            let ahead = i + PREFETCH_AHEAD;
            if ahead < batch.len() {
                prefetch(&self.sets[set_index(edge_pair(&batch[ahead]), self.shift)]);
            }
            self.absorb(sink, se);
        }
        if self.evicted.len() >= EVICT_COMMIT_LEN {
            self.commit_evicted(sink);
        }
    }

    /// Counting-sort the evicted triples by slot and commit each run
    /// through the sink's span-commit.
    ///
    /// `slot_of` contractually stays below the sink's slot count (the
    /// scratch arrays' length); the scatter indices are `get`-guarded
    /// anyway so the commit span carries no panic edge in the compiled
    /// artifact (`xtask audit` — a rogue slot drops its entries rather
    /// than panicking).
    fn commit_evicted<B: SlotSink>(&mut self, sink: &B) {
        if self.evicted.is_empty() {
            return;
        }
        self.counts.fill(0);
        for &(slot, _, _) in &self.evicted {
            if let Some(c) = self.counts.get_mut(slot as usize) {
                *c += 1;
            }
        }
        self.cursors.clear();
        let mut acc = 0usize;
        for &c in &self.counts {
            self.cursors.push(acc);
            acc += c;
        }
        self.runs.clear();
        self.runs.resize(self.evicted.len(), (0, 0));
        for &(slot, pair, weight) in &self.evicted {
            let Some(at) = self.cursors.get_mut(slot as usize) else {
                continue;
            };
            // The sketch key is derived here — once per committed entry,
            // not once per arrival.
            if let Some(r) = self.runs.get_mut(*at) {
                *r = (pair_key(pair), weight);
            }
            *at += 1;
        }
        let mut start = 0usize;
        for (slot, &end) in self.cursors.iter().enumerate() {
            if end > start {
                let Some(run) = self.runs.get(start..end) else {
                    break;
                };
                if self.exclusive {
                    sink.commit_run_exclusive(slot as u32, run);
                } else {
                    sink.commit_run(slot as u32, run);
                }
            }
            start = end;
        }
        self.evicted.clear();
    }

    /// Evict every live cache entry and commit everything: after this,
    /// all absorbed arrivals are visible in the sink.
    fn drain<B: SlotSink>(&mut self, sink: &B) {
        for set in self.sets.iter_mut() {
            for j in 0..4 {
                if set.weights[j] != 0 {
                    self.evicted
                        .push((set.slots[j], set.pairs[j], u64::from(set.weights[j])));
                    set.weights[j] = 0;
                }
            }
        }
        self.commit_evicted(sink);
    }
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("cache_entries", &(self.sets.len() * 4))
            .field("evicted", &self.evicted.len())
            .finish_non_exhaustive()
    }
}

/// The parallel sharded ingest pipeline over any [`SlotSink`] `B`
/// (by default the [`ConcurrentGSketch`] atomic arena).
///
/// Two modes share one staging → combine → slot-sort → span-commit path:
///
/// * **Pull** — [`run`](Self::run) drains a chunked [`EdgeSource`] from
///   the worker pool (scoped threads; no detached state survives the
///   call, and every worker's cache is drained before it returns).
/// * **Push** — the pipeline is itself an [`EdgeSink`]: `update` /
///   `ingest_batch` feed the calling thread's worker state, and
///   [`flush`](EdgeSink::flush) drains it. Absorbed-but-unflushed
///   arrivals are **not** guaranteed visible to queries until the flush.
#[derive(Debug)]
pub struct ParallelIngest<'s, B: SlotSink = ConcurrentGSketch> {
    sink: &'s B,
    threads: usize,
    chunk_capacity: usize,
    oversubscribe: bool,
    exclusive: bool,
    /// Worker state for the push-mode surface (lazily created: most
    /// pull-mode pipelines never touch it).
    local: Option<Box<Worker>>,
    /// Arrivals accepted through the push surface since the last drain.
    staged_arrivals: usize,
}

impl<'s, B: SlotSink> ParallelIngest<'s, B> {
    /// A pipeline committing into `sink` from up to `threads` workers
    /// (clamped to at least 1 and, by default, to the host's available
    /// parallelism), with the default staging capacity.
    pub fn new(sink: &'s B, threads: usize) -> Self {
        Self {
            sink,
            threads: threads.max(1),
            chunk_capacity: DEFAULT_CHUNK,
            oversubscribe: false,
            exclusive: false,
            local: None,
            staged_arrivals: 0,
        }
    }

    /// Like [`new`](Self::new), but taking the sink by exclusive borrow.
    /// The mutable borrow is held for the pipeline's whole lifetime, so
    /// the borrow checker proves no other thread can update the sink
    /// while this pipeline exists — which lets a sole worker commit
    /// through [`SlotSink::commit_run_exclusive`] (plain stores instead
    /// of lock-prefixed RMWs). Multi-worker runs still use the shared
    /// atomic path, since the workers race each other.
    pub fn new_exclusive(sink: &'s mut B, threads: usize) -> Self {
        let mut pipe = Self::new(sink, threads);
        pipe.exclusive = true;
        pipe
    }

    /// Override the arrivals staged per source refill (clamped to at
    /// least 1). Larger chunks amortize the source lock further; smaller
    /// chunks bound staging latency.
    #[must_use]
    pub fn chunk_capacity(mut self, capacity: usize) -> Self {
        self.chunk_capacity = capacity.max(1);
        self
    }

    /// Spawn exactly the requested thread count even beyond the host's
    /// available parallelism. Oversubscription never helps a CPU-bound
    /// pipeline — this exists so correctness tests can force real thread
    /// interleaving on small machines.
    #[must_use]
    pub fn oversubscribe(mut self, on: bool) -> Self {
        self.oversubscribe = on;
        self
    }

    /// Requested worker threads (upper bound for [`run`](Self::run)).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Worker threads [`run`](Self::run) will actually spawn.
    pub fn effective_threads(&self) -> usize {
        clamp_workers(self.threads, self.oversubscribe)
    }

    /// Arrivals accepted through the push-mode surface that may not yet
    /// be visible to queries (combined or staged, not yet drained).
    pub fn staged(&self) -> usize {
        self.staged_arrivals
    }

    fn local_worker(&mut self) -> &mut Worker {
        let n_slots = self.sink.num_slots();
        let exclusive = self.exclusive;
        self.local
            .get_or_insert_with(|| Box::new(Worker::new(n_slots, exclusive)))
    }

    /// [`run`](Self::run) specialized to an in-memory stream: workers
    /// claim contiguous spans of the slice through one atomic cursor, so
    /// there is no source lock and no staging copy at all — each chunk
    /// is processed in place. This is the fastest way to replay a
    /// materialized stream; use [`run`](Self::run) for generators and
    /// file readers.
    pub fn run_slice(&mut self, stream: &[StreamEdge]) -> IngestReport {
        self.flush();
        let workers = self.effective_threads();
        let chunks = AtomicU64::new(0);
        let cursor = AtomicU64::new(0);
        let sink = self.sink;
        let cap = self.chunk_capacity;
        let n_slots = sink.num_slots();
        let exclusive = self.exclusive && workers == 1;
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut worker = Worker::new(n_slots, exclusive);
                    loop {
                        // ordering: Relaxed — the single-location RMW
                        // hands out distinct spans whatever the ordering;
                        // nothing else rides the cursor. xtask-checked.
                        // cast: u64 -> usize; claims are bounded by
                        // stream.len() plus one chunk per worker, and
                        // oversized claims exit on the next line.
                        let start = cursor.fetch_add(cap as u64, Ordering::Relaxed) as usize;
                        if start >= stream.len() {
                            break;
                        }
                        let end = (start + cap).min(stream.len());
                        // ordering: Relaxed — statistics counter, read
                        // via `into_inner()` after the scope join below,
                        // which already gives happens-before.
                        chunks.fetch_add(1, Ordering::Relaxed);
                        worker.process_chunk(sink, &stream[start..end]);
                    }
                    worker.drain(sink);
                });
            }
        });
        IngestReport {
            arrivals: stream.len() as u64,
            chunks: chunks.into_inner(),
            workers,
        }
    }

    /// Drain `source` to exhaustion across the worker pool and return
    /// what was absorbed. Any arrivals staged through the push-mode
    /// [`EdgeSink`] surface are committed first, so the two modes
    /// compose.
    ///
    /// The source is behind one mutex, held per chunk rather than per
    /// arrival. How much work that lock covers is the source's
    /// `fill_chunk`: a `memcpy` for slices, one generator pass for the
    /// synthetic models, but a full text-parse for
    /// [`StreamFileSource`](gstream::StreamFileSource) — a
    /// parse-dominated source serializes the workers on the lock, so
    /// for maximum multi-core throughput pre-materialize the stream and
    /// use [`run_slice`](Self::run_slice).
    pub fn run<S: EdgeSource + Send>(&mut self, source: &mut S) -> IngestReport {
        self.flush();
        let workers = self.effective_threads();
        let arrivals = AtomicU64::new(0);
        let chunks = AtomicU64::new(0);
        let shared = Mutex::new(source);
        let sink = self.sink;
        let cap = self.chunk_capacity;
        let n_slots = sink.num_slots();
        // Exclusive commits need a sole writer: the exclusive borrow
        // rules out external writers, and a single worker rules out
        // sibling workers.
        let exclusive = self.exclusive && workers == 1;
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut buf: Vec<StreamEdge> = Vec::with_capacity(cap);
                    let mut worker = Worker::new(n_slots, exclusive);
                    loop {
                        let n = shared
                            .lock()
                            // lint: allow(no-panics) — a worker panicked
                            // mid-chunk; the stream is torn either way,
                            // so poisoning is unrecoverable here.
                            .expect("ingest source lock poisoned")
                            .fill_chunk(&mut buf, cap);
                        if n == 0 {
                            break;
                        }
                        // ordering: Relaxed — statistics counters, read
                        // via `into_inner()` after the scope join below
                        // (join gives happens-before; see DESIGN.md §10).
                        arrivals.fetch_add(n as u64, Ordering::Relaxed);
                        chunks.fetch_add(1, Ordering::Relaxed);
                        worker.process_chunk(sink, &buf);
                    }
                    worker.drain(sink);
                });
            }
        });
        IngestReport {
            arrivals: arrivals.into_inner(),
            chunks: chunks.into_inner(),
            workers,
        }
    }
}

/// Batches the scatter stage hands an owner: `(pair, weight)` entries
/// whose router slot lies inside the owner's range. An **empty** batch
/// is the end-of-stream sentinel. Slots are *not* shipped: the owner
/// re-derives them from the shared read-only router at commit time,
/// batched (see [`OwnerWorker::commit_evicted`]), which keeps the
/// handoff at 16 bytes per entry and the absorb loop free of routing.
type OwnerBatch = Vec<(u64, u64)>;

/// Batches in flight per owner queue. Deep enough to keep an owner fed
/// across scatter's next chunk; shallow enough that backpressure kicks
/// in before batches pile up beyond the cache.
const OWNER_QUEUE_DEPTH: usize = 8;

/// Spin until `item` fits in the bounded queue (the scatter side of the
/// backpressure protocol; yields so an oversubscribed host makes
/// progress).
fn push_spin<T>(queue: &SpscQueue<T>, mut item: T) {
    loop {
        match queue.try_push(item) {
            Ok(()) => return,
            Err(back) => {
                item = back;
                std::thread::yield_now();
            }
        }
    }
}

/// One 4-way owner-combiner set, exactly one cache line: four pair tags
/// and four **64-bit** accumulators. Dropping the per-way slot (the
/// owner re-routes at commit time, batched) frees the 16 bytes the
/// 32-bit [`CacheSet`] spends on slots, which the weights absorb — so
/// the hit path is a plain `saturating_add` with **no overflow flush
/// and no out-of-band heavy-weight path**: saturating addition is
/// associative, so pre-summing arrivals in a u64 accumulator commits
/// the same counter values as adding them one by one.
#[repr(align(64))]
#[derive(Clone, Copy)]
struct OwnerSet {
    pairs: [u64; 4],
    weights: [u64; 4],
}

const EMPTY_OWNER_SET: OwnerSet = OwnerSet {
    pairs: [0; 4],
    weights: [0; 4],
};

/// Commit the owner's evicted-entry list once it reaches this length.
/// Larger than the shared pipeline's [`EVICT_COMMIT_LEN`]: the owner's
/// commit counting-sorts by slot, and longer batches mean longer
/// per-slot runs — better span-walk amortization per
/// [`SlotSink::commit_run_exclusive`] call (measured on the ingest
/// bench: 32 Ki batches shave several percent over 8 Ki).
const SHARD_COMMIT_LEN: usize = 1 << 15;

/// Per-owner combiner state for [`ShardedIngest`]: a slot-less 4-way
/// cache ([`OwnerSet`]) plus the deferred-routing commit scratch.
/// Private to one owner thread — never shared, never locked.
///
/// The contrast with the shared pipeline's [`Worker`] is *when the
/// router runs*: `Worker` routes every combiner miss inline, threading
/// a hash-map probe through the hot loop; `OwnerWorker` absorbs raw
/// `(pair, weight)` entries and routes only at commit time, in one
/// batched pass over the evicted list (one probe per *committed* entry,
/// with the router's table hot in cache for the whole pass).
struct OwnerWorker {
    sets: Box<[OwnerSet]>,
    /// `64 - log2(sets.len())`: the set-index shift.
    shift: u32,
    /// Evicted `(pair, weight)` entries awaiting a batched commit.
    evicted: Vec<(u64, u64)>,
    /// Slot of each evicted entry, filled by the commit's routing pass.
    slots: Vec<u32>,
    /// Counting-sort scratch, sized to the sink's slot count.
    counts: Vec<usize>,
    cursors: Vec<usize>,
    runs: Vec<(u64, u64)>,
}

impl OwnerWorker {
    fn new(n_slots: usize) -> Self {
        Self {
            sets: vec![EMPTY_OWNER_SET; 1 << SET_BITS].into_boxed_slice(),
            shift: 64 - SET_BITS,
            evicted: Vec::with_capacity(SHARD_COMMIT_LEN + DEFAULT_CHUNK),
            slots: Vec::with_capacity(SHARD_COMMIT_LEN + DEFAULT_CHUNK),
            counts: vec![0; n_slots],
            cursors: Vec::with_capacity(n_slots),
            runs: Vec::new(),
        }
    }

    /// Absorb one raw stream chunk with prefetch lookahead (the fused
    /// single-owner path: this thread is scatter and owner at once, so
    /// arrivals come straight from the stream).
    #[inline]
    fn absorb_chunk(&mut self, chunk: &[StreamEdge]) {
        // Split borrows once: `sets` and `evicted` are provably disjoint
        // buffers inside the loop, so the eviction push can't force the
        // set line to be re-read.
        let sets = &mut self.sets;
        let evicted = &mut self.evicted;
        let shift = self.shift;
        for (i, se) in chunk.iter().enumerate() {
            if let Some(ahead) = chunk.get(i + PREFETCH_AHEAD) {
                prefetch(&sets[set_index(edge_pair(ahead), shift)]);
            }
            if se.weight == 0 {
                continue;
            }
            absorb_owner(sets, shift, evicted, edge_pair(se), se.weight);
        }
    }

    /// Absorb one scattered owner batch with prefetch lookahead (the
    /// owner-thread path; scatter already dropped zero weights).
    #[inline]
    fn absorb_batch(&mut self, batch: &[(u64, u64)]) {
        let sets = &mut self.sets;
        let evicted = &mut self.evicted;
        let shift = self.shift;
        for (i, &(pair, weight)) in batch.iter().enumerate() {
            if let Some(&(ahead, _)) = batch.get(i + PREFETCH_AHEAD) {
                prefetch(&sets[set_index(ahead, shift)]);
            }
            absorb_owner(sets, shift, evicted, pair, weight);
        }
    }

    /// Route, counting-sort and commit the evicted list: one batched
    /// routing pass fills `slots`, then each slot run goes through the
    /// sink's exclusive span-commit (sound: this owner is the sole
    /// writer of every slot its pairs route to).
    ///
    /// `slot_of` contractually stays below the sink's slot count (the
    /// scratch arrays' length); the scatter indices are `get`-guarded
    /// anyway so the commit span carries no panic edge in the compiled
    /// artifact (`xtask audit` — a rogue slot drops its entries rather
    /// than panicking).
    // audit: kernel(bounds-free)
    fn commit_evicted<B: SlotSink>(&mut self, sink: &B) {
        // Destructure into disjoint field borrows so the scratch-array
        // writes below can't be assumed to alias each other.
        let Self {
            evicted,
            slots,
            counts,
            cursors,
            runs,
            ..
        } = self;
        if evicted.is_empty() {
            return;
        }
        counts.fill(0);
        slots.clear();
        for &(pair, _) in evicted.iter() {
            // cast: u64 -> u32; the high half of the packed pair is the
            // source vertex id, which is 32 bits by construction.
            let slot = sink.slot_of(gstream::vertex::VertexId((pair >> 32) as u32));
            slots.push(slot);
            if let Some(c) = counts.get_mut(slot as usize) {
                *c += 1;
            }
        }
        cursors.clear();
        let mut acc = 0usize;
        for &c in counts.iter() {
            cursors.push(acc);
            acc += c;
        }
        runs.clear();
        runs.resize(evicted.len(), (0, 0));
        for (&(pair, weight), &slot) in evicted.iter().zip(slots.iter()) {
            let Some(at) = cursors.get_mut(slot as usize) else {
                continue;
            };
            // The sketch key is derived here — once per committed entry,
            // not once per arrival.
            if let Some(r) = runs.get_mut(*at) {
                *r = (pair_key(pair), weight);
            }
            *at += 1;
        }
        let mut start = 0usize;
        for (slot, &end) in cursors.iter().enumerate() {
            if end > start {
                let Some(run) = runs.get(start..end) else {
                    break;
                };
                // cast: usize -> u32; slot indices are bounded by the
                // sink's slot count, which fits u32 (slot ids are u32).
                sink.commit_run_exclusive(slot as u32, run);
            }
            start = end;
        }
        evicted.clear();
    }

    /// Evict every live cache entry and commit everything: after this,
    /// all absorbed arrivals are visible in the sink.
    // audit: kernel(bounds-free)
    fn drain<B: SlotSink>(&mut self, sink: &B) {
        let sets = &mut self.sets;
        let evicted = &mut self.evicted;
        for set in sets.iter_mut() {
            for j in 0..4 {
                if set.weights[j] != 0 {
                    evicted.push((set.pairs[j], set.weights[j]));
                    set.weights[j] = 0;
                }
            }
        }
        self.commit_evicted(sink);
    }
}

/// Fold one (non-zero-weight) arrival into an owner combiner. Hits
/// saturating-add into the resident line; misses displace the set's
/// lightest way — the heaviest (hottest) entries are the ones that
/// stay. No routing happens here; `sets` and `evicted` are passed as
/// separate borrows so the optimizer knows they don't alias.
#[inline]
fn absorb_owner(
    sets: &mut [OwnerSet],
    shift: u32,
    evicted: &mut Vec<(u64, u64)>,
    pair: u64,
    weight: u64,
) {
    let set = &mut sets[set_index(pair, shift)];
    let p = &set.pairs;
    let w = &set.weights;
    let hit_mask = u32::from(p[0] == pair && w[0] != 0)
        | u32::from(p[1] == pair && w[1] != 0) << 1
        | u32::from(p[2] == pair && w[2] != 0) << 2
        | u32::from(p[3] == pair && w[3] != 0) << 3;
    if hit_mask != 0 {
        let j = hit_mask.trailing_zeros() as usize;
        set.weights[j] = set.weights[j].saturating_add(weight);
        return;
    }
    let mut victim = 0usize;
    for j in 1..4 {
        victim = if set.weights[j] < set.weights[victim] {
            j
        } else {
            victim
        };
    }
    if set.weights[victim] != 0 {
        evicted.push((set.pairs[victim], set.weights[victim]));
    }
    set.pairs[victim] = pair;
    set.weights[victim] = weight;
}

impl std::fmt::Debug for OwnerWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OwnerWorker")
            .field("cache_entries", &(self.sets.len() * 4))
            .field("evicted", &self.evicted.len())
            .finish_non_exhaustive()
    }
}

/// The owner-sharded ingest engine (DESIGN.md §11): a scatter stage on
/// the calling thread routes each arrival once and hands per-owner
/// `(pair, weight)` batches over bounded SPSC queues to owning workers.
/// Each owner holds a **contiguous** slot range of the [`OwnerMap`] — a
/// contiguous slice of the arena slab — combines locally through its
/// own slot-less 4-way cache (`OwnerWorker`), and commits with
/// [`SlotSink::commit_run_exclusive`] plain stores: the sole-writer
/// path [`ParallelIngest::new_exclusive`] grants one worker is
/// generalized to N disjoint slice owners, so the owner commit path has
/// **no atomic RMWs at any thread count**. Owners first-touch their
/// slice before absorbing ([`SlotSink::warm_slots`]), which a NUMA
/// first-touch policy turns into local placement for free.
///
/// Like the exclusive pipeline, construction takes the sink by `&mut`:
/// the borrow held for the engine's lifetime is the proof no outside
/// writer exists, and the ownership map's disjoint ranges are the proof
/// the owners don't race each other (the `sharded-ownership-race`
/// harness demonstrates exactly what a violated map would lose).
///
/// With one effective owner there is no handoff at all: no scatter
/// pass, no queue, **no spawned thread** — the calling thread is the
/// owner, absorbing the stream in place and committing exclusively.
/// Skipping the spawn matters more than it looks: `parallel/1t` runs
/// its sole worker on a scoped thread while the caller blocks in the
/// scope join, and the fused path's calling-thread loop plus the
/// `OwnerWorker` absorb/commit discipline measure ≥ 1.15× over it on
/// the single-core bench host — this is the `sharded/1t` configuration
/// the ingest bench records against `parallel/1t`.
#[derive(Debug)]
pub struct ShardedIngest<'s, B: SlotSink = ConcurrentGSketch> {
    sink: &'s B,
    owners: usize,
    chunk_capacity: usize,
    oversubscribe: bool,
}

impl<'s, B: SlotSink> ShardedIngest<'s, B> {
    /// An engine committing into `sink` from up to `owners` owning
    /// workers (clamped to the host's available parallelism and to the
    /// sink's slot count — an owner without slots would idle). The
    /// exclusive borrow is held for the engine's lifetime; see the type
    /// docs.
    pub fn new(sink: &'s mut B, owners: usize) -> Self {
        Self {
            sink,
            owners: owners.max(1),
            chunk_capacity: DEFAULT_CHUNK,
            oversubscribe: false,
        }
    }

    /// Override the arrivals scattered per chunk (clamped to at least 1).
    #[must_use]
    pub fn chunk_capacity(mut self, capacity: usize) -> Self {
        self.chunk_capacity = capacity.max(1);
        self
    }

    /// Spawn exactly the requested owner count even beyond the host's
    /// available parallelism (correctness tests on small machines; see
    /// [`ParallelIngest::oversubscribe`]).
    #[must_use]
    pub fn oversubscribe(mut self, on: bool) -> Self {
        self.oversubscribe = on;
        self
    }

    /// Requested owner count (upper bound).
    pub fn owners(&self) -> usize {
        self.owners
    }

    /// The ownership map a run will use: requested owners, clamped to
    /// the host (unless oversubscribed) and to the slot count.
    pub fn owner_map(&self) -> OwnerMap {
        OwnerMap::new(
            self.sink.num_slots(),
            clamp_workers(self.owners, self.oversubscribe),
        )
    }

    /// Owner threads a run will actually use.
    pub fn effective_owners(&self) -> usize {
        self.owner_map().owners()
    }

    /// Ingest a materialized stream and return what was absorbed
    /// (`workers` reports the effective owner count). For a
    /// generator-backed source, materialize the stream first — scatter
    /// reads it exactly once, in order.
    pub fn run_slice(&mut self, stream: &[StreamEdge]) -> IngestReport {
        let sink = self.sink;
        let n_slots = sink.num_slots();
        let map = self.owner_map();
        let owners = map.owners();
        let cap = self.chunk_capacity;
        let mut chunks = 0u64;
        if owners == 1 {
            // Fused path: the calling thread is the sole owner — no
            // scatter pass, no queue, no spawn (see the type docs).
            let mut worker = OwnerWorker::new(n_slots);
            for chunk in stream.chunks(cap) {
                chunks += 1;
                worker.absorb_chunk(chunk);
                if worker.evicted.len() >= SHARD_COMMIT_LEN {
                    worker.commit_evicted(sink);
                }
            }
            worker.drain(sink);
            return IngestReport {
                arrivals: stream.len() as u64,
                chunks,
                workers: 1,
            };
        }
        let queues: Vec<SpscQueue<OwnerBatch>> = (0..owners)
            .map(|_| SpscQueue::with_capacity(OWNER_QUEUE_DEPTH))
            .collect();
        thread::scope(|scope| {
            for (w, queue) in queues.iter().enumerate() {
                // cast: usize -> u32; owner ids are < owners <= n_slots,
                // which fits u32 (slot ids are u32).
                let (lo, hi) = map.slot_range(w as u32);
                scope.spawn(move || {
                    sink.warm_slots(lo, hi);
                    let mut worker = OwnerWorker::new(n_slots);
                    loop {
                        match queue.try_pop() {
                            Some(batch) => {
                                if batch.is_empty() {
                                    break;
                                }
                                worker.absorb_batch(&batch);
                                if worker.evicted.len() >= SHARD_COMMIT_LEN {
                                    worker.commit_evicted(sink);
                                }
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                    worker.drain(sink);
                });
            }
            // Scatter runs here, on the calling thread: the single
            // producer of every owner queue. Each arrival is routed
            // once, to pick its slot's owner; the slot itself stays
            // behind (owners re-route at commit time, batched).
            let mut batches: Vec<OwnerBatch> = vec![OwnerBatch::new(); owners];
            for chunk in stream.chunks(cap) {
                chunks += 1;
                for se in chunk {
                    if se.weight == 0 {
                        continue;
                    }
                    let slot = sink.slot_of(se.edge.src);
                    // cast: u32 -> usize is widening on every supported
                    // target; owner ids are < owners = batches.len().
                    batches[map.owner_of(slot) as usize].push((edge_pair(se), se.weight));
                }
                for (w, batch) in batches.iter_mut().enumerate() {
                    if !batch.is_empty() {
                        push_spin(&queues[w], std::mem::take(batch));
                    }
                }
            }
            for queue in &queues {
                push_spin(queue, OwnerBatch::new());
            }
        });
        IngestReport {
            arrivals: stream.len() as u64,
            chunks,
            workers: owners,
        }
    }
}

impl<B: SlotSink> EdgeSink for ParallelIngest<'_, B> {
    fn update(&mut self, se: StreamEdge) {
        let sink = self.sink;
        let w = self.local_worker();
        w.absorb(sink, &se);
        if w.evicted.len() >= EVICT_COMMIT_LEN {
            w.commit_evicted(sink);
        }
        self.staged_arrivals += 1;
    }

    fn ingest_batch(&mut self, batch: &[StreamEdge]) {
        let sink = self.sink;
        let w = self.local_worker();
        w.process_chunk(sink, batch);
        self.staged_arrivals += batch.len();
    }

    fn flush(&mut self) {
        let sink = self.sink;
        if let Some(w) = self.local.as_mut() {
            w.drain(sink);
        }
        self.staged_arrivals = 0;
    }
}

impl<B: SlotSink> Drop for ParallelIngest<'_, B> {
    /// Arrivals accepted by a sink must not be lost: a pipeline dropped
    /// with staged arrivals commits them, exactly as a final flush.
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsketch::GSketch;
    use gstream::edge::Edge;
    use gstream::SliceSource;

    fn skewed_stream(n: u64) -> Vec<StreamEdge> {
        // A Zipf-ish head plus a long tail, so the combiner cache sees
        // both hits and evictions.
        (0..n)
            .map(|t| {
                let src = if t % 3 == 0 { 1 } else { (t % 97) as u32 };
                StreamEdge::unit(Edge::new(src, (t % 11) as u32 + 100), t)
            })
            .collect()
    }

    fn build(stream: &[StreamEdge]) -> ConcurrentGSketch {
        let g = GSketch::builder()
            .memory_bytes(1 << 16)
            .min_width(32)
            .seed(3)
            .build_from_sample(&stream[..stream.len() / 4])
            .unwrap();
        ConcurrentGSketch::from_gsketch(g)
    }

    #[test]
    fn pull_mode_absorbs_everything() {
        let stream = skewed_stream(10_000);
        let c = build(&stream);
        let report = ParallelIngest::new(&c, 4)
            .chunk_capacity(512)
            .oversubscribe(true)
            .run(&mut SliceSource::new(&stream));
        assert_eq!(report.arrivals, 10_000);
        assert_eq!(report.workers, 4);
        assert!(report.chunks >= 10_000 / 512);
        assert_eq!(c.total_weight(), 10_000);
    }

    #[test]
    fn pull_mode_matches_sequential_estimates() {
        let stream = skewed_stream(20_000);
        let sample = &stream[..2_000];
        let build_seq = || {
            GSketch::builder()
                .memory_bytes(1 << 16)
                .min_width(32)
                .seed(7)
                .build_from_sample(sample)
                .unwrap()
        };
        let mut serial = build_seq();
        serial.ingest(&stream);

        let c = ConcurrentGSketch::from_gsketch(build_seq());
        ParallelIngest::new(&c, 8)
            .chunk_capacity(1 << 10)
            .oversubscribe(true)
            .run(&mut SliceSource::new(&stream));
        let parallel = c.into_gsketch();
        for se in &stream {
            assert_eq!(parallel.estimate(se.edge), serial.estimate(se.edge));
        }
        assert_eq!(parallel.total_weight(), serial.total_weight());
    }

    #[test]
    fn push_mode_stages_until_flush() {
        let stream = skewed_stream(100);
        let c = build(&stream);
        let mut pipe = ParallelIngest::new(&c, 2);
        for se in &stream {
            pipe.update(*se);
        }
        // Everything fits in the combiner cache: nothing committed yet.
        assert_eq!(pipe.staged(), 100);
        assert_eq!(c.total_weight(), 0);
        pipe.flush();
        assert_eq!(pipe.staged(), 0);
        assert_eq!(c.total_weight(), 100);
    }

    #[test]
    fn drop_commits_staged_arrivals() {
        let stream = skewed_stream(10);
        let c = build(&stream);
        {
            let mut pipe = ParallelIngest::new(&c, 1);
            pipe.ingest_batch(&stream);
            assert_eq!(c.total_weight(), 0);
        }
        assert_eq!(c.total_weight(), 10);
    }

    #[test]
    fn run_flushes_prior_staging_first() {
        let stream = skewed_stream(1_000);
        let c = build(&stream);
        let mut pipe = ParallelIngest::new(&c, 2);
        pipe.ingest_batch(&stream[..100]);
        let report = pipe.run(&mut SliceSource::new(&stream[100..]));
        assert_eq!(report.arrivals, 900);
        assert_eq!(c.total_weight(), 1_000);
    }

    #[test]
    fn push_mode_matches_sequential_estimates() {
        let stream = skewed_stream(5_000);
        let sample = &stream[..500];
        let build_seq = || {
            GSketch::builder()
                .memory_bytes(1 << 15)
                .min_width(16)
                .seed(11)
                .build_from_sample(sample)
                .unwrap()
        };
        let mut serial = build_seq();
        serial.ingest(&stream);

        let c = ConcurrentGSketch::from_gsketch(build_seq());
        let mut pipe = ParallelIngest::new(&c, 1);
        pipe.ingest(&stream);
        drop(pipe);
        let pushed = c.into_gsketch();
        for se in &stream {
            assert_eq!(pushed.estimate(se.edge), serial.estimate(se.edge));
        }
    }

    #[test]
    fn weighted_and_zero_weight_arrivals_handled() {
        let stream = skewed_stream(200);
        let c = build(&stream);
        let mut pipe = ParallelIngest::new(&c, 1);
        let e = stream[0].edge;
        // Zero-weight arrivals are identities.
        pipe.update(StreamEdge::weighted(e, 0, 0));
        // A weight beyond the packed u32 accumulator goes out-of-band.
        pipe.update(StreamEdge::weighted(e, 0, u64::from(u32::MAX) + 5));
        // Repeated arrivals that overflow the accumulator flush mid-way.
        pipe.update(StreamEdge::weighted(e, 0, u64::from(u32::MAX)));
        pipe.update(StreamEdge::weighted(e, 0, 3));
        pipe.flush();
        let total = u64::from(u32::MAX) + 5 + u64::from(u32::MAX) + 3;
        assert_eq!(c.total_weight(), total);
        assert!(c.estimate(e) >= total);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let stream = skewed_stream(10);
        let c = build(&stream);
        let mut pipe = ParallelIngest::new(&c, 0);
        assert_eq!(pipe.threads(), 1);
        assert!(pipe.effective_threads() >= 1);
        pipe.run(&mut SliceSource::new(&stream));
        assert_eq!(c.total_weight(), 10);
    }

    /// The fused single-owner path (calling thread, no scatter, no
    /// queue) commits exactly what the sequential ingest does.
    #[test]
    fn sharded_single_owner_matches_sequential() {
        let stream = skewed_stream(20_000);
        let sample = &stream[..2_000];
        let build_seq = || {
            GSketch::builder()
                .memory_bytes(1 << 16)
                .min_width(32)
                .seed(7)
                .build_from_sample(sample)
                .unwrap()
        };
        let mut serial = build_seq();
        serial.ingest(&stream);

        let mut c = ConcurrentGSketch::from_gsketch(build_seq());
        let report = ShardedIngest::new(&mut c, 1)
            .chunk_capacity(1 << 10)
            .run_slice(&stream);
        assert_eq!(report.arrivals, 20_000);
        assert_eq!(report.workers, 1);
        assert!(report.chunks >= 20_000 / (1 << 10));
        let sharded = c.into_gsketch();
        for se in &stream {
            assert_eq!(sharded.estimate(se.edge), serial.estimate(se.edge));
        }
        assert_eq!(sharded.total_weight(), serial.total_weight());
    }

    /// Multi-owner runs (scatter → SPSC handoff → exclusive owner
    /// commits) stay bit-identical to sequential ingest for any owner
    /// count, including more owners than the host has cores.
    #[test]
    fn sharded_multi_owner_matches_sequential() {
        let stream = skewed_stream(20_000);
        let sample = &stream[..2_000];
        let build_seq = || {
            GSketch::builder()
                .memory_bytes(1 << 16)
                .min_width(32)
                .seed(7)
                .build_from_sample(sample)
                .unwrap()
        };
        let mut serial = build_seq();
        serial.ingest(&stream);

        for owners in [2usize, 4, 7] {
            let mut c = ConcurrentGSketch::from_gsketch(build_seq());
            let engine = ShardedIngest::new(&mut c, owners).oversubscribe(true);
            assert_eq!(engine.owners(), owners);
            let report = engine.chunk_capacity(1 << 9).run_slice(&stream);
            assert_eq!(report.arrivals, 20_000);
            assert!(report.workers >= 2, "{owners} owners clamped to one");
            let sharded = c.into_gsketch();
            for se in &stream {
                assert_eq!(
                    sharded.estimate(se.edge),
                    serial.estimate(se.edge),
                    "{owners} owners"
                );
            }
            assert_eq!(sharded.total_weight(), serial.total_weight());
        }
    }

    /// Requesting more owners than the sink has slots clamps to the
    /// slot count; zero owners clamps to one; zero-weight arrivals are
    /// identities; saturating weights commit exactly like the
    /// sequential saturating path.
    #[test]
    fn sharded_edge_cases_match_sequential() {
        let stream = skewed_stream(500);
        let e = stream[0].edge;
        let mut spiced = stream.clone();
        spiced.push(StreamEdge::weighted(e, 500, 0)); // identity
        spiced.push(StreamEdge::weighted(e, 501, u64::MAX / 2));
        spiced.push(StreamEdge::weighted(e, 502, u64::MAX / 2)); // saturates
        let sample = &stream[..100];
        let build_seq = || {
            GSketch::builder()
                .memory_bytes(1 << 15)
                .min_width(16)
                .seed(5)
                .build_from_sample(sample)
                .unwrap()
        };
        let mut serial = build_seq();
        serial.ingest(&spiced);

        let mut c = ConcurrentGSketch::from_gsketch(build_seq());
        let mut engine = ShardedIngest::new(&mut c, 0);
        assert_eq!(engine.owners(), 1);
        engine.run_slice(&spiced);
        let sharded = c.into_gsketch();
        for se in &spiced {
            assert_eq!(sharded.estimate(se.edge), serial.estimate(se.edge));
        }

        let mut c2 = ConcurrentGSketch::from_gsketch(build_seq());
        let engine = ShardedIngest::new(&mut c2, usize::MAX).oversubscribe(true);
        let n_slots = engine.owner_map().num_slots();
        assert!(engine.effective_owners() <= n_slots);
    }
}
