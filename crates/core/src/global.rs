//! The Global Sketch baseline (§3.2): one CountMin sketch for the whole
//! graph stream, blind to graph structure. Every experiment compares
//! gSketch against this.

use gstream::edge::{Edge, StreamEdge};
use serde::{Deserialize, Serialize};
use sketch::{CountMinSketch, SketchError};

/// A single global CountMin sketch over edge keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalSketch {
    inner: CountMinSketch,
}

impl GlobalSketch {
    /// Build from a byte budget and depth, mirroring
    /// [`crate::GSketch`]'s accounting so comparisons are fair: the full
    /// budget becomes one `width × depth` counter matrix.
    pub fn new(memory_bytes: usize, depth: usize, seed: u64) -> Result<Self, SketchError> {
        let total_cells = CountMinSketch::cells_for_bytes(memory_bytes);
        let width = total_cells / depth.max(1);
        Ok(Self {
            inner: CountMinSketch::new(width.max(1), depth.max(1), seed)?,
        })
    }

    /// Estimate the aggregate frequency of an edge.
    #[inline]
    pub fn estimate(&self, edge: Edge) -> u64 {
        self.inner.estimate(edge.key())
    }

    /// Answer a whole query batch. One sketch means no slot sort — the
    /// keys are mixed once and handed to the synopsis in a single run
    /// (a plain scalar pass for the CountMin backend; the baseline has
    /// no arena to batch into, which is exactly what the batched-vs-
    /// scalar bench rows measure against). `out` is overwritten with one
    /// estimate per edge, in query order.
    pub fn estimate_batch(&self, edges: &[Edge], out: &mut Vec<u64>) {
        use sketch::FrequencySketch;
        let keys: Vec<u64> = edges.iter().map(|e| e.key()).collect();
        self.inner.estimate_batch(&keys, out);
    }

    /// Counter memory in bytes.
    pub fn bytes(&self) -> usize {
        self.inner.bytes()
    }

    /// Width of the single sketch.
    pub fn width(&self) -> usize {
        self.inner.width()
    }

    /// Total absorbed weight (`N` of Equation 1).
    pub fn total_weight(&self) -> u64 {
        self.inner.total()
    }

    /// Additive error bound `e·N/w` (Equation 1).
    pub fn error_bound(&self) -> f64 {
        self.inner.error_bound()
    }
}

impl crate::EdgeSink for GlobalSketch {
    #[inline]
    fn update(&mut self, se: StreamEdge) {
        self.inner.update(se.edge.key(), se.weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeSink;

    #[test]
    fn never_underestimates() {
        let mut g = GlobalSketch::new(1 << 16, 3, 1).unwrap();
        let stream: Vec<StreamEdge> = (0..500u32)
            .map(|i| StreamEdge::unit(Edge::new(i % 50, i / 50), i as u64))
            .collect();
        g.ingest(&stream);
        for se in &stream {
            assert!(g.estimate(se.edge) >= 1);
        }
    }

    #[test]
    fn respects_byte_budget() {
        let g = GlobalSketch::new(1 << 20, 3, 1).unwrap();
        assert!(g.bytes() <= 1 << 20);
        assert!(g.bytes() * 2 >= 1 << 20);
    }

    #[test]
    fn width_times_depth_fits_budget() {
        let g = GlobalSketch::new(4096, 4, 1).unwrap();
        assert_eq!(g.width(), 4096 / 8 / 4);
    }

    #[test]
    fn error_bound_grows_with_stream() {
        let mut g = GlobalSketch::new(1 << 12, 3, 1).unwrap();
        let b0 = g.error_bound();
        g.update(StreamEdge::weighted(Edge::new(1u32, 2u32), 0, 1000));
        assert!(g.error_bound() > b0);
        assert_eq!(g.total_weight(), 1000);
    }
}
