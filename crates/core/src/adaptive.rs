//! Sample-free adaptive gSketch — the paper's final future-work item
//! (§7: "we will investigate how such sketch-based methods can be
//! potentially designed for dynamic analysis, which may not require any
//! samples for constructing the underlying synopsis").
//!
//! The adaptive sketch removes the pre-collected data sample by treating
//! the *stream prefix itself* as the sample:
//!
//! 1. **Warm-up phase.** Arrivals are absorbed by a plain global CountMin
//!    sketch (sized at a configurable fraction of the budget) while exact
//!    per-source vertex statistics — `f̃v(m)` and `d̃(m)`, the same
//!    quantities §4 estimates from the sample — are accumulated online in
//!    a bounded side table.
//! 2. **Switchover.** After `warmup_arrivals` arrivals the collected
//!    statistics feed the ordinary partitioning tree (Eq. 9 objective),
//!    the remaining budget is materialized as localized sketches, and the
//!    side table is dropped.
//! 3. **Steady state.** Subsequent arrivals route through `H: V → S_i`
//!    exactly as in a sample-built gSketch.
//!
//! A query is answered by *summing* the warm-up sketch's estimate and the
//! post-switchover estimate. Both components are one-sided CountMin
//! estimates, so the sum never underestimates and Equation (1) applies
//! with `N` split across the two phases — strictly better than a single
//! global sketch of the warm-up's size, and approaching a sample-built
//! gSketch once the stream is long relative to the warm-up.
//!
//! The side table is the only extra memory, it is bounded by
//! `max_tracked_sources`, and it lives only during warm-up. Sources that
//! overflow the table during an adversarially wide warm-up are simply
//! left to the outlier sketch, mirroring §5's treatment of unsampled
//! vertices.
//!
//! **Sizing the warm-up.** The warm-up sketch's additive error,
//! `≈ N_warm / w_warm`, is baked into every lifetime estimate, so the
//! warm-up must stay *short relative to its width*: keep
//! `warmup_arrivals / warmup_memory_fraction` well below the expected
//! stream length, i.e. absorb proportionally less mass during warm-up
//! than the fraction of memory the warm-up sketch holds. The warm-up
//! sketch also uses conservative update (Estan & Varghese) — point
//! queries are all it ever answers, and conservative update strictly
//! reduces their overestimation at no accuracy cost.

use crate::gsketch::{GSketch, GSketchBuilder};
use crate::router::SketchId;
use crate::sink::EdgeSink;
use crate::vstats::{SampleStats, VertexStat};
use gstream::edge::{Edge, StreamEdge};
use gstream::fxhash::{FxHashMap, FxHashSet};
use gstream::vertex::VertexId;
use sketch::{CountMinSketch, SketchError, UpdatePolicy};

/// Configuration of the adaptive (sample-free) gSketch.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Total memory budget in bytes, shared by the warm-up sketch and the
    /// partitioned phase.
    pub memory_bytes: usize,
    /// Fraction of the budget given to the warm-up global sketch.
    pub warmup_memory_fraction: f64,
    /// Arrivals to absorb before partitioning.
    pub warmup_arrivals: u64,
    /// Upper bound on the number of sources tracked in the warm-up side
    /// table; overflow sources fall to the outlier sketch at switchover.
    pub max_tracked_sources: usize,
    /// Sketch depth `d` for both phases.
    pub depth: usize,
    /// Minimum partition width `w0` (termination criterion 1).
    pub min_width: usize,
    /// Collision constant `C` of Theorem 1 (termination criterion 2).
    pub collision_factor: f64,
    /// Fraction of the partitioned-phase budget reserved for outliers.
    pub outlier_fraction: f64,
    /// Expected ratio of full-stream length to warm-up length, used to
    /// extrapolate the warm-up vertex statistics before partitioning
    /// (the [`sample_rate`](crate::GSketchBuilder::sample_rate)
    /// mechanism). A warm-up of 5% of the expected stream corresponds to
    /// `20.0`. Underestimating it makes Theorem 1 terminate partitioning
    /// too early at large budgets; overestimating merely deepens the
    /// tree.
    pub expected_growth: f64,
    /// Hash seed.
    pub seed: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            memory_bytes: 1 << 20,
            warmup_memory_fraction: 0.2,
            warmup_arrivals: 50_000,
            max_tracked_sources: 1 << 20,
            depth: 3,
            min_width: 512,
            collision_factor: 0.5,
            outlier_fraction: 0.1,
            expected_growth: 20.0,
            seed: 0xADA_975,
        }
    }
}

impl AdaptiveConfig {
    fn validate(&self) -> Result<(), SketchError> {
        if !(self.warmup_memory_fraction > 0.0 && self.warmup_memory_fraction < 1.0) {
            return Err(SketchError::InvalidAccuracy {
                what: "warmup_memory_fraction",
                value: self.warmup_memory_fraction,
            });
        }
        if self.warmup_arrivals == 0 {
            return Err(SketchError::InvalidDimension {
                what: "warmup_arrivals",
                value: 0,
            });
        }
        if self.expected_growth < 1.0 || self.expected_growth.is_nan() {
            return Err(SketchError::InvalidAccuracy {
                what: "expected_growth",
                value: self.expected_growth,
            });
        }
        if self.max_tracked_sources == 0 {
            return Err(SketchError::InvalidDimension {
                what: "max_tracked_sources",
                value: 0,
            });
        }
        Ok(())
    }
}

/// Online per-source statistics gathered during warm-up.
#[derive(Debug, Default)]
struct WarmupStats {
    /// src → (freq mass, distinct out-edge count).
    table: FxHashMap<VertexId, (u64, u64)>,
    /// Distinct edges seen (for exact degree counting).
    seen_edges: FxHashSet<Edge>,
    /// Sources dropped because the table was full.
    overflowed: u64,
}

impl WarmupStats {
    fn observe(&mut self, edge: Edge, weight: u64, cap: usize) {
        use std::collections::hash_map::Entry;
        let is_new_edge = self.seen_edges.insert(edge);
        let at_cap = self.table.len() >= cap;
        match self.table.entry(edge.src) {
            Entry::Occupied(mut o) => {
                let (f, d) = o.get_mut();
                *f += weight;
                *d += u64::from(is_new_edge);
            }
            Entry::Vacant(v) => {
                if at_cap {
                    self.overflowed += 1;
                } else {
                    v.insert((weight, u64::from(is_new_edge)));
                }
            }
        }
    }

    fn into_sample_stats(self) -> SampleStats {
        SampleStats::from_vertex_stats(self.table.into_iter().map(|(v, (freq, degree))| {
            (
                v,
                VertexStat {
                    freq,
                    degree,
                    workload: 1.0,
                },
            )
        }))
    }
}

/// Which phase the adaptive sketch is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Still absorbing into the warm-up global sketch.
    Warmup,
    /// Partitioned and routing through `H`.
    Partitioned,
}

enum State {
    Warmup(Box<WarmupStats>),
    Partitioned(Box<GSketch>),
}

/// A gSketch that builds its own partitioning from the stream prefix —
/// no data sample required.
pub struct AdaptiveGSketch {
    cfg: AdaptiveConfig,
    /// The warm-up global sketch; after switchover it is frozen and only
    /// consulted at query time.
    warmup: CountMinSketch,
    state: State,
    arrivals: u64,
}

impl std::fmt::Debug for AdaptiveGSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveGSketch")
            .field("phase", &self.phase())
            .field("arrivals", &self.arrivals)
            .finish_non_exhaustive()
    }
}

impl AdaptiveGSketch {
    /// Create an adaptive sketch in the warm-up phase.
    pub fn new(cfg: AdaptiveConfig) -> Result<Self, SketchError> {
        cfg.validate()?;
        // cast: f64 -> usize truncation; the fraction is validated in (0, 1)
        // so the product is below memory_bytes, which fits usize.
        let warmup_bytes = (cfg.memory_bytes as f64 * cfg.warmup_memory_fraction) as usize;
        let cells = CountMinSketch::cells_for_bytes(warmup_bytes);
        let width = (cells / cfg.depth.max(1)).max(4);
        let warmup = CountMinSketch::new(width, cfg.depth, cfg.seed)?
            .with_policy(UpdatePolicy::Conservative);
        Ok(Self {
            cfg,
            warmup,
            state: State::Warmup(Box::default()),
            arrivals: 0,
        })
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        match self.state {
            State::Warmup(_) => Phase::Warmup,
            State::Partitioned(_) => Phase::Partitioned,
        }
    }

    /// Total arrivals observed.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Force the switchover before `warmup_arrivals` is reached (useful
    /// when the caller knows the prefix is already representative).
    pub fn partition_now(&mut self) {
        if matches!(self.state, State::Warmup(_)) {
            self.switch_over();
        }
    }

    fn switch_over(&mut self) {
        // Temporarily park an empty warm-up state while we consume the
        // real one; it is overwritten below in every path.
        let prev = std::mem::replace(&mut self.state, State::Warmup(Box::default()));
        let stats = match prev {
            State::Warmup(stats) => *stats,
            State::Partitioned(gs) => {
                // Unreachable by construction; restore and bail.
                self.state = State::Partitioned(gs);
                return;
            }
        };
        let partition_bytes = self.cfg.memory_bytes
            // cast: f64 -> usize truncation; fraction in (0, 1) (validated), so
            // the warm-up share stays below memory_bytes and the subtraction holds.
            - (self.cfg.memory_bytes as f64 * self.cfg.warmup_memory_fraction) as usize;
        let sample_stats = stats.into_sample_stats();
        let gs = GSketchBuilder::default()
            .memory_bytes(partition_bytes.max(256))
            .depth(self.cfg.depth)
            .min_width(self.cfg.min_width)
            .collision_factor(self.cfg.collision_factor)
            .outlier_fraction(self.cfg.outlier_fraction)
            .sample_rate(1.0 / self.cfg.expected_growth)
            .seed(self.cfg.seed.wrapping_add(0x5117C4))
            .build_from_stats(sample_stats)
            // lint: allow(no-panics) — rebuilt with the budget and knobs that
            // `cfg.validate()` accepted at construction; the builder cannot fail.
            .expect("partitioned-phase budget validated at construction");
        self.state = State::Partitioned(Box::new(gs));
    }

    /// Estimate the lifetime frequency of `edge`: warm-up estimate plus
    /// post-switchover estimate. One-sided, like its components.
    pub fn estimate(&self, edge: Edge) -> u64 {
        let tail = match &self.state {
            State::Warmup(_) => 0,
            State::Partitioned(gs) => gs.estimate(edge),
        };
        self.warmup.estimate(edge.key()).saturating_add(tail)
    }

    /// Batched [`estimate`](Self::estimate): the warm-up component is
    /// answered as one key run and (after switchover) the partitioned
    /// component as one slot-sorted batch, then the two are summed per
    /// query. `out` is overwritten with one estimate per edge, in query
    /// order; bit-identical to the scalar path.
    pub fn estimate_batch(&self, edges: &[Edge], out: &mut Vec<u64>) {
        use sketch::FrequencySketch;
        let keys: Vec<u64> = edges.iter().map(|e| e.key()).collect();
        self.warmup.estimate_batch(&keys, out);
        if let State::Partitioned(gs) = &self.state {
            let mut tail = Vec::with_capacity(edges.len());
            gs.estimate_batch(edges, &mut tail);
            for (head, t) in out.iter_mut().zip(&tail) {
                *head = head.saturating_add(*t);
            }
        }
    }

    /// Which sketch serves `edge` in the current phase (`None` during
    /// warm-up, when everything lives in the global warm-up sketch).
    pub fn route(&self, edge: Edge) -> Option<SketchId> {
        match &self.state {
            State::Warmup(_) => None,
            State::Partitioned(gs) => Some(gs.route(edge)),
        }
    }

    /// Number of localized partitions (0 during warm-up).
    pub fn num_partitions(&self) -> usize {
        match &self.state {
            State::Warmup(_) => 0,
            State::Partitioned(gs) => gs.num_partitions(),
        }
    }

    /// Total counter memory in bytes across both phases.
    pub fn bytes(&self) -> usize {
        let tail = match &self.state {
            State::Warmup(_) => 0,
            State::Partitioned(gs) => gs.bytes(),
        };
        self.warmup.bytes() + tail
    }

    /// The inner partitioned sketch, once built.
    pub fn partitioned(&self) -> Option<&GSketch> {
        match &self.state {
            State::Warmup(_) => None,
            State::Partitioned(gs) => Some(gs),
        }
    }

    /// Ingest a materialized stream through the **owner-sharded engine**
    /// (DESIGN.md §11): the warm-up prefix replays sequentially, the
    /// switchover happens at its usual arrival boundary, and everything
    /// after it is committed by up to `owners` exclusive slice owners —
    /// the epoch handoff that lifts the adaptive deployment onto the
    /// parallel path.
    ///
    /// The warm-up phase is inherently order-dependent (conservative
    /// update and the online vertex statistics both depend on arrival
    /// order), so exactly the arrivals `update` would absorb before the
    /// boundary go through `update`, switchover and all. The
    /// post-switchover remainder only touches the partitioned sketch —
    /// the warm-up sketch is frozen from the switchover on — and
    /// saturating counter commits commute, so one
    /// [`crate::ShardedIngest`] run over the remainder is bit-identical
    /// to the sequential loop (pinned by the `backend_parity`
    /// proptests). `oversubscribe` forces the requested owner count past
    /// the host's parallelism (correctness tests).
    pub fn ingest_sharded(
        &mut self,
        stream: &[StreamEdge],
        owners: usize,
        oversubscribe: bool,
    ) -> crate::IngestReport {
        let mut report = crate::IngestReport {
            arrivals: 0,
            chunks: 0,
            workers: 1,
        };
        let mut rest = stream;
        if matches!(self.state, State::Warmup(_)) {
            let remaining = self.cfg.warmup_arrivals.saturating_sub(self.arrivals);
            // cast: u64 -> usize saturating via try_from fallback; only used
            // as a slice-length clamp, so saturation is harmless.
            let take = usize::try_from(remaining)
                .unwrap_or(usize::MAX)
                .min(rest.len());
            let (prefix, tail) = rest.split_at(take);
            for se in prefix {
                self.update(*se);
            }
            report.arrivals += prefix.len() as u64;
            rest = tail;
        }
        if rest.is_empty() {
            return report;
        }
        // A non-empty remainder means the warm-up boundary was crossed,
        // so the state is Partitioned; park an empty warm-up state while
        // the sketch is wrapped for the sharded run.
        let prev = std::mem::replace(&mut self.state, State::Warmup(Box::default()));
        let gs = match prev {
            State::Partitioned(gs) => gs,
            State::Warmup(stats) => {
                // Unreachable by construction; restore and replay the
                // remainder through the sequential surface.
                self.state = State::Warmup(stats);
                for se in rest {
                    self.update(*se);
                }
                report.arrivals += rest.len() as u64;
                return report;
            }
        };
        let mut conc = crate::ConcurrentGSketch::from_gsketch(*gs);
        let r = crate::ShardedIngest::new(&mut conc, owners)
            .oversubscribe(oversubscribe)
            .run_slice(rest);
        self.state = State::Partitioned(Box::new(conc.into_gsketch()));
        self.arrivals += rest.len() as u64;
        report.arrivals += r.arrivals;
        report.chunks = r.chunks;
        report.workers = r.workers;
        report
    }
}

impl EdgeSink for AdaptiveGSketch {
    fn update(&mut self, se: StreamEdge) {
        self.arrivals += 1;
        match &mut self.state {
            State::Warmup(stats) => {
                self.warmup.update(se.edge.key(), se.weight);
                stats.observe(se.edge, se.weight, self.cfg.max_tracked_sources);
                if self.arrivals >= self.cfg.warmup_arrivals {
                    self.switch_over();
                }
            }
            State::Partitioned(gs) => gs.update(se),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstream::gen::{RmatConfig, RmatGenerator};
    use gstream::ExactCounter;

    fn cfg(memory: usize, warmup: u64) -> AdaptiveConfig {
        AdaptiveConfig {
            memory_bytes: memory,
            warmup_arrivals: warmup,
            min_width: 64,
            ..AdaptiveConfig::default()
        }
    }

    #[test]
    fn config_validation() {
        let mut c = cfg(1 << 16, 100);
        c.warmup_memory_fraction = 0.0;
        assert!(AdaptiveGSketch::new(c).is_err());
        let mut c = cfg(1 << 16, 100);
        c.warmup_arrivals = 0;
        assert!(AdaptiveGSketch::new(c).is_err());
        let mut c = cfg(1 << 16, 100);
        c.max_tracked_sources = 0;
        assert!(AdaptiveGSketch::new(c).is_err());
    }

    #[test]
    fn phases_transition_at_warmup_boundary() {
        let mut a = AdaptiveGSketch::new(cfg(1 << 16, 10)).unwrap();
        assert_eq!(a.phase(), Phase::Warmup);
        for t in 0..9u32 {
            a.update(StreamEdge::unit(Edge::new(t, t + 1), 0));
            assert_eq!(a.phase(), Phase::Warmup);
        }
        a.update(StreamEdge::unit(Edge::new(100u32, 101u32), 0));
        assert_eq!(a.phase(), Phase::Partitioned);
        assert!(a.num_partitions() >= 1);
    }

    #[test]
    fn estimates_never_underestimate_across_phases() {
        let stream: Vec<_> = RmatGenerator::new(RmatConfig::gtgraph(8, 20_000, 5)).collect();
        let truth = ExactCounter::from_stream(&stream);
        let mut a = AdaptiveGSketch::new(cfg(1 << 18, 5_000)).unwrap();
        a.ingest(&stream);
        assert_eq!(a.phase(), Phase::Partitioned);
        for (edge, f) in truth.iter() {
            assert!(
                a.estimate(edge) >= f,
                "edge {edge} underestimated: {} < {f}",
                a.estimate(edge)
            );
        }
    }

    #[test]
    fn partition_now_is_idempotent() {
        let mut a = AdaptiveGSketch::new(cfg(1 << 16, 1_000_000)).unwrap();
        for t in 0..100u32 {
            a.update(StreamEdge::unit(Edge::new(t % 10, t), 0));
        }
        assert_eq!(a.phase(), Phase::Warmup);
        a.partition_now();
        assert_eq!(a.phase(), Phase::Partitioned);
        let parts = a.num_partitions();
        a.partition_now(); // no-op
        assert_eq!(a.num_partitions(), parts);
    }

    #[test]
    fn warmup_only_queries_work() {
        let mut a = AdaptiveGSketch::new(cfg(1 << 16, 1_000)).unwrap();
        a.update(StreamEdge::weighted(Edge::new(1u32, 2u32), 0, 7));
        assert_eq!(a.phase(), Phase::Warmup);
        assert!(a.estimate(Edge::new(1u32, 2u32)) >= 7);
        assert!(a.route(Edge::new(1u32, 2u32)).is_none());
    }

    #[test]
    fn memory_budget_respected() {
        let stream: Vec<_> = RmatGenerator::new(RmatConfig::gtgraph(8, 10_000, 5)).collect();
        for budget in [1 << 15, 1 << 17, 1 << 19] {
            let mut a = AdaptiveGSketch::new(cfg(budget, 2_000)).unwrap();
            a.ingest(&stream);
            assert!(
                a.bytes() <= budget,
                "adaptive sketch uses {} of {budget}",
                a.bytes()
            );
        }
    }

    #[test]
    fn beats_global_sketch_at_equal_memory() {
        // The point of adapting: after switchover, light sources stop
        // colliding with heavy ones. Needs a stream with the §3.3
        // properties (per-source frequency homogeneity + cross-source
        // skew) — the R-MAT *traffic* model, not raw R-MAT arrivals —
        // and the d = 1 depth the paper's objective is derived for.
        use gstream::gen::{RmatTrafficConfig, RmatTrafficGenerator};
        let mut traffic = RmatTrafficConfig::gtgraph(12, 50_000, 600_000, 11);
        traffic.activity_alpha = 1.2;
        let stream: Vec<_> = RmatTrafficGenerator::new(traffic).collect();
        let truth = ExactCounter::from_stream(&stream);
        let budget = 1 << 15; // tight, but enough for partitioning to express

        // Warm-up absorbs 5% of the stream with 15% of the memory — the
        // sizing rule from the module docs.
        let mut config = cfg(budget, 10_000);
        config.depth = 1;
        config.warmup_memory_fraction = 0.15;
        let mut adaptive = AdaptiveGSketch::new(config).unwrap();
        adaptive.ingest(&stream);

        let mut global = crate::GlobalSketch::new(budget, 1, 99).unwrap();
        global.ingest(&stream);

        let queries: Vec<_> = truth.iter().take(2_000).collect();
        let rel = |est: u64, f: u64| (est as f64 - f as f64) / f as f64;
        let adaptive_err: f64 = queries
            .iter()
            .map(|&(e, f)| rel(adaptive.estimate(e), f))
            .sum::<f64>()
            / queries.len() as f64;
        let global_err: f64 = queries
            .iter()
            .map(|&(e, f)| rel(global.estimate(e), f))
            .sum::<f64>()
            / queries.len() as f64;
        assert!(
            adaptive_err < global_err,
            "adaptive {adaptive_err:.2} should beat global {global_err:.2}"
        );
    }

    #[test]
    fn overflow_sources_fall_to_outlier() {
        let mut c = cfg(1 << 16, 50);
        c.max_tracked_sources = 4;
        let mut a = AdaptiveGSketch::new(c).unwrap();
        // 50 distinct sources, but only 4 tracked.
        for t in 0..50u32 {
            a.update(StreamEdge::unit(Edge::new(t, 1000), 0));
        }
        assert_eq!(a.phase(), Phase::Partitioned);
        // Everything still answerable (via warm-up + outlier).
        for t in 0..50u32 {
            assert!(a.estimate(Edge::new(t, 1000)) >= 1);
        }
    }

    /// The sharded ingest path — sequential warm-up prefix, switchover
    /// at the usual boundary, owner-sharded remainder — must answer
    /// bit-identically to the sequential `update` loop for any owner
    /// count, including calls split around the warm-up boundary.
    #[test]
    fn sharded_ingest_matches_sequential() {
        let stream: Vec<_> = RmatGenerator::new(RmatConfig::gtgraph(8, 20_000, 5)).collect();
        let edges: Vec<Edge> = stream.iter().map(|se| se.edge).collect();
        let mut seq = AdaptiveGSketch::new(cfg(1 << 18, 5_000)).unwrap();
        seq.ingest(&stream);
        let mut want = Vec::new();
        seq.estimate_batch(&edges, &mut want);
        for owners in [1usize, 4] {
            let mut par = AdaptiveGSketch::new(cfg(1 << 18, 5_000)).unwrap();
            // First call ends mid-warm-up; the second crosses the
            // switchover with a sharded remainder.
            let r1 = par.ingest_sharded(&stream[..3_000], owners, true);
            assert_eq!(r1.arrivals, 3_000);
            assert_eq!(par.phase(), Phase::Warmup);
            let r2 = par.ingest_sharded(&stream[3_000..], owners, true);
            assert_eq!(r2.arrivals, stream.len() as u64 - 3_000);
            assert_eq!(par.phase(), Phase::Partitioned);
            assert_eq!(par.arrivals(), stream.len() as u64);
            assert_eq!(par.num_partitions(), seq.num_partitions());
            let mut got = Vec::new();
            par.estimate_batch(&edges, &mut got);
            assert_eq!(got, want, "{owners} owners");
        }
    }

    #[test]
    fn debug_format_shows_phase() {
        let a = AdaptiveGSketch::new(cfg(1 << 16, 10)).unwrap();
        let s = format!("{a:?}");
        assert!(s.contains("Warmup"));
    }
}
