//! The query-replay engine (DESIGN.md §9): a hot-answer memo in front
//! of the batched query engine.
//!
//! The ingest pipeline's combiner cache (DESIGN.md §7) exploits the
//! Zipf head of a graph *stream*; real query workloads are just as
//! skewed (scenario 2 of the paper is built on that assumption — the
//! partitioner discounts never-queried vertices precisely because query
//! streams concentrate on a head), yet workload replay re-answered the
//! same hot edges from the synopsis on every batch. [`ReplayEngine`] is
//! the read-side twin: a small set-associative memo tagged by the raw
//! `(src, dst)` endpoint pair — exact equality, no hashing, exactly
//! like the combiner's tags — that answers the head from one resident
//! probe per query and sends only the misses to the estimator's batched
//! surface.
//!
//! **Why it lives in the replay layer.** A memoized answer is only
//! correct while the underlying counters have not moved, so the memo
//! must see every write. The engine therefore *owns* the deployment
//! handle and fronts both of its surfaces: queries go through the memo,
//! and writes go through the engine's [`EdgeSink`] impl, which
//! invalidates before delegating. Interleaved ingest/query replays stay
//! bit-identical to an uncached replay (pinned by the `backend_parity`
//! interleaving proptest).
//!
//! **Invalidation protocol.** Two levels, both O(1) per write:
//!
//! * a **global generation floor** — [`ReplayEngine::invalidate_all`]
//!   bumps one counter and every cached entry whose stamp is below the
//!   floor is dead, no scan required;
//! * **per-slot generations** when the deployment can localize the
//!   write ([`WriteLocalized`]): partitioned sketches route a write to
//!   exactly one router slot, and slot counter spans are disjoint, so a
//!   write to slot `s` can only move estimates of edges routed to `s` —
//!   bumping `s`'s generation kills exactly those cached answers and
//!   leaves the rest of the head resident.
//!
//! Entry stamps are drawn from one strictly-increasing `u64` counter,
//! so a stamp can never be reused and the classic ABA staleness of
//! wrapping generation tags cannot occur.

use crate::query::EdgeEstimator;
use crate::sink::EdgeSink;
use gstream::edge::{Edge, StreamEdge};
use gstream::vertex::VertexId;

/// How a deployment localizes the effect of a write, for cache
/// invalidation. A write that lands in invalidation domain `d` may only
/// change estimates of edges whose source routes to `d`.
///
/// The partitioned sketches implement this with their router (domain =
/// router slot: slot counter spans are disjoint, so cross-slot
/// estimates cannot move). Deployments that cannot bound a write's
/// blast radius — the global baseline's single shared sketch, the
/// adaptive sketch's warm-up phase, the windowed sketch's rotation —
/// use the safe single-domain default, where every write invalidates
/// the whole memo.
pub trait WriteLocalized {
    /// Number of distinct invalidation domains (≥ 1).
    fn write_domains(&self) -> usize {
        1
    }

    /// The domain absorbing writes whose source vertex is `src`
    /// (`< write_domains()`).
    fn write_domain(&self, _src: VertexId) -> u32 {
        0
    }
}

/// Forwarding impls so an engine can front a borrowed deployment.
impl<T: WriteLocalized + ?Sized> WriteLocalized for &T {
    fn write_domains(&self) -> usize {
        (**self).write_domains()
    }

    fn write_domain(&self, src: VertexId) -> u32 {
        (**self).write_domain(src)
    }
}

/// The global baseline is one shared sketch: any write can collide with
/// any cached answer.
impl WriteLocalized for crate::GlobalSketch {}

/// Before switchover every write lands in the (global) warm-up sketch;
/// afterwards estimates still *sum* warm-up + partitioned components.
/// The safe single-domain default is the correct blast radius.
impl WriteLocalized for crate::AdaptiveGSketch {}

/// A write may rotate windows (rebuilding the current router), so no
/// per-slot localization is sound across the write stream.
impl<B: sketch::FrequencySketch> WriteLocalized for crate::WindowedGSketch<B> {}

/// Exact truth: a write to edge `e` only changes `e`, but the exact
/// counter is a hash map — memoizing in front of it buys nothing, so it
/// keeps the safe default (used only in tests).
impl WriteLocalized for gstream::ExactCounter {}

/// What a replay engine did so far (monotone counters; useful for
/// asserting hit rates in benches and smokes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Queries answered from the memo.
    pub hits: u64,
    /// Queries sent to the estimator's batched surface.
    pub misses: u64,
    /// Domain invalidations (writes that bumped a generation), plus one
    /// per whole-cache invalidation.
    pub invalidations: u64,
}

/// One 4-way memo set. Ways are tagged by the raw `(src, dst)` endpoint
/// pair; `hits[j] == 0` marks way `j` free (an occupied way has
/// answered at least its filling query). A way is *valid* iff its stamp
/// equals its domain's current generation and sits at or above the
/// global floor.
struct MemoSet {
    pairs: [u64; 4],
    values: [u64; 4],
    stamps: [u64; 4],
    domains: [u32; 4],
    hits: [u32; 4],
}

const EMPTY_MEMO_SET: MemoSet = MemoSet {
    pairs: [0; 4],
    values: [0; 4],
    stamps: [0; 4],
    domains: [0; 4],
    hits: [0; 4],
};

/// The packed endpoint pair identifying an edge exactly (the same
/// tagging scheme as the ingest combiner's cache).
#[inline]
fn edge_pair(e: Edge) -> u64 {
    (u64::from(e.src.0) << 32) | u64::from(e.dst.0)
}

/// Memo set index for a pair: one Fibonacci multiply — the memo only
/// needs spread, not pairwise independence.
#[inline]
fn set_index(pair: u64, shift: u32) -> usize {
    // cast: u64 -> usize; `>> shift` leaves at most (64 - shift) bits,
    // the set-count bit width, so the index fits and is in range.
    ((pair ^ (pair >> 29)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize
}

/// Default memo capacity: 2^14 sets × 4 ways ≈ 64k answers — sized so a
/// Zipf-headed workload's head (plus warm tail) stays resident while
/// the memo itself stays a few MiB, far below the synopses it fronts.
const DEFAULT_ENTRIES: usize = 1 << 16;

/// A query-replay engine: the deployment handle plus the hot-answer
/// memo fronting its batched query surface.
///
/// The engine owns both surfaces of the deployment — queries through
/// [`estimate_edges`](Self::estimate_edges), writes through the
/// [`EdgeSink`] impl — which is what makes the memo sound: every write
/// passes through invalidation before it can touch a counter. Cached
/// answers are bit-identical to uncached ones under any interleaving of
/// ingest and query replays.
#[derive(Debug)]
pub struct ReplayEngine<S> {
    inner: S,
    memo: AnswerMemo,
}

impl<S: EdgeEstimator + WriteLocalized> ReplayEngine<S> {
    /// Front `inner` with a memo of the default capacity.
    pub fn new(inner: S) -> Self {
        Self::with_capacity(inner, DEFAULT_ENTRIES)
    }

    /// Front `inner` with a memo of at least `entries` cached answers
    /// (rounded up to a power-of-two set count).
    pub fn with_capacity(inner: S, entries: usize) -> Self {
        let sets = (entries.max(4) / 4).next_power_of_two();
        let memo = AnswerMemo::new(sets, inner.write_domains().max(1));
        Self { inner, memo }
    }

    /// Answer a query batch through the memo: hits are served from
    /// resident lines, misses are answered as **one batch** through the
    /// estimator's own [`estimate_edges`](EdgeEstimator::estimate_edges)
    /// (slot sort, batched kernels and all) and then inserted. `out` is
    /// overwritten with one estimate per edge, in query order —
    /// bit-identical to an uncached batch.
    pub fn estimate_edges(&mut self, edges: &[Edge], out: &mut Vec<u64>) {
        let inner = &self.inner;
        self.memo.answer_batch(
            edges,
            out,
            |src| inner.write_domain(src),
            |miss, vals| inner.estimate_edges(miss, vals),
        );
    }

    /// [`estimate_edges`](Self::estimate_edges) with a caller-supplied
    /// answerer for the miss batch — the hook the CLI uses to fan misses
    /// out over a [`crate::ParallelQuery`] pool while hits stay on the
    /// calling thread. `answer` must answer exactly like the inner
    /// estimator (it is handed the miss edges in first-miss order and
    /// must fill one value per edge, in order).
    pub fn estimate_edges_with<F>(&mut self, edges: &[Edge], out: &mut Vec<u64>, answer: F)
    where
        F: FnOnce(&[Edge], &mut Vec<u64>),
    {
        let inner = &self.inner;
        self.memo
            .answer_batch(edges, out, |src| inner.write_domain(src), answer);
    }

    /// Scalar convenience: one memoized point query.
    pub fn estimate_edge(&mut self, edge: Edge) -> u64 {
        let pair = edge_pair(edge);
        if let Some(v) = self.memo.probe(pair) {
            return v;
        }
        let v = self.inner.estimate_edge(edge);
        let domain = self.inner.write_domain(edge.src);
        self.memo.insert(pair, domain, v);
        self.memo.stats.misses += 1;
        v
    }

    /// Drop every cached answer (one counter bump; no scan).
    pub fn invalidate_all(&mut self) {
        self.memo.invalidate_all();
    }

    /// Cumulative hit/miss/invalidation counters.
    pub fn stats(&self) -> ReplayStats {
        self.memo.stats
    }

    /// Read-only access to the fronted deployment.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwrap the deployment. (There is deliberately no `inner_mut`:
    /// a mutable handle could write without invalidating.)
    pub fn into_inner(self) -> S {
        self.inner
    }
}

/// Writes pass through invalidation before touching the deployment:
/// localized deployments invalidate only the touched domains (once per
/// domain per batch), the rest invalidate the whole memo.
impl<S: EdgeEstimator + WriteLocalized + EdgeSink> EdgeSink for ReplayEngine<S> {
    fn update(&mut self, se: StreamEdge) {
        self.memo
            .invalidate_domain(self.inner.write_domain(se.edge.src));
        self.inner.update(se);
    }

    fn ingest_batch(&mut self, batch: &[StreamEdge]) {
        self.memo
            .invalidate_batch(batch, |src| self.inner.write_domain(src));
        self.inner.ingest_batch(batch);
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

/// The memo proper: sets, generations, and scratch. Split from the
/// engine so the borrow of the inner estimator (answering misses) and
/// the borrow of the cache state can coexist.
#[derive(Debug)]
struct AnswerMemo {
    sets: Box<[MemoSet]>,
    /// `64 − log2(sets.len())`: the set-index shift.
    shift: u32,
    /// Current generation per invalidation domain.
    domain_gens: Vec<u64>,
    /// Stamps below this are globally invalidated (whole-cache
    /// invalidation bumps this once; domains re-stamp lazily on the
    /// next insert).
    floor: u64,
    /// Strictly increasing stamp source — stamps are never reused, so
    /// generation reuse (ABA) cannot resurrect a stale entry.
    next_gen: u64,
    /// Scratch marking domains already invalidated within one batch.
    touched: Vec<bool>,
    /// Miss scratch: the batch's *distinct* missed edges, the
    /// (distinct-miss index, output position) pair per missed query,
    /// and the per-distinct-miss dedup map.
    miss_edges: Vec<Edge>,
    miss_occ: Vec<(usize, usize)>,
    miss_vals: Vec<u64>,
    miss_index: gstream::fxhash::FxHashMap<u64, usize>,
    stats: ReplayStats,
}

impl AnswerMemo {
    fn new(sets: usize, domains: usize) -> Self {
        // At least 2 sets so the set-index shift stays below 64.
        let sets = sets.next_power_of_two().max(2);
        Self {
            sets: (0..sets).map(|_| EMPTY_MEMO_SET).collect(),
            shift: 64 - sets.trailing_zeros(),
            domain_gens: vec![0; domains],
            floor: 0,
            next_gen: 0,
            touched: vec![false; domains],
            miss_edges: Vec::new(),
            miss_occ: Vec::new(),
            miss_vals: Vec::new(),
            miss_index: gstream::fxhash::FxHashMap::default(),
            stats: ReplayStats::default(),
        }
    }

    /// Look up a pair; a hit bumps the way's hit counter (heaviest-stays
    /// currency) and counts toward [`ReplayStats::hits`].
    ///
    /// The set access stays a checked index: `set_index` is in range by
    /// construction (the shift leaves exactly the set-count bit width),
    /// but that proof lives in the constructor, out of LLVM's reach, so
    /// the retained bounds check is counted by the audit ratchet rather
    /// than papered over with a fallback. A way whose domain id has no
    /// generation (shrunken domain table) simply never validates.
    #[inline]
    fn probe(&mut self, pair: u64) -> Option<u64> {
        let set = &mut self.sets[set_index(pair, self.shift)];
        for j in 0..4 {
            if set.pairs[j] == pair
                && set.hits[j] != 0
                && set.stamps[j] >= self.floor
                && Some(set.stamps[j]) == self.domain_gens.get(set.domains[j] as usize).copied()
            {
                set.hits[j] = set.hits[j].saturating_add(1);
                self.stats.hits += 1;
                return Some(set.values[j]);
            }
        }
        None
    }

    /// Cache an answer. An existing way holding the same pair (live or
    /// stale) is refreshed in place; otherwise the **lightest** way is
    /// displaced — dead ways count as weightless, so the hottest live
    /// answers are the ones that stay (the combiner cache's
    /// heaviest-stays rule, with hit counts as the weight).
    // audit: kernel(panic-free)
    fn insert(&mut self, pair: u64, domain: u32, value: u64) {
        // A domain last stamped before the global floor gets a fresh
        // generation, so the new entry is live but pre-floor ones stay
        // dead. A domain id with no generation slot cannot produce a
        // valid stamp, so the answer is dropped (the query degrades to
        // a permanent miss) rather than indexing out of range.
        let floor = self.floor;
        let Some(gen) = self.domain_gens.get_mut(domain as usize) else {
            return;
        };
        if *gen < floor {
            self.next_gen += 1;
            *gen = self.next_gen;
        }
        let stamp = *gen;
        // Checked set index, same rationale as `probe`: in range by
        // construction, counted by the audit ratchet.
        let set = &mut self.sets[set_index(pair, self.shift)];
        let mut victim = 0usize;
        let mut victim_weight = u32::MAX;
        for j in 0..4 {
            if set.pairs[j] == pair && set.hits[j] != 0 {
                victim = j;
                break;
            }
            let live = set.hits[j] != 0
                && set.stamps[j] >= floor
                && Some(set.stamps[j]) == self.domain_gens.get(set.domains[j] as usize).copied();
            let weight = if live { set.hits[j] } else { 0 };
            if weight < victim_weight {
                victim = j;
                victim_weight = weight;
            }
        }
        set.pairs[victim] = pair;
        set.values[victim] = value;
        set.stamps[victim] = stamp;
        set.domains[victim] = domain;
        set.hits[victim] = 1;
    }

    /// Kill every cached answer for one domain.
    fn invalidate_domain(&mut self, domain: u32) {
        self.next_gen += 1;
        self.domain_gens[domain as usize] = self.next_gen;
        self.stats.invalidations += 1;
    }

    /// Kill every cached answer.
    fn invalidate_all(&mut self) {
        self.next_gen += 1;
        self.floor = self.next_gen;
        self.stats.invalidations += 1;
    }

    /// Invalidate the domains a write batch touches, once per domain.
    fn invalidate_batch<D: Fn(VertexId) -> u32>(&mut self, batch: &[StreamEdge], domain_of: D) {
        if self.domain_gens.len() == 1 {
            if !batch.is_empty() {
                self.invalidate_domain(0);
            }
            return;
        }
        self.touched.fill(false);
        for se in batch {
            // cast: u32 -> usize is widening on every supported target; the
            // index is bounds-checked against `touched` on the next line.
            let d = domain_of(se.edge.src) as usize;
            if !self.touched[d] {
                self.touched[d] = true;
                self.invalidate_domain(d as u32);
            }
        }
    }

    /// The batched probe/answer/fill cycle (see
    /// [`ReplayEngine::estimate_edges`]). Missed queries are deduplicated
    /// *within the batch*: a hot edge repeated anywhere in the batch —
    /// adjacent or scattered — reaches the estimator once and every
    /// further occurrence is served from the first answer, so the head
    /// of a Zipf workload pays one synopsis probe per batch even on a
    /// cold memo. Repeat occurrences count as hits (they are answered
    /// by the replay layer, not the synopsis).
    fn answer_batch<D, F>(&mut self, edges: &[Edge], out: &mut Vec<u64>, domain_of: D, answer: F)
    where
        D: Fn(VertexId) -> u32,
        F: FnOnce(&[Edge], &mut Vec<u64>),
    {
        out.clear();
        out.resize(edges.len(), 0);
        let mut miss_edges = std::mem::take(&mut self.miss_edges);
        let mut miss_occ = std::mem::take(&mut self.miss_occ);
        let mut miss_vals = std::mem::take(&mut self.miss_vals);
        let mut miss_index = std::mem::take(&mut self.miss_index);
        miss_edges.clear();
        miss_occ.clear();
        miss_index.clear();
        for (i, &e) in edges.iter().enumerate() {
            let pair = edge_pair(e);
            match self.probe(pair) {
                Some(v) => out[i] = v,
                None => {
                    let slot = *miss_index.entry(pair).or_insert_with(|| {
                        miss_edges.push(e);
                        miss_edges.len() - 1
                    });
                    miss_occ.push((slot, i));
                }
            }
        }
        if !miss_edges.is_empty() {
            self.stats.misses += miss_edges.len() as u64;
            self.stats.hits += (miss_occ.len() - miss_edges.len()) as u64;
            answer(&miss_edges, &mut miss_vals);
            debug_assert_eq!(miss_vals.len(), miss_edges.len());
            for &(slot, i) in &miss_occ {
                out[i] = miss_vals[slot];
            }
            for (&e, &v) in miss_edges.iter().zip(&miss_vals) {
                self.insert(edge_pair(e), domain_of(e.src), v);
            }
        }
        self.miss_edges = miss_edges;
        self.miss_occ = miss_occ;
        self.miss_vals = miss_vals;
        self.miss_index = miss_index;
    }
}

impl std::fmt::Debug for MemoSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoSet").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Interval-keyed replay for windowed deployments (DESIGN.md §13)
// ---------------------------------------------------------------------------

/// One 4-way interval-memo set: ways are tagged by the `(pair, interval)`
/// key and cache the full [`IntervalEstimate`] row (value, bound,
/// confidence), so the plain and detailed query surfaces share one memo.
struct IvalSet {
    pairs: [u64; 4],
    ivals: [u32; 4],
    values: [f64; 4],
    bounds: [f64; 4],
    confs: [f64; 4],
    stamps: [u64; 4],
    hits: [u32; 4],
}

const EMPTY_IVAL_SET: IvalSet = IvalSet {
    pairs: [0; 4],
    ivals: [0; 4],
    values: [0.0; 4],
    bounds: [0.0; 4],
    confs: [0.0; 4],
    stamps: [0; 4],
    hits: [0; 4],
};

impl std::fmt::Debug for IvalSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IvalSet").finish_non_exhaustive()
    }
}

use crate::window::IntervalEstimate;
use crate::WindowedGSketch;
use sketch::{CmArena, FrequencySketch};

/// A replay engine for **time-travel queries** over a windowed
/// deployment: a set-associative memo keyed by `(edge pair, interval)`
/// in front of [`WindowedGSketch::estimate_interval_detailed_batch`].
///
/// The point of a separate engine is the **two-domain invalidation
/// protocol**, which is what makes historical answers effectively
/// immortal:
///
/// * An interval is **sealed** iff its inclusive end lies before the
///   currently open window (`t_end < current_window_start()`). A sealed
///   interval's answer is computed entirely from sealed windows and
///   tiers — the live window cannot overlap it — and window rotation
///   cannot change it either (the newly sealed window starts at the old
///   live boundary, past the interval's end). The only event that moves
///   a sealed answer is **coarsening** (folding expired windows into
///   tiers), which the engine detects through the deployment's monotone
///   [`coarsenings`](WindowedGSketch::coarsenings) counter. Without a
///   horizon that never happens: sealed hits survive any amount of
///   further ingest.
/// * A **live** interval (overlapping the open window) is invalidated
///   by every write batch, exactly like [`ReplayEngine`]'s
///   single-domain deployments.
///
/// Classification is monotone — `current_window_start` never decreases,
/// so a sealed interval can never become live again — and both domain
/// generations are drawn from one strictly-increasing counter, so a
/// stale live-domain stamp can never collide with a sealed-domain
/// generation (no ABA resurrection).
///
/// Combined with [`crate::persist::load_windowed`], this gives
/// O(workload) time travel: [`replace_inner`](Self::replace_inner)
/// swaps in a snapshot-loaded deployment and *keeps* the sealed half of
/// the memo when the snapshot's history extends the current one, so a
/// warmed replay survives process handoff through the snapshot file.
#[derive(Debug)]
pub struct WindowedReplay<B: FrequencySketch = CmArena> {
    inner: WindowedGSketch<B>,
    sets: Box<[IvalSet]>,
    shift: u32,
    /// Dense id per distinct queried interval (grows with the number of
    /// distinct `[t_start, t_end]` spans the workload uses — a handful
    /// in practice; ids are never recycled).
    interval_ids: gstream::fxhash::FxHashMap<(u64, u64), u32>,
    /// Generation of the sealed domain (bumped only by coarsening).
    sealed_gen: u64,
    /// Generation of the live domain (bumped by every write batch).
    live_gen: u64,
    /// Strictly increasing stamp source shared by both domains.
    next_gen: u64,
    /// Miss scratch (see [`AnswerMemo`] for the dedup scheme).
    miss_edges: Vec<Edge>,
    miss_occ: Vec<(usize, usize)>,
    miss_rows: Vec<IntervalEstimate>,
    miss_index: gstream::fxhash::FxHashMap<u64, usize>,
    stats: ReplayStats,
}

impl<B: FrequencySketch> WindowedReplay<B> {
    /// Front `inner` with an interval memo of the default capacity.
    pub fn new(inner: WindowedGSketch<B>) -> Self {
        Self::with_capacity(inner, DEFAULT_ENTRIES)
    }

    /// Front `inner` with a memo of at least `entries` cached answers
    /// (rounded up to a power-of-two set count).
    pub fn with_capacity(inner: WindowedGSketch<B>, entries: usize) -> Self {
        let sets = (entries.max(4) / 4).next_power_of_two().max(2);
        Self {
            inner,
            sets: (0..sets).map(|_| EMPTY_IVAL_SET).collect(),
            shift: 64 - sets.trailing_zeros(),
            interval_ids: gstream::fxhash::FxHashMap::default(),
            sealed_gen: 0,
            live_gen: 1,
            next_gen: 1,
            miss_edges: Vec::new(),
            miss_occ: Vec::new(),
            miss_rows: Vec::new(),
            miss_index: gstream::fxhash::FxHashMap::default(),
            stats: ReplayStats::default(),
        }
    }

    /// The dense id of interval `(t_start, t_end)`.
    fn interval_id(&mut self, t_start: u64, t_end: u64) -> u32 {
        let next = self.interval_ids.len();
        // cast: interval count is bounded by distinct workload spans,
        // far below u32::MAX; a truncated id would only cause extra
        // misses, never a wrong answer.
        *self
            .interval_ids
            .entry((t_start, t_end))
            .or_insert(next as u32)
    }

    /// The generation an entry for this interval must carry to be live
    /// *now*: sealed intervals check against the sealed domain, live
    /// ones against the live domain.
    fn current_gen(&self, t_end: u64) -> u64 {
        if t_end < self.inner.current_window_start() {
            self.sealed_gen
        } else {
            self.live_gen
        }
    }

    /// Set index for a `(pair, interval)` key: mix the interval id into
    /// the pair before the Fibonacci spread so the same edge under
    /// different intervals lands in different sets.
    #[inline]
    fn ival_set_index(&self, pair: u64, ival: u32) -> usize {
        set_index(
            pair ^ u64::from(ival).wrapping_mul(0xA24B_AED4_963E_E407),
            self.shift,
        )
    }

    #[inline]
    fn probe(&mut self, pair: u64, ival: u32, gen: u64) -> Option<IntervalEstimate> {
        let idx = self.ival_set_index(pair, ival);
        let set = &mut self.sets[idx];
        for j in 0..4 {
            if set.pairs[j] == pair
                && set.ivals[j] == ival
                && set.hits[j] != 0
                && set.stamps[j] == gen
            {
                set.hits[j] = set.hits[j].saturating_add(1);
                self.stats.hits += 1;
                return Some(IntervalEstimate {
                    value: set.values[j],
                    error_bound: set.bounds[j],
                    confidence: set.confs[j],
                });
            }
        }
        None
    }

    fn insert(&mut self, pair: u64, ival: u32, gen: u64, row: IntervalEstimate) {
        let idx = self.ival_set_index(pair, ival);
        let (sealed_gen, live_gen) = (self.sealed_gen, self.live_gen);
        let set = &mut self.sets[idx];
        let mut victim = 0usize;
        let mut victim_weight = u32::MAX;
        for j in 0..4 {
            if set.pairs[j] == pair && set.ivals[j] == ival && set.hits[j] != 0 {
                victim = j;
                break;
            }
            // Eviction weight only: a way stamped by neither current
            // generation is certainly dead (weightless). A stale way
            // that happens to match one is merely over-weighted — the
            // probe's exact stamp check keeps correctness.
            let live =
                set.hits[j] != 0 && (set.stamps[j] == sealed_gen || set.stamps[j] == live_gen);
            let weight = if live { set.hits[j] } else { 0 };
            if weight < victim_weight {
                victim = j;
                victim_weight = weight;
            }
        }
        set.pairs[victim] = pair;
        set.ivals[victim] = ival;
        set.values[victim] = row.value;
        set.bounds[victim] = row.error_bound;
        set.confs[victim] = row.confidence;
        set.stamps[victim] = gen;
        set.hits[victim] = 1;
    }

    fn bump_live(&mut self) {
        self.next_gen += 1;
        self.live_gen = self.next_gen;
        self.stats.invalidations += 1;
    }

    fn bump_sealed(&mut self) {
        self.next_gen += 1;
        self.sealed_gen = self.next_gen;
        self.stats.invalidations += 1;
    }

    /// Memoized
    /// [`estimate_interval_detailed_batch`](WindowedGSketch::estimate_interval_detailed_batch):
    /// hits are served from resident `(pair, interval)` lines, the
    /// distinct misses are answered as one batch through the deployment
    /// and inserted. Bit-identical to the uncached batch, in query
    /// order.
    pub fn estimate_interval_detailed_batch(
        &mut self,
        edges: &[Edge],
        t_start: u64,
        t_end: u64,
        out: &mut Vec<IntervalEstimate>,
    ) {
        out.clear();
        out.resize(edges.len(), IntervalEstimate::default());
        let ival = self.interval_id(t_start, t_end);
        let gen = self.current_gen(t_end);
        let mut miss_edges = std::mem::take(&mut self.miss_edges);
        let mut miss_occ = std::mem::take(&mut self.miss_occ);
        let mut miss_rows = std::mem::take(&mut self.miss_rows);
        let mut miss_index = std::mem::take(&mut self.miss_index);
        miss_edges.clear();
        miss_occ.clear();
        miss_index.clear();
        for (i, &e) in edges.iter().enumerate() {
            let pair = edge_pair(e);
            match self.probe(pair, ival, gen) {
                Some(row) => out[i] = row,
                None => {
                    let slot = *miss_index.entry(pair).or_insert_with(|| {
                        miss_edges.push(e);
                        miss_edges.len() - 1
                    });
                    miss_occ.push((slot, i));
                }
            }
        }
        if !miss_edges.is_empty() {
            self.stats.misses += miss_edges.len() as u64;
            self.stats.hits += (miss_occ.len() - miss_edges.len()) as u64;
            self.inner.estimate_interval_detailed_batch(
                &miss_edges,
                t_start,
                t_end,
                &mut miss_rows,
            );
            debug_assert_eq!(miss_rows.len(), miss_edges.len());
            for &(slot, i) in &miss_occ {
                out[i] = miss_rows[slot];
            }
            for (&e, &row) in miss_edges.iter().zip(&miss_rows) {
                self.insert(edge_pair(e), ival, gen, row);
            }
        }
        self.miss_edges = miss_edges;
        self.miss_occ = miss_occ;
        self.miss_rows = miss_rows;
        self.miss_index = miss_index;
    }

    /// Memoized
    /// [`estimate_interval_batch`](WindowedGSketch::estimate_interval_batch):
    /// the plain surface shares the detailed memo (the windowed
    /// deployment pins plain and detailed values bit-identical).
    pub fn estimate_interval_batch(
        &mut self,
        edges: &[Edge],
        t_start: u64,
        t_end: u64,
        out: &mut Vec<f64>,
    ) {
        let mut rows = Vec::new();
        self.estimate_interval_detailed_batch(edges, t_start, t_end, &mut rows);
        out.clear();
        out.extend(rows.iter().map(|r| r.value));
    }

    /// Fallible single-arrival ingest (the windowed counterpart of
    /// [`WindowedGSketch::try_insert`]), with invalidation.
    pub fn try_insert(&mut self, se: StreamEdge) -> Result<(), sketch::SketchError> {
        self.bump_live();
        let before = self.inner.coarsenings();
        let r = self.inner.try_insert(se);
        if self.inner.coarsenings() != before {
            self.bump_sealed();
        }
        r
    }

    /// Swap in a replacement deployment — typically one loaded from a
    /// snapshot file — and keep as much of the memo as is sound:
    ///
    /// * the **sealed** half survives iff the replacement provably
    ///   extends the current deployment's history (same configuration
    ///   and horizon, same coarsening count, current sealed spans a
    ///   prefix of the replacement's, neither instance partial): every
    ///   synopsis a sealed interval was answered from is still present
    ///   and unchanged, and the replacement's extra windows all start at
    ///   or past the old live boundary, outside every sealed interval;
    /// * the **live** half is always invalidated — the open window's
    ///   counters have no such guarantee.
    ///
    /// Returns whether sealed answers were preserved.
    pub fn replace_inner(&mut self, new: WindowedGSketch<B>) -> bool {
        let old_spans = self.inner.sealed_spans();
        let new_spans = new.sealed_spans();
        let preserved = !self.inner.is_partial()
            && !new.is_partial()
            && self.inner.config() == new.config()
            && self.inner.horizon_keep() == new.horizon_keep()
            && self.inner.coarsenings() == new.coarsenings()
            && new_spans.len() >= old_spans.len()
            && old_spans == new_spans[..old_spans.len()];
        self.inner = new;
        self.bump_live();
        if !preserved {
            self.bump_sealed();
        }
        preserved
    }

    /// Drop every cached answer.
    pub fn invalidate_all(&mut self) {
        self.bump_live();
        self.bump_sealed();
    }

    /// Cumulative hit/miss/invalidation counters.
    pub fn stats(&self) -> ReplayStats {
        self.stats
    }

    /// Read-only access to the fronted deployment.
    pub fn inner(&self) -> &WindowedGSketch<B> {
        &self.inner
    }

    /// Unwrap the deployment. (No `inner_mut`, for the same reason as
    /// [`ReplayEngine::into_inner`]: a mutable handle could write
    /// without invalidating.)
    pub fn into_inner(self) -> WindowedGSketch<B> {
        self.inner
    }
}

/// Writes invalidate the live domain before touching the deployment;
/// if the write triggered coarsening (the only mutation of sealed
/// history), the sealed domain is invalidated too.
impl<B: FrequencySketch> EdgeSink for WindowedReplay<B> {
    fn update(&mut self, se: StreamEdge) {
        self.bump_live();
        let before = self.inner.coarsenings();
        self.inner.update(se);
        if self.inner.coarsenings() != before {
            self.bump_sealed();
        }
    }

    fn ingest_batch(&mut self, batch: &[StreamEdge]) {
        if batch.is_empty() {
            return;
        }
        self.bump_live();
        let before = self.inner.coarsenings();
        self.inner.ingest_batch(batch);
        if self.inner.coarsenings() != before {
            self.bump_sealed();
        }
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GSketch, GlobalSketch};

    fn stream(n: u64) -> Vec<StreamEdge> {
        (0..n)
            .map(|t| {
                let src = if t % 3 == 0 { 1 } else { (t % 37) as u32 };
                StreamEdge::weighted(Edge::new(src, (t % 11) as u32 + 50), t, t % 4 + 1)
            })
            .collect()
    }

    fn build(stream: &[StreamEdge]) -> GSketch {
        GSketch::builder()
            .memory_bytes(1 << 14)
            .min_width(16)
            .seed(5)
            .build_from_sample(&stream[..stream.len() / 4])
            .unwrap()
    }

    #[test]
    fn cached_answers_match_uncached() {
        use crate::EdgeSink;
        let s = stream(3_000);
        let mut gs = build(&s);
        gs.ingest(&s);
        let queries: Vec<Edge> = s.iter().map(|se| se.edge).collect();
        let mut bare = Vec::new();
        gs.estimate_edges(&queries, &mut bare);
        let mut engine = ReplayEngine::new(gs);
        for _ in 0..3 {
            let mut cached = Vec::new();
            engine.estimate_edges(&queries, &mut cached);
            assert_eq!(cached, bare);
        }
        let stats = engine.stats();
        // Second and third passes answer the whole workload from the
        // memo (37 sources × 11 destinations ≪ capacity).
        assert!(stats.hits > stats.misses, "{stats:?}");
        for &q in queries.iter().take(50) {
            assert_eq!(engine.estimate_edge(q), engine.inner().estimate_edge(q));
        }
    }

    #[test]
    fn writes_invalidate_affected_answers() {
        use crate::EdgeSink;
        let s = stream(2_000);
        let mut gs = build(&s);
        gs.ingest(&s);
        let queries: Vec<Edge> = s.iter().step_by(7).map(|se| se.edge).collect();
        let mut engine = ReplayEngine::new(gs);
        let mut out = Vec::new();
        engine.estimate_edges(&queries, &mut out); // fill the memo
        engine.estimate_edges(&queries, &mut out); // all hits
                                                   // Write through the engine, then re-query: answers must track
                                                   // the new counters exactly.
        for se in &s[..300] {
            engine.update(*se);
        }
        engine.estimate_edges(&queries, &mut out);
        for (&q, &v) in queries.iter().zip(&out) {
            assert_eq!(v, engine.inner().estimate_edge(q), "stale answer for {q}");
        }
        assert!(engine.stats().invalidations > 0);
    }

    #[test]
    fn batched_writes_invalidate_once_per_domain() {
        use crate::EdgeSink;
        let s = stream(2_000);
        let mut gs = build(&s);
        gs.ingest(&s);
        let queries: Vec<Edge> = s.iter().step_by(5).map(|se| se.edge).collect();
        let mut engine = ReplayEngine::new(gs);
        let mut out = Vec::new();
        engine.estimate_edges(&queries, &mut out);
        let before = engine.stats().invalidations;
        engine.ingest_batch(&s[..500]);
        let bumps = engine.stats().invalidations - before;
        assert!(bumps > 0);
        assert!(
            bumps <= engine.inner().num_partitions() as u64 + 1,
            "at most one bump per touched domain: {bumps}"
        );
        engine.flush();
        engine.estimate_edges(&queries, &mut out);
        for (&q, &v) in queries.iter().zip(&out) {
            assert_eq!(v, engine.inner().estimate_edge(q));
        }
    }

    #[test]
    fn localized_writes_keep_unrelated_answers_resident() {
        use crate::EdgeSink;
        let s = stream(2_000);
        let mut gs = build(&s);
        gs.ingest(&s);
        // Two queries in different domains (partition vs outlier).
        let part_q = s[0].edge;
        let out_q = Edge::new(900_000u32, 1u32);
        assert_ne!(gs.write_domain(part_q.src), gs.write_domain(out_q.src));
        let mut engine = ReplayEngine::new(gs);
        let mut out = Vec::new();
        engine.estimate_edges(&[part_q, out_q], &mut out);
        // A write localized to the outlier domain must not evict the
        // partition-domain answer.
        engine.update(StreamEdge::weighted(out_q, 0, 3));
        let hits_before = engine.stats().hits;
        engine.estimate_edges(&[part_q], &mut out);
        assert_eq!(engine.stats().hits, hits_before + 1, "resident answer lost");
        // And the invalidated domain re-answers correctly.
        engine.estimate_edges(&[out_q], &mut out);
        assert_eq!(out[0], engine.inner().estimate_edge(out_q));
    }

    #[test]
    fn invalidate_all_is_total() {
        let s = stream(1_000);
        let mut gs = build(&s);
        {
            use crate::EdgeSink;
            gs.ingest(&s);
        }
        let queries: Vec<Edge> = s.iter().step_by(3).map(|se| se.edge).collect();
        let mut engine = ReplayEngine::new(gs);
        let mut out = Vec::new();
        engine.estimate_edges(&queries, &mut out);
        engine.invalidate_all();
        let misses_before = engine.stats().misses;
        engine.estimate_edges(&queries, &mut out);
        // Every distinct edge must re-derive from the synopsis (repeat
        // occurrences within the batch dedupe onto the first miss).
        let distinct: std::collections::HashSet<Edge> = queries.iter().copied().collect();
        assert_eq!(
            engine.stats().misses - misses_before,
            distinct.len() as u64,
            "every distinct answer must re-derive after a total invalidation"
        );
    }

    #[test]
    fn single_domain_deployments_use_whole_cache_invalidation() {
        use crate::EdgeSink;
        let s = stream(1_000);
        let mut gl = GlobalSketch::new(1 << 12, 3, 9).unwrap();
        gl.ingest(&s);
        assert_eq!(gl.write_domains(), 1);
        let queries: Vec<Edge> = s.iter().step_by(4).map(|se| se.edge).collect();
        let mut engine = ReplayEngine::with_capacity(gl, 1 << 10);
        let mut out = Vec::new();
        engine.estimate_edges(&queries, &mut out);
        engine.update(StreamEdge::weighted(Edge::new(1u32, 2u32), 0, 5));
        engine.estimate_edges(&queries, &mut out);
        for (&q, &v) in queries.iter().zip(&out) {
            assert_eq!(v, engine.inner().estimate_edge(q));
        }
    }

    /// Within one batch, a repeated edge reaches the estimator once —
    /// scattered or adjacent — and every further occurrence is a hit.
    #[test]
    fn duplicate_misses_deduplicate_within_a_batch() {
        use crate::EdgeSink;
        let s = stream(1_000);
        let mut gs = build(&s);
        gs.ingest(&s);
        let hot = s[0].edge;
        let other = s[1].edge;
        // Scattered duplicates of two distinct edges.
        let batch = vec![hot, other, hot, hot, other, hot];
        let mut bare = Vec::new();
        gs.estimate_edges(&batch, &mut bare);
        let mut engine = ReplayEngine::new(gs);
        let mut seen = 0usize;
        let mut cached = Vec::new();
        engine.estimate_edges_with(&batch, &mut cached, |miss, vals| {
            seen = miss.len();
            let mut v = Vec::new();
            miss.iter().for_each(|&e| v.push(e));
            // Answer through a fresh scalar pass over the inner — the
            // closure stands in for the estimator here.
            vals.clear();
            vals.extend(bare.iter().take(2)); // hot then other, first-miss order
            assert_eq!(v, vec![hot, other]);
        });
        assert_eq!(seen, 2, "six queries, two distinct misses");
        assert_eq!(cached, bare);
        let stats = engine.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 4, "repeat occurrences are hits");
    }

    /// Tiny capacities exercise eviction: correctness must not depend on
    /// residency.
    #[test]
    fn tiny_memo_still_answers_exactly() {
        use crate::EdgeSink;
        let s = stream(4_000);
        let mut gs = build(&s);
        gs.ingest(&s);
        let queries: Vec<Edge> = s.iter().map(|se| se.edge).collect();
        let mut bare = Vec::new();
        gs.estimate_edges(&queries, &mut bare);
        let mut engine = ReplayEngine::with_capacity(gs, 4);
        let mut cached = Vec::new();
        engine.estimate_edges(&queries, &mut cached);
        engine.estimate_edges(&queries, &mut cached);
        assert_eq!(cached, bare);
    }

    /// The fan-out hook: an engine fronting a *borrowed* deployment can
    /// answer its miss batches through a `ParallelQuery` pool over the
    /// same borrow — the CLI's replay shape — and stays bit-identical.
    #[test]
    fn estimate_edges_with_fans_misses_out() {
        use crate::EdgeSink;
        let s = stream(1_500);
        let mut gs = build(&s);
        gs.ingest(&s);
        let queries: Vec<Edge> = s.iter().step_by(2).map(|se| se.edge).collect();
        let mut bare = Vec::new();
        gs.estimate_edges(&queries, &mut bare);
        let pq = crate::ParallelQuery::new(&gs, 3).oversubscribe(true);
        let mut engine = ReplayEngine::new(&gs);
        let mut cached = Vec::new();
        for _ in 0..2 {
            engine.estimate_edges_with(&queries, &mut cached, |miss, vals| {
                pq.estimate_edges(miss, vals);
            });
            assert_eq!(cached, bare);
        }
        assert!(engine.stats().hits >= queries.len() as u64 / 2);
    }

    /// Miss batches can also ride the **slot-routed** fan-out: the owner
    /// of each router slot answers the misses landing in its slot range
    /// (the read half of the owner-sharded engine, DESIGN.md §11) —
    /// bit-identical to the uncached sequential batch.
    #[test]
    fn miss_batches_route_by_slot_ownership() {
        use crate::EdgeSink;
        let s = stream(1_500);
        let mut gs = build(&s);
        gs.ingest(&s);
        let queries: Vec<Edge> = s.iter().step_by(2).map(|se| se.edge).collect();
        let mut bare = Vec::new();
        gs.estimate_edges(&queries, &mut bare);
        let pq = crate::ParallelQuery::new(&gs, 4).oversubscribe(true);
        let mut engine = ReplayEngine::new(&gs);
        let mut cached = Vec::new();
        for _ in 0..2 {
            engine.estimate_edges_with(&queries, &mut cached, |miss, vals| {
                pq.estimate_edges_routed(miss, vals);
            });
            assert_eq!(cached, bare);
        }
        assert!(engine.stats().hits >= queries.len() as u64 / 2);
    }

    // --- interval-keyed replay (WindowedReplay) ------------------------

    use crate::{WindowConfig, WindowedGSketch};

    fn wcfg() -> WindowConfig {
        WindowConfig {
            span: 100,
            memory_bytes_per_window: 1 << 14,
            sample_capacity: 64,
            seed: 11,
        }
    }

    fn wstream(range: std::ops::Range<u64>) -> Vec<StreamEdge> {
        range
            .map(|ts| StreamEdge::unit(Edge::new((ts % 7) as u32, 60 + (ts % 3) as u32), ts))
            .collect()
    }

    fn wbuild(upto: u64) -> WindowedGSketch {
        let mut w = WindowedGSketch::new(wcfg(), GSketch::builder().min_width(16)).unwrap();
        for se in wstream(0..upto) {
            w.try_insert(se).unwrap();
        }
        w
    }

    fn wqueries() -> Vec<Edge> {
        (0..7u32)
            .flat_map(|s| (60..63u32).map(move |d| Edge::new(s, d)))
            .collect()
    }

    const INTERVALS: [(u64, u64); 4] = [(0, 149), (0, u64::MAX), (120, 480), (333, 333)];

    #[test]
    fn windowed_cached_answers_match_uncached() {
        let w = wbuild(700);
        let queries = wqueries();
        let mut bare = Vec::new();
        let mut bare_rows = Vec::new();
        let mut cached = Vec::new();
        let mut cached_rows = Vec::new();
        let mut engine = WindowedReplay::new(wbuild(700));
        for _ in 0..3 {
            for &(ts, te) in &INTERVALS {
                w.estimate_interval_batch(&queries, ts, te, &mut bare);
                engine.estimate_interval_batch(&queries, ts, te, &mut cached);
                assert_eq!(cached, bare, "plain mismatch over [{ts}, {te}]");
                w.estimate_interval_detailed_batch(&queries, ts, te, &mut bare_rows);
                engine.estimate_interval_detailed_batch(&queries, ts, te, &mut cached_rows);
                assert_eq!(
                    cached_rows, bare_rows,
                    "detailed mismatch over [{ts}, {te}]"
                );
            }
        }
        let stats = engine.stats();
        assert!(stats.hits > stats.misses, "{stats:?}");
    }

    /// A sealed interval's cached answer survives any amount of further
    /// ingest — rotations included — because nothing after the live
    /// boundary can overlap it (without a horizon, sealed history is
    /// immutable).
    #[test]
    fn windowed_sealed_answers_survive_writes_and_rotations() {
        use crate::EdgeSink;
        let mut engine = WindowedReplay::new(wbuild(700));
        let queries = wqueries();
        let (ts, te) = (0u64, 399u64);
        assert!(te < engine.inner().current_window_start());
        let mut first = Vec::new();
        engine.estimate_interval_detailed_batch(&queries, ts, te, &mut first);
        let windows_before = engine.inner().sealed_windows();
        engine.ingest_batch(&wstream(700..1_500)); // several rotations
        assert!(engine.inner().sealed_windows() > windows_before);
        let (hits0, misses0) = (engine.stats().hits, engine.stats().misses);
        let mut again = Vec::new();
        engine.estimate_interval_detailed_batch(&queries, ts, te, &mut again);
        assert_eq!(again, first, "sealed answer changed under live writes");
        assert_eq!(engine.stats().misses, misses0, "sealed answers re-derived");
        assert_eq!(engine.stats().hits, hits0 + queries.len() as u64);
        // And the survivors are still *correct*, not merely resident.
        let mut bare = Vec::new();
        engine
            .inner()
            .estimate_interval_detailed_batch(&queries, ts, te, &mut bare);
        assert_eq!(again, bare);
    }

    /// Intervals overlapping the open window are invalidated by every
    /// write batch and re-derive to the fresh answer.
    #[test]
    fn windowed_live_answers_invalidated_by_writes() {
        use crate::EdgeSink;
        let mut engine = WindowedReplay::new(wbuild(700));
        let queries = wqueries();
        let (ts, te) = (500u64, u64::MAX); // overlaps the open window
        let mut out = Vec::new();
        engine.estimate_interval_detailed_batch(&queries, ts, te, &mut out);
        engine.ingest_batch(&wstream(700..760)); // no rotation, same window
        let misses0 = engine.stats().misses;
        engine.estimate_interval_detailed_batch(&queries, ts, te, &mut out);
        assert_eq!(
            engine.stats().misses,
            misses0 + queries.len() as u64,
            "live answers must re-derive after a write"
        );
        let mut bare = Vec::new();
        engine
            .inner()
            .estimate_interval_detailed_batch(&queries, ts, te, &mut bare);
        assert_eq!(out, bare);
    }

    /// Under a horizon, coarsening is the one event that rewrites sealed
    /// history — cached sealed answers must re-derive, never go stale.
    #[test]
    fn windowed_coarsening_invalidates_sealed_answers() {
        use crate::EdgeSink;
        let mut w =
            WindowedGSketch::with_horizon(wcfg(), GSketch::builder().min_width(16), 2).unwrap();
        for se in wstream(0..1_000) {
            w.try_insert(se).unwrap();
        }
        let mut engine = WindowedReplay::new(w);
        let queries = wqueries();
        let (ts, te) = (0u64, 399u64);
        let mut out = Vec::new();
        engine.estimate_interval_detailed_batch(&queries, ts, te, &mut out);
        let coarsenings = engine.inner().coarsenings();
        engine.ingest_batch(&wstream(1_000..1_300)); // rotations => coarsening
        assert!(engine.inner().coarsenings() > coarsenings);
        engine.estimate_interval_detailed_batch(&queries, ts, te, &mut out);
        let mut bare = Vec::new();
        engine
            .inner()
            .estimate_interval_detailed_batch(&queries, ts, te, &mut bare);
        assert_eq!(out, bare, "stale sealed answer after coarsening");
    }

    /// `replace_inner` keeps the sealed memo when the replacement
    /// provably extends the current history (the snapshot-reload path),
    /// and drops it otherwise.
    #[test]
    fn windowed_replace_inner_preserves_sealed_on_history_extension() {
        let mut engine = WindowedReplay::new(wbuild(700));
        let queries = wqueries();
        let (ts, te) = (0u64, 399u64);
        let mut out = Vec::new();
        engine.estimate_interval_detailed_batch(&queries, ts, te, &mut out);
        // Same config, longer deterministic history: a strict extension.
        assert!(
            engine.replace_inner(wbuild(1_200)),
            "extension not detected"
        );
        let misses0 = engine.stats().misses;
        let mut again = Vec::new();
        engine.estimate_interval_detailed_batch(&queries, ts, te, &mut again);
        assert_eq!(engine.stats().misses, misses0, "sealed memo was dropped");
        let mut bare = Vec::new();
        engine
            .inner()
            .estimate_interval_detailed_batch(&queries, ts, te, &mut bare);
        assert_eq!(again, bare);
        // A diverged deployment (different seed) must invalidate all.
        let other = WindowedGSketch::new(
            WindowConfig { seed: 99, ..wcfg() },
            GSketch::builder().min_width(16),
        )
        .unwrap();
        assert!(!engine.replace_inner(other), "divergence not detected");
        let misses1 = engine.stats().misses;
        engine.estimate_interval_detailed_batch(&queries, ts, te, &mut out);
        assert_eq!(engine.stats().misses, misses1 + queries.len() as u64);
    }
}
