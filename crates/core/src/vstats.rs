//! Vertex statistics estimated from samples (§4 of the paper).
//!
//! Sketch partitioning never sees true edge frequencies; it works from
//! cheap per-vertex statistics estimated on a small data sample `D` and,
//! in scenario 2, a query-workload sample `W`:
//!
//! * `f̃v(m)` — estimated relative vertex frequency (Eq. 2): summed
//!   weight of sampled edges emanating from `m`;
//! * `d̃(m)` — estimated out-degree (Eq. 3): distinct out-edges of `m`
//!   in the sample;
//! * `w̃(n)` — relative workload weight of `n` (§4.2), Laplace-smoothed
//!   so vertices absent from `W` keep a positive weight.

use gstream::edge::{Edge, StreamEdge};
use gstream::fxhash::{FxHashMap, FxHashSet};
use gstream::sample::laplace_smooth;
use gstream::vertex::VertexId;
use gstream::workload::workload_vertex_counts;

/// Per-vertex statistics derived from the samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VertexStat {
    /// `f̃v(m)`: summed sampled weight of out-edges.
    pub freq: u64,
    /// `d̃(m)`: distinct sampled out-edges.
    pub degree: u64,
    /// `w̃(m)`: relative workload weight (1.0 when no workload sample
    /// is in play; Laplace-smoothed otherwise).
    pub workload: f64,
}

impl VertexStat {
    /// Average out-edge frequency `f̃v(m)/d̃(m)` — the sort key of the
    /// data-only objective (Eq. 9).
    pub fn avg_freq(&self) -> f64 {
        debug_assert!(self.degree > 0);
        self.freq as f64 / self.degree as f64
    }

    /// The data+workload sort key `f̃v(n)/w̃(n)` (§4.2).
    pub fn freq_per_weight(&self) -> f64 {
        debug_assert!(self.workload > 0.0);
        self.freq as f64 / self.workload
    }
}

/// Vertex statistics for every source vertex observed in the data sample.
#[derive(Debug, Clone, Default)]
pub struct SampleStats {
    stats: FxHashMap<VertexId, VertexStat>,
    /// Total sampled weight (for diagnostics).
    sampled_weight: u64,
}

impl SampleStats {
    /// Build statistics from a data sample only (scenario 1).
    pub fn from_data_sample(sample: &[StreamEdge]) -> Self {
        let mut freq: FxHashMap<VertexId, u64> = FxHashMap::default();
        let mut seen_edges: FxHashSet<Edge> = FxHashSet::default();
        let mut degree: FxHashMap<VertexId, u64> = FxHashMap::default();
        let mut total = 0u64;
        for se in sample {
            *freq.entry(se.edge.src).or_insert(0) += se.weight;
            total += se.weight;
            if seen_edges.insert(se.edge) {
                *degree.entry(se.edge.src).or_insert(0) += 1;
            }
        }
        let stats = freq
            .into_iter()
            .map(|(v, f)| {
                (
                    v,
                    VertexStat {
                        freq: f,
                        degree: degree[&v],
                        workload: 1.0,
                    },
                )
            })
            .collect();
        Self {
            stats,
            sampled_weight: total,
        }
    }

    /// Build statistics from both a data sample and a workload sample
    /// (scenario 2). Workload weights are Laplace-smoothed over the
    /// vertex support of the data sample, so a vertex never queried in
    /// `W` still receives a small positive `w̃` (§6.4).
    pub fn from_samples(data: &[StreamEdge], workload: &[Edge]) -> Self {
        let mut s = Self::from_data_sample(data);
        let wcounts = workload_vertex_counts(workload);
        let total: u64 = workload.len() as u64;
        let support = s.stats.len();
        for (v, stat) in s.stats.iter_mut() {
            let c = wcounts.get(v).copied().unwrap_or(0);
            stat.workload = laplace_smooth(c, total, support);
        }
        s
    }

    /// Build statistics from raw per-vertex observations, bypassing the
    /// sample machinery. This is the entry point of the *sample-free*
    /// adaptive partitioner ([`crate::adaptive`]), which accumulates
    /// vertex statistics online during a warm-up phase instead of from a
    /// pre-collected sample. Vertices with zero degree are skipped (they
    /// carry no partitioning signal and would break the `d̃ > 0`
    /// invariant of the sort keys).
    pub fn from_vertex_stats<I>(stats: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexStat)>,
    {
        let mut map: FxHashMap<VertexId, VertexStat> = FxHashMap::default();
        let mut total = 0u64;
        for (v, s) in stats {
            if s.degree == 0 {
                continue;
            }
            total += s.freq;
            map.insert(v, s);
        }
        Self {
            stats: map,
            sampled_weight: total,
        }
    }

    /// The statistic for one vertex, if it appeared as a source in the
    /// data sample.
    pub fn get(&self, v: VertexId) -> Option<&VertexStat> {
        self.stats.get(&v)
    }

    /// Number of source vertices covered.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether the sample contained no edges.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Iterate over `(vertex, stat)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &VertexStat)> + '_ {
        self.stats.iter().map(|(&v, s)| (v, s))
    }

    /// Total sampled edge weight.
    pub fn sampled_weight(&self) -> u64 {
        self.sampled_weight
    }

    /// Extrapolate the sampled statistics to full-stream scale.
    ///
    /// A data sample drawn at rate `p` sees roughly `p·fv(m)` of a
    /// vertex's weight, and — for the low-frequency edges that dominate
    /// real graphs — about `p·d(m)` of its distinct out-edges. The paper
    /// uses the raw sampled values; at small sampling rates that makes
    /// the Theorem-1 termination (`Σ d̃(m) ≤ C·width`) fire far too
    /// early, shrinking sketches sized for the *sample's* edge count
    /// while the full stream carries many times more distinct edges.
    /// Scaling both statistics by `1/p` restores the intended semantics
    /// and leaves the partitioning objective unchanged (E′ pivots are
    /// invariant under a common positive scaling of `f̃v` and `d̃`).
    pub fn extrapolate(&mut self, sample_rate: f64) {
        // lint: allow(no-panics) — documented precondition: an out-of-range sample rate would silently corrupt the extrapolated frequencies.
        assert!(
            sample_rate > 0.0 && sample_rate <= 1.0,
            "sample rate must be in (0, 1]"
        );
        if sample_rate == 1.0 {
            return;
        }
        let inv = 1.0 / sample_rate;
        for stat in self.stats.values_mut() {
            stat.freq = ((stat.freq as f64 * inv).round() as u64).max(1);
            stat.degree = ((stat.degree as f64 * inv).round() as u64).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn se(s: u32, d: u32, w: u64) -> StreamEdge {
        StreamEdge::weighted(Edge::new(s, d), 0, w)
    }

    #[test]
    fn data_only_stats_match_equations() {
        let sample = vec![se(1, 2, 3), se(1, 2, 2), se(1, 3, 1), se(4, 1, 10)];
        let s = SampleStats::from_data_sample(&sample);
        let v1 = s.get(VertexId(1)).unwrap();
        assert_eq!(v1.freq, 6);
        assert_eq!(v1.degree, 2); // (1,2) and (1,3) distinct
        assert!((v1.avg_freq() - 3.0).abs() < 1e-12);
        assert_eq!(v1.workload, 1.0);
        let v4 = s.get(VertexId(4)).unwrap();
        assert_eq!(v4.freq, 10);
        assert_eq!(v4.degree, 1);
        assert!(s.get(VertexId(2)).is_none());
        assert_eq!(s.sampled_weight(), 16);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn workload_weights_are_smoothed() {
        let data = vec![se(1, 2, 1), se(3, 4, 1)];
        // Workload queries only edges from vertex 1.
        let workload = vec![Edge::new(1u32, 2u32), Edge::new(1u32, 5u32)];
        let s = SampleStats::from_samples(&data, &workload);
        let w1 = s.get(VertexId(1)).unwrap().workload;
        let w3 = s.get(VertexId(3)).unwrap().workload;
        assert!(w1 > w3, "queried vertex should weigh more");
        assert!(w3 > 0.0, "unqueried vertex must keep positive weight");
        // Laplace: w1 = (2+1)/(2+2), w3 = (0+1)/(2+2).
        assert!((w1 - 0.75).abs() < 1e-12);
        assert!((w3 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_is_empty() {
        let s = SampleStats::from_data_sample(&[]);
        assert!(s.is_empty());
        assert_eq!(s.sampled_weight(), 0);
    }

    #[test]
    fn freq_per_weight_key() {
        let data = vec![se(1, 2, 8)];
        let workload = vec![Edge::new(1u32, 2u32)];
        let s = SampleStats::from_samples(&data, &workload);
        let v = s.get(VertexId(1)).unwrap();
        // w = (1+1)/(1+1) = 1.0 → key = 8.
        assert!((v.freq_per_weight() - 8.0).abs() < 1e-12);
    }
}
