//! Time-windowed gSketch (§5): "divide the time line into temporal
//! intervals and store the sketch statistics separately for each window.
//! The partitioning in any particular window is performed by using a
//! sample constructed by reservoir sampling from the previous window."
//!
//! Interval queries extrapolate from the stored windows that overlap the
//! requested `[t_start, t_end]`, scaling a partially-covered window's
//! estimate by the covered fraction.

use crate::gsketch::{GSketch, GSketchBuilder};
use crate::sink::EdgeSink;
use gstream::edge::{Edge, StreamEdge};
use gstream::sample::Reservoir;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch::SketchError;

/// Configuration of the windowed synopsis.
#[derive(Debug, Clone, Copy)]
pub struct WindowConfig {
    /// Length of each window in timestamp units.
    pub span: u64,
    /// Sketch memory per window, in bytes.
    pub memory_bytes_per_window: usize,
    /// Capacity of the reservoir sample handed to the next window.
    pub sample_capacity: usize,
    /// RNG seed (reservoir + sketch hashes).
    pub seed: u64,
}

impl WindowConfig {
    fn validate(&self) {
        assert!(self.span > 0, "window span must be positive");
        assert!(self.sample_capacity > 0, "sample capacity must be positive");
    }
}

/// One sealed (read-only) window.
#[derive(Debug, Clone)]
struct SealedWindow {
    start: u64,
    /// Exclusive end.
    end: u64,
    sketch: GSketch,
}

/// A time-windowed gSketch.
#[derive(Debug)]
pub struct WindowedGSketch {
    cfg: WindowConfig,
    builder: GSketchBuilder,
    sealed: Vec<SealedWindow>,
    current: GSketch,
    current_start: u64,
    /// Sample of the current window, used to partition the NEXT window.
    reservoir: Reservoir<StreamEdge>,
    rng: StdRng,
    windows_sealed: u64,
}

impl WindowedGSketch {
    /// Create a windowed synopsis starting at timestamp 0. The first
    /// window has no predecessor sample, so its sketch is outlier-only —
    /// exactly the §5 bootstrap situation.
    pub fn new(cfg: WindowConfig, builder: GSketchBuilder) -> Result<Self, SketchError> {
        cfg.validate();
        let current = builder
            .memory_bytes(cfg.memory_bytes_per_window)
            .build_from_sample(&[])?;
        Ok(Self {
            cfg,
            builder,
            sealed: Vec::new(),
            current,
            current_start: 0,
            reservoir: Reservoir::new(cfg.sample_capacity),
            rng: StdRng::seed_from_u64(cfg.seed),
            windows_sealed: 0,
        })
    }

    /// Ingest one arrival, surfacing window-rotation failures as a
    /// `Result`. Arrivals must have non-decreasing timestamps. This is
    /// the fallible form of [`EdgeSink::update`]; rotation can only fail
    /// if the per-window build configuration is invalid, which the
    /// constructor already vetted, so the trait method simply expects it.
    pub fn try_insert(&mut self, se: StreamEdge) -> Result<(), SketchError> {
        assert!(
            se.ts >= self.current_start,
            "timestamps must be non-decreasing across inserts"
        );
        while se.ts >= self.current_start + self.cfg.span {
            self.rotate()?;
        }
        self.current.update(se);
        self.reservoir.offer(se, &mut self.rng);
        Ok(())
    }

    /// Seal the current window and open the next, partitioned from the
    /// just-collected reservoir sample.
    fn rotate(&mut self) -> Result<(), SketchError> {
        let sample = std::mem::replace(
            &mut self.reservoir,
            Reservoir::new(self.cfg.sample_capacity),
        )
        .into_sample();
        let next = self
            .builder
            .memory_bytes(self.cfg.memory_bytes_per_window)
            .seed(self.cfg.seed.wrapping_add(self.windows_sealed + 1))
            .build_from_sample(&sample)?;
        let finished = std::mem::replace(&mut self.current, next);
        self.sealed.push(SealedWindow {
            start: self.current_start,
            end: self.current_start + self.cfg.span,
            sketch: finished,
        });
        self.current_start += self.cfg.span;
        self.windows_sealed += 1;
        Ok(())
    }

    /// The stored windows (sealed then current) with their time spans.
    fn windows(&self) -> impl Iterator<Item = (u64, u64, &GSketch)> {
        self.sealed
            .iter()
            .map(|s| (s.start, s.end, &s.sketch))
            .chain(std::iter::once((
                self.current_start,
                self.current_start + self.cfg.span,
                &self.current,
            )))
    }

    /// Estimate the frequency of `edge` over `[t_start, t_end]`
    /// (inclusive), extrapolating proportionally over partially covered
    /// windows (§5).
    pub fn estimate_interval(&self, edge: Edge, t_start: u64, t_end: u64) -> f64 {
        assert!(t_start <= t_end, "empty interval");
        let mut total = 0.0f64;
        for (ws, we, sk) in self.windows() {
            // Overlap of [t_start, t_end] with [ws, we).
            let lo = t_start.max(ws);
            let hi = (t_end + 1).min(we);
            if lo >= hi {
                continue;
            }
            let fraction = (hi - lo) as f64 / (we - ws) as f64;
            total += sk.estimate(edge) as f64 * fraction;
        }
        total
    }

    /// Batched [`estimate_interval`](Self::estimate_interval): each
    /// overlapping window answers the whole batch through its sketch's
    /// slot-sorted [`estimate_batch`](GSketch::estimate_batch), and the
    /// per-edge fractional contributions are accumulated across windows
    /// in window order — the same additions in the same order as the
    /// scalar path, so the sums are bit-identical. `out` is overwritten
    /// with one **unrounded** fractional estimate per edge: rounding is
    /// the caller's, once, at its aggregation boundary.
    pub fn estimate_interval_batch(
        &self,
        edges: &[Edge],
        t_start: u64,
        t_end: u64,
        out: &mut Vec<f64>,
    ) {
        assert!(t_start <= t_end, "empty interval");
        out.clear();
        out.resize(edges.len(), 0.0);
        let mut window_vals = Vec::new();
        for (ws, we, sk) in self.windows() {
            let lo = t_start.max(ws);
            let hi = (t_end + 1).min(we);
            if lo >= hi {
                continue;
            }
            let fraction = (hi - lo) as f64 / (we - ws) as f64;
            sk.estimate_batch(edges, &mut window_vals);
            for (acc, &v) in out.iter_mut().zip(&window_vals) {
                *acc += v as f64 * fraction;
            }
        }
    }

    /// Estimate over the whole lifetime observed so far.
    pub fn estimate_lifetime(&self, edge: Edge) -> f64 {
        let end = self.current_start + self.cfg.span - 1;
        self.estimate_interval(edge, 0, end)
    }

    /// Batched [`estimate_lifetime`](Self::estimate_lifetime) (see
    /// [`estimate_interval_batch`](Self::estimate_interval_batch) for
    /// the rounding contract).
    pub fn estimate_lifetime_batch(&self, edges: &[Edge], out: &mut Vec<f64>) {
        let end = self.current_start + self.cfg.span - 1;
        self.estimate_interval_batch(edges, 0, end, out);
    }

    /// Number of sealed windows.
    pub fn sealed_windows(&self) -> usize {
        self.sealed.len()
    }

    /// Start timestamp of the currently open window.
    pub fn current_window_start(&self) -> u64 {
        self.current_start
    }

    /// Total counter memory across all windows.
    pub fn bytes(&self) -> usize {
        self.sealed.iter().map(|s| s.sketch.bytes()).sum::<usize>() + self.current.bytes()
    }
}

impl EdgeSink for WindowedGSketch {
    fn update(&mut self, se: StreamEdge) {
        self.try_insert(se)
            .expect("window rotation cannot fail after construction validated the config");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WindowConfig {
        WindowConfig {
            span: 100,
            memory_bytes_per_window: 1 << 14,
            sample_capacity: 200,
            seed: 9,
        }
    }

    fn builder() -> GSketchBuilder {
        GSketch::builder().min_width(16)
    }

    fn wedge(s: u32, d: u32, ts: u64) -> StreamEdge {
        StreamEdge::unit(Edge::new(s, d), ts)
    }

    #[test]
    fn windows_rotate_on_time() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        for ts in 0..350u64 {
            w.try_insert(wedge(1, 2, ts)).unwrap();
        }
        assert_eq!(w.sealed_windows(), 3);
        assert_eq!(w.current_window_start(), 300);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_timestamps_rejected() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        w.try_insert(wedge(1, 2, 500)).unwrap();
        w.try_insert(wedge(1, 2, 10)).unwrap();
    }

    #[test]
    fn lifetime_estimate_covers_all_windows() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        // Edge appears once per timestamp over 4 windows: truth 400.
        for ts in 0..400u64 {
            w.try_insert(wedge(7, 8, ts)).unwrap();
        }
        let est = w.estimate_lifetime(Edge::new(7u32, 8u32));
        assert!(est >= 400.0, "lifetime estimate too low: {est}");
        assert!(est <= 500.0, "lifetime estimate inflated: {est}");
    }

    #[test]
    fn interval_query_isolates_windows() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        // Edge (1,2) only in window 0; edge (3,4) only in window 1.
        for ts in 0..100u64 {
            w.try_insert(wedge(1, 2, ts)).unwrap();
        }
        for ts in 100..200u64 {
            w.try_insert(wedge(3, 4, ts)).unwrap();
        }
        w.try_insert(wedge(9, 9, 250)).unwrap(); // open window 2
        let e12 = Edge::new(1u32, 2u32);
        let e34 = Edge::new(3u32, 4u32);
        // Window-0 interval sees (1,2) but not (3,4).
        assert!(w.estimate_interval(e12, 0, 99) >= 100.0);
        assert_eq!(w.estimate_interval(e34, 0, 99), 0.0);
        // Window-1 interval sees (3,4) but not (1,2).
        assert!(w.estimate_interval(e34, 100, 199) >= 100.0);
        assert_eq!(w.estimate_interval(e12, 100, 199), 0.0);
    }

    #[test]
    fn partial_overlap_extrapolates_proportionally() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        for ts in 0..100u64 {
            w.try_insert(wedge(1, 2, ts)).unwrap();
        }
        w.try_insert(wedge(9, 9, 150)).unwrap();
        let e = Edge::new(1u32, 2u32);
        // Asking for half of window 0 → about half the mass.
        let half = w.estimate_interval(e, 0, 49);
        let full = w.estimate_interval(e, 0, 99);
        assert!((half - full / 2.0).abs() < full * 0.05 + 1.0);
    }

    #[test]
    fn later_windows_are_partitioned_from_samples() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        // Two windows of traffic from a small vertex set: the second
        // window's sketch must have partitions (sample was non-empty).
        for ts in 0..200u64 {
            w.try_insert(wedge((ts % 10) as u32, 100, ts)).unwrap();
        }
        assert_eq!(w.sealed_windows(), 1); // window 1 currently open
        assert!(w.current_window_start() == 100);
        // The open window was partitioned from window 0's sample.
        assert!(w.bytes() > 0);
    }
}
