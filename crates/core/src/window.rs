//! Time-windowed gSketch (§5): "divide the time line into temporal
//! intervals and store the sketch statistics separately for each window.
//! The partitioning in any particular window is performed by using a
//! sample constructed by reservoir sampling from the previous window."
//!
//! Interval queries extrapolate from the stored windows that overlap the
//! requested `[t_start, t_end]`, scaling a partially-covered window's
//! estimate by the covered fraction.

use crate::gsketch::{GSketch, GSketchBuilder};
use crate::sink::EdgeSink;
use gstream::edge::{Edge, StreamEdge};
use gstream::sample::Reservoir;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch::SketchError;

/// Configuration of the windowed synopsis.
#[derive(Debug, Clone, Copy)]
pub struct WindowConfig {
    /// Length of each window in timestamp units.
    pub span: u64,
    /// Sketch memory per window, in bytes.
    pub memory_bytes_per_window: usize,
    /// Capacity of the reservoir sample handed to the next window.
    pub sample_capacity: usize,
    /// RNG seed (reservoir + sketch hashes).
    pub seed: u64,
}

impl WindowConfig {
    fn validate(&self) {
        assert!(self.span > 0, "window span must be positive");
        assert!(self.sample_capacity > 0, "sample capacity must be positive");
    }
}

/// An interval estimate with the quality attributes of the windows that
/// answered it (the windowed counterpart of [`crate::Estimate`]): the
/// fractional value, the fraction-scaled sum of the answering slots'
/// additive bounds, and the union-bound probability that every
/// contributing per-window bound held.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IntervalEstimate {
    /// The fractional interval estimate (unrounded; see
    /// [`WindowedGSketch::estimate_interval_batch`] for the rounding
    /// contract).
    pub value: f64,
    /// Additive error bound on `value`: `Σ_w fraction_w · bound_w`.
    pub error_bound: f64,
    /// Probability the bound holds: `max(0, 1 − Σ_w (1 − c_w))`.
    pub confidence: f64,
}

/// One sealed (read-only) window.
#[derive(Debug, Clone)]
struct SealedWindow {
    start: u64,
    /// Exclusive end.
    end: u64,
    sketch: GSketch,
}

/// A time-windowed gSketch.
#[derive(Debug)]
pub struct WindowedGSketch {
    cfg: WindowConfig,
    builder: GSketchBuilder,
    sealed: Vec<SealedWindow>,
    current: GSketch,
    current_start: u64,
    /// Sample of the current window, used to partition the NEXT window.
    reservoir: Reservoir<StreamEdge>,
    rng: StdRng,
    windows_sealed: u64,
}

impl WindowedGSketch {
    /// Create a windowed synopsis starting at timestamp 0. The first
    /// window has no predecessor sample, so its sketch is outlier-only —
    /// exactly the §5 bootstrap situation.
    pub fn new(cfg: WindowConfig, builder: GSketchBuilder) -> Result<Self, SketchError> {
        cfg.validate();
        let current = builder
            .memory_bytes(cfg.memory_bytes_per_window)
            .build_from_sample(&[])?;
        Ok(Self {
            cfg,
            builder,
            sealed: Vec::new(),
            current,
            current_start: 0,
            reservoir: Reservoir::new(cfg.sample_capacity),
            rng: StdRng::seed_from_u64(cfg.seed),
            windows_sealed: 0,
        })
    }

    /// Ingest one arrival, surfacing window-rotation failures as a
    /// `Result`. Arrivals must have non-decreasing timestamps. This is
    /// the fallible form of [`EdgeSink::update`]; rotation can only fail
    /// if the per-window build configuration is invalid, which the
    /// constructor already vetted, so the trait method simply expects it.
    ///
    /// A timestamp gap wider than one window rotates **once** (sealing
    /// the window that was open when the gap started) and then jumps
    /// straight to the window containing `se.ts`: the skipped windows
    /// absorbed nothing, contribute exactly 0 to every interval, and
    /// are never materialized — so epoch-style timestamps (first
    /// arrival at t ≈ 10⁹ with a span of 10³) cost O(1), not millions
    /// of sealed windows. A window abutting `u64::MAX` simply never
    /// rotates again (its exclusive end does not fit in the timestamp
    /// domain).
    pub fn try_insert(&mut self, se: StreamEdge) -> Result<(), SketchError> {
        assert!(
            se.ts >= self.current_start,
            "timestamps must be non-decreasing across inserts"
        );
        if let Some(boundary) = self.current_start.checked_add(self.cfg.span) {
            if se.ts >= boundary {
                self.rotate()?;
                // Skip fully-empty gap windows without materializing
                // them (window boundaries are the multiples of `span`).
                let target = se.ts - se.ts % self.cfg.span;
                if target > self.current_start {
                    self.current_start = target;
                }
            }
        }
        self.current.update(se);
        self.reservoir.offer(se, &mut self.rng);
        Ok(())
    }

    /// Ingest a materialized stream through the **owner-sharded engine**
    /// (DESIGN.md §11), committing each window's counters from up to
    /// `owners` exclusive slice owners while window rotation stays
    /// sequential — the epoch-based handoff that lifts the windowed
    /// deployment onto the parallel path.
    ///
    /// Windows are natural epochs: the stream is segmented at window
    /// boundaries, each segment is committed by one
    /// [`crate::ShardedIngest`] run into the open window, and a rotation
    /// only happens *between* runs — the scope join at the end of a run
    /// quiesces every owner, so the sealed window is frozen (no writer
    /// can touch it again) before window N+1 opens. Reservoir offers are
    /// replayed sequentially per epoch in arrival order with the same
    /// RNG, so the sample handed to the next window's partitioner — and
    /// therefore every later window's layout — is bit-identical to a
    /// sequential [`try_insert`](Self::try_insert) loop; counter
    /// parity holds because saturating addition commutes (pinned by the
    /// `backend_parity` proptests). Timestamps must be non-decreasing,
    /// exactly as for `try_insert`; `oversubscribe` forces the requested
    /// owner count past the host's parallelism (correctness tests).
    pub fn try_ingest_sharded(
        &mut self,
        stream: &[StreamEdge],
        owners: usize,
        oversubscribe: bool,
    ) -> Result<crate::IngestReport, SketchError> {
        let mut report = crate::IngestReport {
            arrivals: 0,
            chunks: 0,
            workers: 1,
        };
        if stream.is_empty() {
            return Ok(report);
        }
        // Recycled stand-in for the open window while its sketch is
        // wrapped for the sharded run (swapped back out afterwards).
        let mut spare = self
            .builder
            .memory_bytes(self.cfg.memory_bytes_per_window)
            .build_from_sample(&[])?;
        let mut rest = stream;
        while !rest.is_empty() {
            // Epoch = the maximal prefix landing in the open window.
            let epoch_len = match self.current_start.checked_add(self.cfg.span) {
                Some(boundary) => rest.partition_point(|se| se.ts < boundary),
                // A window abutting u64::MAX never rotates again.
                None => rest.len(),
            };
            if epoch_len == 0 {
                // The next arrival starts at or past the boundary:
                // rotate once, then jump over fully-empty gap windows
                // (the same once-then-jump rule as `try_insert`).
                self.rotate()?;
                let ts = rest[0].ts;
                let target = ts - ts % self.cfg.span;
                if target > self.current_start {
                    self.current_start = target;
                }
                continue;
            }
            let (epoch, tail) = rest.split_at(epoch_len);
            rest = tail;
            assert!(
                epoch.iter().all(|se| se.ts >= self.current_start),
                "timestamps must be non-decreasing across inserts"
            );
            // Counters: one sharded run into the open window. The scope
            // join inside `run_slice` quiesces every owner before the
            // swap back, so rotation below never races a writer.
            let current = std::mem::replace(&mut self.current, spare);
            let mut conc = crate::ConcurrentGSketch::from_gsketch(current);
            let r = crate::ShardedIngest::new(&mut conc, owners)
                .oversubscribe(oversubscribe)
                .run_slice(epoch);
            spare = std::mem::replace(&mut self.current, conc.into_gsketch());
            report.arrivals += r.arrivals;
            report.chunks += r.chunks;
            report.workers = report.workers.max(r.workers);
            // Sample: reservoir offers stay sequential — offer order
            // drives the RNG, so this is what keeps later windows'
            // partitionings bit-identical to the sequential path.
            for se in epoch {
                self.reservoir.offer(*se, &mut self.rng);
            }
        }
        Ok(report)
    }

    /// Seal the current window and open the next, partitioned from the
    /// just-collected reservoir sample. Only called when the current
    /// window's exclusive end fits in the timestamp domain (the caller
    /// checked `current_start + span`).
    fn rotate(&mut self) -> Result<(), SketchError> {
        let sample = std::mem::replace(
            &mut self.reservoir,
            Reservoir::new(self.cfg.sample_capacity),
        )
        .into_sample();
        let next = self
            .builder
            .memory_bytes(self.cfg.memory_bytes_per_window)
            .seed(self.cfg.seed.wrapping_add(self.windows_sealed + 1))
            .build_from_sample(&sample)?;
        let finished = std::mem::replace(&mut self.current, next);
        self.sealed.push(SealedWindow {
            start: self.current_start,
            end: self.current_start + self.cfg.span,
            sketch: finished,
        });
        self.current_start += self.cfg.span;
        self.windows_sealed += 1;
        Ok(())
    }

    /// The stored windows (sealed then current) with their time spans.
    /// The current window's exclusive end saturates: a window abutting
    /// `u64::MAX` covers the rest of the timestamp domain.
    fn windows(&self) -> impl Iterator<Item = (u64, u64, &GSketch)> {
        self.sealed
            .iter()
            .map(|s| (s.start, s.end, &s.sketch))
            .chain(std::iter::once((
                self.current_start,
                self.current_start.saturating_add(self.cfg.span),
                &self.current,
            )))
    }

    /// Estimate the frequency of `edge` over `[t_start, t_end]`
    /// (inclusive), extrapolating proportionally over partially covered
    /// windows (§5). `t_end = u64::MAX` is the open-ended "until now"
    /// query: the inclusive→exclusive conversion saturates instead of
    /// wrapping, so it covers every stored window (it used to overflow —
    /// a panic in debug builds and a silent zero in release builds).
    pub fn estimate_interval(&self, edge: Edge, t_start: u64, t_end: u64) -> f64 {
        assert!(t_start <= t_end, "empty interval");
        let mut total = 0.0f64;
        for (ws, we, sk) in self.windows() {
            // Overlap of [t_start, t_end] with [ws, we).
            let lo = t_start.max(ws);
            let hi = t_end.saturating_add(1).min(we);
            if lo >= hi {
                continue;
            }
            let fraction = (hi - lo) as f64 / (we - ws) as f64;
            total += sk.estimate(edge) as f64 * fraction;
        }
        total
    }

    /// Batched [`estimate_interval`](Self::estimate_interval): each
    /// overlapping window answers the whole batch through its sketch's
    /// slot-sorted [`estimate_batch`](GSketch::estimate_batch), and the
    /// per-edge fractional contributions are accumulated across windows
    /// in window order — the same additions in the same order as the
    /// scalar path, so the sums are bit-identical. `out` is overwritten
    /// with one **unrounded** fractional estimate per edge: rounding is
    /// the caller's, once, at its aggregation boundary.
    pub fn estimate_interval_batch(
        &self,
        edges: &[Edge],
        t_start: u64,
        t_end: u64,
        out: &mut Vec<f64>,
    ) {
        assert!(t_start <= t_end, "empty interval");
        out.clear();
        out.resize(edges.len(), 0.0);
        let mut window_vals = Vec::new();
        for (ws, we, sk) in self.windows() {
            let lo = t_start.max(ws);
            let hi = t_end.saturating_add(1).min(we);
            if lo >= hi {
                continue;
            }
            let fraction = (hi - lo) as f64 / (we - ws) as f64;
            sk.estimate_batch(edges, &mut window_vals);
            for (acc, &v) in out.iter_mut().zip(&window_vals) {
                *acc += v as f64 * fraction;
            }
        }
    }

    /// Batched interval estimation **with confidence intervals**: `out`
    /// is overwritten with one [`IntervalEstimate`] per edge, in query
    /// order. Each overlapping window answers the whole batch through
    /// its sketch's [`estimate_detailed_batch`](GSketch::estimate_detailed_batch)
    /// (one batched kernel pass per window, per-slot bounds attached at
    /// no extra probe cost); per-edge values *and* error bounds are
    /// accumulated scaled by the window's covered fraction, and the
    /// confidence of the combined bound is the union bound over the
    /// contributing windows: `max(0, 1 − Σ(1 − c_w))` — the probability
    /// that *every* per-window bound held. Values are bit-identical to
    /// [`estimate_interval_batch`](Self::estimate_interval_batch).
    pub fn estimate_interval_detailed_batch(
        &self,
        edges: &[Edge],
        t_start: u64,
        t_end: u64,
        out: &mut Vec<IntervalEstimate>,
    ) {
        assert!(t_start <= t_end, "empty interval");
        out.clear();
        out.resize(edges.len(), IntervalEstimate::default());
        let mut window_rows = Vec::new();
        let mut miss_probability = 0.0f64;
        let mut covered = false;
        for (ws, we, sk) in self.windows() {
            let lo = t_start.max(ws);
            let hi = t_end.saturating_add(1).min(we);
            if lo >= hi {
                continue;
            }
            let fraction = (hi - lo) as f64 / (we - ws) as f64;
            sk.estimate_detailed_batch(edges, &mut window_rows);
            for (acc, row) in out.iter_mut().zip(&window_rows) {
                acc.value += row.value as f64 * fraction;
                acc.error_bound += row.error_bound * fraction;
            }
            // All rows of one window share the window's confidence.
            if let Some(row) = window_rows.first() {
                miss_probability += 1.0 - row.confidence;
                covered = true;
            }
        }
        let confidence = if covered {
            (1.0 - miss_probability).max(0.0)
        } else {
            // No stored window overlaps: the zero answer is certain.
            1.0
        };
        for acc in out.iter_mut() {
            acc.confidence = confidence;
        }
    }

    /// Estimate over the whole lifetime observed so far.
    pub fn estimate_lifetime(&self, edge: Edge) -> f64 {
        self.estimate_interval(edge, 0, self.lifetime_end())
    }

    /// Batched [`estimate_lifetime`](Self::estimate_lifetime) (see
    /// [`estimate_interval_batch`](Self::estimate_interval_batch) for
    /// the rounding contract).
    pub fn estimate_lifetime_batch(&self, edges: &[Edge], out: &mut Vec<f64>) {
        self.estimate_interval_batch(edges, 0, self.lifetime_end(), out);
    }

    /// Last timestamp covered by the stored windows (the inclusive end
    /// of a lifetime query; saturating so a window abutting `u64::MAX`
    /// cannot wrap).
    pub fn lifetime_end(&self) -> u64 {
        self.current_start.saturating_add(self.cfg.span - 1)
    }

    /// Number of sealed windows.
    pub fn sealed_windows(&self) -> usize {
        self.sealed.len()
    }

    /// Start timestamp of the currently open window.
    pub fn current_window_start(&self) -> u64 {
        self.current_start
    }

    /// Total counter memory across all windows.
    pub fn bytes(&self) -> usize {
        self.sealed.iter().map(|s| s.sketch.bytes()).sum::<usize>() + self.current.bytes()
    }
}

impl EdgeSink for WindowedGSketch {
    fn update(&mut self, se: StreamEdge) {
        self.try_insert(se)
            // lint: allow(no-panics) — `try_insert` only errors on a config the
            // constructor already validated; rotation itself is infallible.
            .expect("window rotation cannot fail after construction validated the config");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WindowConfig {
        WindowConfig {
            span: 100,
            memory_bytes_per_window: 1 << 14,
            sample_capacity: 200,
            seed: 9,
        }
    }

    fn builder() -> GSketchBuilder {
        GSketch::builder().min_width(16)
    }

    fn wedge(s: u32, d: u32, ts: u64) -> StreamEdge {
        StreamEdge::unit(Edge::new(s, d), ts)
    }

    #[test]
    fn windows_rotate_on_time() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        for ts in 0..350u64 {
            w.try_insert(wedge(1, 2, ts)).unwrap();
        }
        assert_eq!(w.sealed_windows(), 3);
        assert_eq!(w.current_window_start(), 300);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_timestamps_rejected() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        w.try_insert(wedge(1, 2, 500)).unwrap();
        w.try_insert(wedge(1, 2, 10)).unwrap();
    }

    #[test]
    fn lifetime_estimate_covers_all_windows() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        // Edge appears once per timestamp over 4 windows: truth 400.
        for ts in 0..400u64 {
            w.try_insert(wedge(7, 8, ts)).unwrap();
        }
        let est = w.estimate_lifetime(Edge::new(7u32, 8u32));
        assert!(est >= 400.0, "lifetime estimate too low: {est}");
        assert!(est <= 500.0, "lifetime estimate inflated: {est}");
    }

    #[test]
    fn interval_query_isolates_windows() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        // Edge (1,2) only in window 0; edge (3,4) only in window 1.
        for ts in 0..100u64 {
            w.try_insert(wedge(1, 2, ts)).unwrap();
        }
        for ts in 100..200u64 {
            w.try_insert(wedge(3, 4, ts)).unwrap();
        }
        w.try_insert(wedge(9, 9, 250)).unwrap(); // open window 2
        let e12 = Edge::new(1u32, 2u32);
        let e34 = Edge::new(3u32, 4u32);
        // Window-0 interval sees (1,2) but not (3,4).
        assert!(w.estimate_interval(e12, 0, 99) >= 100.0);
        assert_eq!(w.estimate_interval(e34, 0, 99), 0.0);
        // Window-1 interval sees (3,4) but not (1,2).
        assert!(w.estimate_interval(e34, 100, 199) >= 100.0);
        assert_eq!(w.estimate_interval(e12, 100, 199), 0.0);
    }

    #[test]
    fn partial_overlap_extrapolates_proportionally() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        for ts in 0..100u64 {
            w.try_insert(wedge(1, 2, ts)).unwrap();
        }
        w.try_insert(wedge(9, 9, 150)).unwrap();
        let e = Edge::new(1u32, 2u32);
        // Asking for half of window 0 → about half the mass.
        let half = w.estimate_interval(e, 0, 49);
        let full = w.estimate_interval(e, 0, 99);
        assert!((half - full / 2.0).abs() < full * 0.05 + 1.0);
    }

    /// A timestamp gap wider than one window must not materialize the
    /// empty windows it skips: epoch-style timestamps are O(1) per
    /// arrival, and queries over the gap answer 0.
    #[test]
    fn timestamp_gaps_skip_empty_windows() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        for ts in 0..150u64 {
            w.try_insert(wedge(1, 2, ts)).unwrap();
        }
        // Jump ~17 million windows forward: must be instant and must
        // not allocate a sealed window per skipped span.
        w.try_insert(wedge(3, 4, 1_700_000_000)).unwrap();
        assert!(
            w.sealed_windows() <= 3,
            "gap materialized {} windows",
            w.sealed_windows()
        );
        assert_eq!(w.current_window_start(), 1_700_000_000);
        // Pre-gap mass is intact, the gap answers 0, the post-gap
        // window answers its own mass.
        let e12 = Edge::new(1u32, 2u32);
        let e34 = Edge::new(3u32, 4u32);
        // [0, 149] fully covers window [0,100) and half of [100,200):
        // 100 + 0.5·50 under the uniform-extrapolation semantics.
        assert!(w.estimate_interval(e12, 0, 149) >= 125.0);
        assert!(w.estimate_interval(e12, 0, 199) >= 150.0);
        assert_eq!(w.estimate_interval(e12, 1_000, 999_999), 0.0);
        assert_eq!(w.estimate_interval(e34, 1_000, 999_999), 0.0);
        assert!(w.estimate_interval(e34, 1_700_000_000, u64::MAX) >= 1.0);
        assert!(w.estimate_lifetime(e12) >= 150.0);
    }

    /// Timestamps at the top of the u64 domain must neither overflow
    /// the rotation boundary nor wedge the insert loop.
    #[test]
    fn timestamps_near_u64_max_are_legal() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        w.try_insert(wedge(1, 2, 5)).unwrap();
        w.try_insert(wedge(1, 2, u64::MAX - 7)).unwrap();
        w.try_insert(wedge(1, 2, u64::MAX)).unwrap(); // same final window
        let e = Edge::new(1u32, 2u32);
        assert!(w.estimate_interval(e, 0, u64::MAX) >= 3.0);
        assert!(w.estimate_lifetime(e) >= 3.0);
        let mut batch = Vec::new();
        w.estimate_interval_batch(&[e], u64::MAX - 100, u64::MAX, &mut batch);
        assert!(batch[0] >= 2.0);
    }

    /// The inclusive interval end must saturate, not wrap: an
    /// open-ended `[0, u64::MAX]` query covers the whole lifetime
    /// (this used to overflow `t_end + 1` — panicking in debug builds
    /// and silently answering 0 in release builds).
    #[test]
    fn open_ended_interval_covers_everything() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        for ts in 0..250u64 {
            w.try_insert(wedge(1, 2, ts)).unwrap();
        }
        let e = Edge::new(1u32, 2u32);
        let open = w.estimate_interval(e, 0, u64::MAX);
        let lifetime = w.estimate_lifetime(e);
        assert_eq!(open.to_bits(), lifetime.to_bits());
        assert!(open >= 250.0, "open-ended interval lost coverage: {open}");
        let mut batch = Vec::new();
        w.estimate_interval_batch(&[e], 0, u64::MAX, &mut batch);
        assert_eq!(batch[0].to_bits(), open.to_bits());
    }

    /// Detailed interval rows: values bit-identical to the plain batch,
    /// bounds positive where windows contribute, confidence the union
    /// bound over contributing windows (and exactly 1 when no window
    /// overlaps — the zero answer is certain).
    #[test]
    fn detailed_interval_batch_matches_plain_batch() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        for ts in 0..320u64 {
            w.try_insert(wedge((ts % 5) as u32, 8, ts)).unwrap();
        }
        let edges: Vec<Edge> = (0..5u32).map(|v| Edge::new(v, 8u32)).collect();
        let mut plain = Vec::new();
        let mut rows = Vec::new();
        for (ts, te) in [(0u64, 319u64), (37, 211), (150, 150), (0, u64::MAX)] {
            w.estimate_interval_batch(&edges, ts, te, &mut plain);
            w.estimate_interval_detailed_batch(&edges, ts, te, &mut rows);
            assert_eq!(rows.len(), edges.len());
            for (row, &v) in rows.iter().zip(&plain) {
                assert_eq!(row.value.to_bits(), v.to_bits());
                assert!(row.error_bound >= 0.0);
                assert!((0.0..=1.0).contains(&row.confidence));
            }
        }
        // An interval past every stored window: zero, with certainty.
        let horizon = w.lifetime_end();
        w.estimate_interval_detailed_batch(&edges, horizon + 1, horizon + 10, &mut rows);
        for row in &rows {
            assert_eq!(row.value, 0.0);
            assert_eq!(row.error_bound, 0.0);
            assert_eq!(row.confidence, 1.0);
        }
    }

    /// The epoch-handoff sharded path — counters committed by exclusive
    /// slice owners, rotations sequential at quiesced boundaries — must
    /// be bit-identical to a sequential `try_insert` loop: same sealed
    /// windows, same lifetime and interval answers (including the
    /// fractional parts), across single- and multi-owner runs, window
    /// rotations mid-stream, timestamp gaps, and calls split mid-window.
    #[test]
    fn sharded_ingest_matches_sequential() {
        let stream: Vec<StreamEdge> = (0..650u64)
            .map(|ts| {
                let src = if ts % 3 == 0 { 1 } else { (ts % 23) as u32 };
                StreamEdge::weighted(Edge::new(src, (ts % 7) as u32 + 50), ts, ts % 4 + 1)
            })
            // A gap wider than a window, then a far tail window.
            .chain((0..40u64).map(|i| StreamEdge::unit(Edge::new(3u32, 4u32), 2_000 + i)))
            .collect();
        let edges: Vec<Edge> = stream.iter().map(|se| se.edge).collect();

        let mut seq = WindowedGSketch::new(cfg(), builder()).unwrap();
        for se in &stream {
            seq.try_insert(*se).unwrap();
        }
        for owners in [1usize, 4] {
            let mut par = WindowedGSketch::new(cfg(), builder()).unwrap();
            // Split mid-window: engine state must carry across calls.
            let report = par
                .try_ingest_sharded(&stream[..350], owners, true)
                .unwrap();
            assert_eq!(report.arrivals, 350);
            par.try_ingest_sharded(&stream[350..], owners, true)
                .unwrap();
            assert_eq!(
                par.sealed_windows(),
                seq.sealed_windows(),
                "{owners} owners"
            );
            assert_eq!(par.current_window_start(), seq.current_window_start());
            let mut a = Vec::new();
            let mut b = Vec::new();
            par.estimate_lifetime_batch(&edges, &mut a);
            seq.estimate_lifetime_batch(&edges, &mut b);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{owners} owners");
            }
            par.estimate_interval_batch(&edges, 120, 410, &mut a);
            seq.estimate_interval_batch(&edges, 120, 410, &mut b);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{owners} owners");
            }
        }
    }

    #[test]
    fn later_windows_are_partitioned_from_samples() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        // Two windows of traffic from a small vertex set: the second
        // window's sketch must have partitions (sample was non-empty).
        for ts in 0..200u64 {
            w.try_insert(wedge((ts % 10) as u32, 100, ts)).unwrap();
        }
        assert_eq!(w.sealed_windows(), 1); // window 1 currently open
        assert!(w.current_window_start() == 100);
        // The open window was partitioned from window 0's sample.
        assert!(w.bytes() > 0);
    }
}
