//! Time-windowed gSketch (§5): "divide the time line into temporal
//! intervals and store the sketch statistics separately for each window.
//! The partitioning in any particular window is performed by using a
//! sample constructed by reservoir sampling from the previous window."
//!
//! Interval queries extrapolate from the stored windows that overlap the
//! requested `[t_start, t_end]`, scaling a partially-covered window's
//! estimate by the covered fraction.
//!
//! Two growth controls ride on top of the paper's scheme (DESIGN.md §13):
//!
//! * **Durable snapshots** — the full deployment state (sealed windows,
//!   the live window, the reservoir and its RNG, rotation bookkeeping)
//!   serializes through [`crate::persist::save_windowed`] and loads back
//!   bit-identically, including mid-window;
//! * **Exponential tiering** — with a horizon
//!   ([`WindowedGSketch::with_horizon`]), sealed windows older than the
//!   `keep` most recent are *coarsened*: each expiring window's synopsis
//!   is folded down to one width-`quantum` backend sketch
//!   ([`GSketch::fold`]), and adjacent tiers holding equally many
//!   windows merge pairwise, so `n` expired windows occupy `O(log n)`
//!   tiers. Tier answers carry the correspondingly widened
//!   `e·N_tier/quantum` bound — coarse history is cheap, and honest
//!   about it.

use crate::gsketch::{GSketch, GSketchBuilder};
use crate::sink::EdgeSink;
use gstream::edge::{Edge, StreamEdge};
use gstream::sample::Reservoir;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sketch::{CmArena, FrequencySketch, SketchError};

/// Configuration of the windowed synopsis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Length of each window in timestamp units.
    pub span: u64,
    /// Sketch memory per window, in bytes.
    pub memory_bytes_per_window: usize,
    /// Capacity of the reservoir sample handed to the next window.
    pub sample_capacity: usize,
    /// RNG seed (reservoir + sketch hashes).
    pub seed: u64,
}

impl WindowConfig {
    fn validate(&self) {
        // lint: allow(no-panics) — documented precondition: window configuration is validated once at construction; misuse must fail fast, release builds included.
        assert!(self.span > 0, "window span must be positive");
        assert!(self.sample_capacity > 0, "sample capacity must be positive");
    }
}

/// An interval estimate with the quality attributes of the windows that
/// answered it (the windowed counterpart of [`crate::Estimate`]): the
/// fractional value, the fraction-scaled sum of the answering slots'
/// additive bounds, and the union-bound probability that every
/// contributing per-window bound held.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IntervalEstimate {
    /// The fractional interval estimate (unrounded; see
    /// [`WindowedGSketch::estimate_interval_batch`] for the rounding
    /// contract).
    pub value: f64,
    /// Additive error bound on `value`: `Σ_w fraction_w · bound_w`.
    pub error_bound: f64,
    /// Probability the bound holds: `max(0, 1 − Σ_w (1 − c_w))`.
    pub confidence: f64,
}

/// One sealed (read-only) window.
#[derive(Debug, Clone)]
struct SealedWindow<B: FrequencySketch> {
    start: u64,
    /// Exclusive end.
    end: u64,
    sketch: GSketch<B>,
}

/// One coarsened tier: `windows` consecutive expired windows folded and
/// merged into a single width-`quantum` backend sketch summarizing their
/// union. Tiers are kept oldest-first and never overlap.
#[derive(Debug, Clone)]
struct Tier<B: FrequencySketch> {
    start: u64,
    /// Exclusive end.
    end: u64,
    /// How many full-fidelity windows this tier absorbed.
    windows: u64,
    sketch: B,
}

/// Tiering parameters fixed at construction (see
/// [`WindowedGSketch::with_horizon`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HorizonCfg {
    /// Number of most-recent sealed windows kept at full fidelity.
    keep: usize,
    /// Width of every coarsened tier sketch (and the quantum every
    /// window's slot widths are rounded to, so folding is legal).
    quantum: usize,
}

/// The synopsis answering one time span: a full-fidelity window or a
/// coarsened tier.
enum SpanSketch<'a, B: FrequencySketch> {
    Window(&'a GSketch<B>),
    Tier(&'a B),
}

/// A time-windowed gSketch, generic over the synopsis backend like
/// [`GSketch`] itself (arena by default; the `*_backend` constructors
/// pick another).
#[derive(Debug)]
pub struct WindowedGSketch<B: FrequencySketch = CmArena> {
    cfg: WindowConfig,
    builder: GSketchBuilder,
    horizon: Option<HorizonCfg>,
    /// Coarsened history, oldest first, entirely before every sealed
    /// window.
    tiers: Vec<Tier<B>>,
    sealed: Vec<SealedWindow<B>>,
    current: GSketch<B>,
    current_start: u64,
    /// Sample of the current window, used to partition the NEXT window.
    reservoir: Reservoir<StreamEdge>,
    rng: StdRng,
    windows_sealed: u64,
    /// Total windows folded into tiers so far. Monotone; replay memos
    /// use it as the invalidation signal for sealed-interval answers
    /// (coarsening is the *only* mutation of sealed history).
    coarsenings: u64,
    /// Set by a horizon-limited snapshot load: sealed windows outside
    /// the requested span were skipped, so answers are only valid
    /// inside it and re-saving is refused.
    partial: bool,
}

impl WindowedGSketch {
    /// Create a windowed synopsis starting at timestamp 0 with the
    /// default (arena) backend. The first window has no predecessor
    /// sample, so its sketch is outlier-only — exactly the §5 bootstrap
    /// situation.
    pub fn new(cfg: WindowConfig, builder: GSketchBuilder) -> Result<Self, SketchError> {
        Self::new_backend(cfg, builder)
    }

    /// [`Self::new`] with exponential tiering: the `keep` most recent
    /// sealed windows stay at full fidelity, older ones coarsen into
    /// tiers (default backend; see
    /// [`with_horizon_backend`](Self::with_horizon_backend)).
    pub fn with_horizon(
        cfg: WindowConfig,
        builder: GSketchBuilder,
        keep: usize,
    ) -> Result<Self, SketchError> {
        Self::with_horizon_backend(cfg, builder, keep)
    }

    /// Ingest a materialized stream through the **owner-sharded engine**
    /// (DESIGN.md §11), committing each window's counters from up to
    /// `owners` exclusive slice owners while window rotation stays
    /// sequential — the epoch-based handoff that lifts the windowed
    /// deployment onto the parallel path.
    ///
    /// Windows are natural epochs: the stream is segmented at window
    /// boundaries, each segment is committed by one
    /// [`crate::ShardedIngest`] run into the open window, and a rotation
    /// only happens *between* runs — the scope join at the end of a run
    /// quiesces every owner, so the sealed window is frozen (no writer
    /// can touch it again) before window N+1 opens. Reservoir offers are
    /// replayed sequentially per epoch in arrival order with the same
    /// RNG, so the sample handed to the next window's partitioner — and
    /// therefore every later window's layout — is bit-identical to a
    /// sequential [`try_insert`](Self::try_insert) loop; counter
    /// parity holds because saturating addition commutes (pinned by the
    /// `backend_parity` proptests). Timestamps must be non-decreasing,
    /// exactly as for `try_insert`; `oversubscribe` forces the requested
    /// owner count past the host's parallelism (correctness tests).
    pub fn try_ingest_sharded(
        &mut self,
        stream: &[StreamEdge],
        owners: usize,
        oversubscribe: bool,
    ) -> Result<crate::IngestReport, SketchError> {
        let mut report = crate::IngestReport {
            arrivals: 0,
            chunks: 0,
            workers: 1,
        };
        if stream.is_empty() {
            return Ok(report);
        }
        // Recycled stand-in for the open window while its sketch is
        // wrapped for the sharded run (swapped back out afterwards).
        let mut spare = self
            .builder
            .memory_bytes(self.cfg.memory_bytes_per_window)
            .build_from_sample(&[])?;
        let mut rest = stream;
        while !rest.is_empty() {
            // Epoch = the maximal prefix landing in the open window.
            let epoch_len = match self.current_start.checked_add(self.cfg.span) {
                Some(boundary) => rest.partition_point(|se| se.ts < boundary),
                // A window abutting u64::MAX never rotates again.
                None => rest.len(),
            };
            if epoch_len == 0 {
                // The next arrival starts at or past the boundary:
                // rotate once, then jump over fully-empty gap windows
                // (the same once-then-jump rule as `try_insert`).
                self.rotate()?;
                let ts = rest[0].ts;
                let target = ts - ts % self.cfg.span;
                if target > self.current_start {
                    self.current_start = target;
                }
                continue;
            }
            let (epoch, tail) = rest.split_at(epoch_len);
            rest = tail;
            // lint: allow(no-panics) — documented precondition: window configuration is validated once at construction; misuse must fail fast, release builds included.
            assert!(
                epoch.iter().all(|se| se.ts >= self.current_start),
                "timestamps must be non-decreasing across inserts"
            );
            // Counters: one sharded run into the open window. The scope
            // join inside `run_slice` quiesces every owner before the
            // swap back, so rotation below never races a writer.
            let current = std::mem::replace(&mut self.current, spare);
            let mut conc = crate::ConcurrentGSketch::from_gsketch(current);
            let r = crate::ShardedIngest::new(&mut conc, owners)
                .oversubscribe(oversubscribe)
                .run_slice(epoch);
            spare = std::mem::replace(&mut self.current, conc.into_gsketch());
            report.arrivals += r.arrivals;
            report.chunks += r.chunks;
            report.workers = report.workers.max(r.workers);
            // Sample: reservoir offers stay sequential — offer order
            // drives the RNG, so this is what keeps later windows'
            // partitionings bit-identical to the sequential path.
            for se in epoch {
                self.reservoir.offer(*se, &mut self.rng);
            }
        }
        Ok(report)
    }
}

impl<B: FrequencySketch> WindowedGSketch<B> {
    /// [`WindowedGSketch::new`] with an explicit synopsis backend.
    pub fn new_backend(cfg: WindowConfig, builder: GSketchBuilder) -> Result<Self, SketchError> {
        Self::build(cfg, builder, None)
    }

    /// [`WindowedGSketch::with_horizon`] with an explicit backend: keep
    /// the `keep` most recent sealed windows at full fidelity and
    /// coarsen older ones into exponentially-merged tiers.
    ///
    /// Tiering constrains the build two ways, both applied here once:
    /// every window's slot widths are rounded to multiples of the fold
    /// quantum (so expiring windows fold legally), and every window
    /// shares one hash-family seed (`cfg.seed`) instead of the default
    /// per-window reseed — folded tiers can only merge when their hash
    /// families agree. Estimates therefore differ from an un-tiered
    /// instance even over recent windows; what tiering preserves is the
    /// snapshot contract (save/load/append stay bit-identical to a
    /// rebuild under the *same* configuration).
    pub fn with_horizon_backend(
        cfg: WindowConfig,
        builder: GSketchBuilder,
        keep: usize,
    ) -> Result<Self, SketchError> {
        let quantum = builder.fold_quantum();
        let builder = builder.width_quantum(quantum).seed(cfg.seed);
        Self::build(cfg, builder, Some(HorizonCfg { keep, quantum }))
    }

    fn build(
        cfg: WindowConfig,
        builder: GSketchBuilder,
        horizon: Option<HorizonCfg>,
    ) -> Result<Self, SketchError> {
        cfg.validate();
        let current = builder
            .memory_bytes(cfg.memory_bytes_per_window)
            .build_from_sample_backend::<B>(&[])?;
        Ok(Self {
            cfg,
            builder,
            horizon,
            tiers: Vec::new(),
            sealed: Vec::new(),
            current,
            current_start: 0,
            reservoir: Reservoir::new(cfg.sample_capacity),
            rng: StdRng::seed_from_u64(cfg.seed),
            windows_sealed: 0,
            coarsenings: 0,
            partial: false,
        })
    }

    /// Ingest one arrival, surfacing window-rotation failures as a
    /// `Result`. Arrivals must have non-decreasing timestamps. This is
    /// the fallible form of [`EdgeSink::update`]; rotation can only fail
    /// if the per-window build configuration is invalid, which the
    /// constructor already vetted, so the trait method simply expects it.
    ///
    /// A timestamp gap wider than one window rotates **once** (sealing
    /// the window that was open when the gap started) and then jumps
    /// straight to the window containing `se.ts`: the skipped windows
    /// absorbed nothing, contribute exactly 0 to every interval, and
    /// are never materialized — so epoch-style timestamps (first
    /// arrival at t ≈ 10⁹ with a span of 10³) cost O(1), not millions
    /// of sealed windows. A window abutting `u64::MAX` simply never
    /// rotates again (its exclusive end does not fit in the timestamp
    /// domain).
    pub fn try_insert(&mut self, se: StreamEdge) -> Result<(), SketchError> {
        // lint: allow(no-panics) — documented precondition: window configuration is validated once at construction; misuse must fail fast, release builds included.
        assert!(
            se.ts >= self.current_start,
            "timestamps must be non-decreasing across inserts"
        );
        if let Some(boundary) = self.current_start.checked_add(self.cfg.span) {
            if se.ts >= boundary {
                self.rotate()?;
                // Skip fully-empty gap windows without materializing
                // them (window boundaries are the multiples of `span`).
                let target = se.ts - se.ts % self.cfg.span;
                if target > self.current_start {
                    self.current_start = target;
                }
            }
        }
        self.current.update(se);
        self.reservoir.offer(se, &mut self.rng);
        Ok(())
    }

    /// Seal the current window and open the next, partitioned from the
    /// just-collected reservoir sample. Only called when the current
    /// window's exclusive end fits in the timestamp domain (the caller
    /// checked `current_start + span`). With a horizon, sealing may
    /// coarsen the oldest full-fidelity windows into the tier cascade.
    fn rotate(&mut self) -> Result<(), SketchError> {
        let sample = std::mem::replace(
            &mut self.reservoir,
            Reservoir::new(self.cfg.sample_capacity),
        )
        .into_sample();
        let mut b = self.builder.memory_bytes(self.cfg.memory_bytes_per_window);
        if self.horizon.is_none() {
            // Per-window reseed (the historical default). Tiered
            // instances keep one family — see `with_horizon_backend`.
            b = b.seed(self.cfg.seed.wrapping_add(self.windows_sealed + 1));
        }
        let next = b.build_from_sample_backend::<B>(&sample)?;
        let finished = std::mem::replace(&mut self.current, next);
        self.sealed.push(SealedWindow {
            start: self.current_start,
            end: self.current_start + self.cfg.span,
            sketch: finished,
        });
        self.current_start += self.cfg.span;
        self.windows_sealed += 1;
        self.coarsen()
    }

    /// Fold sealed windows beyond the horizon into the tier cascade:
    /// each expiring window folds to one width-`quantum` sketch, and
    /// adjacent tiers holding equally many windows merge pairwise (a
    /// binary counter over tier populations), so `n` expired windows
    /// occupy at most `log₂ n + 1` tiers per contiguous stretch.
    fn coarsen(&mut self) -> Result<(), SketchError> {
        let Some(h) = self.horizon else {
            return Ok(());
        };
        while self.sealed.len() > h.keep {
            let w = self.sealed.remove(0);
            let folded = w.sketch.fold(h.quantum)?;
            self.tiers.push(Tier {
                start: w.start,
                end: w.end,
                windows: 1,
                sketch: folded,
            });
            self.coarsenings += 1;
            loop {
                let n = self.tiers.len();
                if n < 2 {
                    break;
                }
                // Only adjacent, equally-populated tiers merge: a
                // timestamp gap keeps its neighbours apart, so the gap
                // keeps answering exactly 0.
                if self.tiers[n - 2].windows != self.tiers[n - 1].windows
                    || self.tiers[n - 2].end != self.tiers[n - 1].start
                {
                    break;
                }
                let Some(young) = self.tiers.pop() else {
                    break;
                };
                // lint: allow(no-panics) — n ≥ 2 and one pop leaves n−1 ≥ 1
                // elements, so n−2 is in bounds.
                let old = &mut self.tiers[n - 2];
                old.sketch.merge_assign(young.sketch)?;
                old.end = young.end;
                old.windows += young.windows;
            }
        }
        Ok(())
    }

    /// The stored synopses (tiers, then sealed windows, then the current
    /// window) with their time spans, oldest first. The current window's
    /// exclusive end saturates: a window abutting `u64::MAX` covers the
    /// rest of the timestamp domain.
    fn spans(&self) -> impl Iterator<Item = (u64, u64, SpanSketch<'_, B>)> {
        self.tiers
            .iter()
            .map(|t| (t.start, t.end, SpanSketch::Tier(&t.sketch)))
            .chain(
                self.sealed
                    .iter()
                    .map(|s| (s.start, s.end, SpanSketch::Window(&s.sketch))),
            )
            .chain(std::iter::once((
                self.current_start,
                self.current_start.saturating_add(self.cfg.span),
                SpanSketch::Window(&self.current),
            )))
    }

    /// Estimate the frequency of `edge` over `[t_start, t_end]`
    /// (inclusive), extrapolating proportionally over partially covered
    /// windows (§5). `t_end = u64::MAX` is the open-ended "until now"
    /// query: the inclusive→exclusive conversion saturates instead of
    /// wrapping, so it covers every stored window (it used to overflow —
    /// a panic in debug builds and a silent zero in release builds).
    /// A coarsened tier answers with the same uniform extrapolation
    /// over its (merged) span.
    pub fn estimate_interval(&self, edge: Edge, t_start: u64, t_end: u64) -> f64 {
        // lint: allow(no-panics) — documented precondition: window configuration is validated once at construction; misuse must fail fast, release builds included.
        assert!(t_start <= t_end, "empty interval");
        let key = edge.key();
        let mut total = 0.0f64;
        for (ws, we, syn) in self.spans() {
            // Overlap of [t_start, t_end] with [ws, we).
            let lo = t_start.max(ws);
            let hi = t_end.saturating_add(1).min(we);
            if lo >= hi {
                continue;
            }
            let fraction = (hi - lo) as f64 / (we - ws) as f64;
            let v = match syn {
                SpanSketch::Window(g) => g.estimate(edge),
                SpanSketch::Tier(t) => t.estimate(key),
            };
            total += v as f64 * fraction;
        }
        total
    }

    /// Batched [`estimate_interval`](Self::estimate_interval): each
    /// overlapping window answers the whole batch through its sketch's
    /// slot-sorted [`estimate_batch`](GSketch::estimate_batch) (tiers
    /// through the backend's batched read kernel), and the per-edge
    /// fractional contributions are accumulated across spans in span
    /// order — the same additions in the same order as the scalar path,
    /// so the sums are bit-identical. `out` is overwritten with one
    /// **unrounded** fractional estimate per edge: rounding is the
    /// caller's, once, at its aggregation boundary.
    pub fn estimate_interval_batch(
        &self,
        edges: &[Edge],
        t_start: u64,
        t_end: u64,
        out: &mut Vec<f64>,
    ) {
        // lint: allow(no-panics) — documented precondition: window configuration is validated once at construction; misuse must fail fast, release builds included.
        assert!(t_start <= t_end, "empty interval");
        out.clear();
        out.resize(edges.len(), 0.0);
        let mut window_vals = Vec::new();
        let mut keys: Option<Vec<u64>> = None;
        for (ws, we, syn) in self.spans() {
            let lo = t_start.max(ws);
            let hi = t_end.saturating_add(1).min(we);
            if lo >= hi {
                continue;
            }
            let fraction = (hi - lo) as f64 / (we - ws) as f64;
            match syn {
                SpanSketch::Window(g) => g.estimate_batch(edges, &mut window_vals),
                SpanSketch::Tier(t) => {
                    let keys = keys.get_or_insert_with(|| edges.iter().map(|e| e.key()).collect());
                    t.estimate_batch(keys, &mut window_vals);
                }
            }
            for (acc, &v) in out.iter_mut().zip(&window_vals) {
                *acc += v as f64 * fraction;
            }
        }
    }

    /// Batched interval estimation **with confidence intervals**: `out`
    /// is overwritten with one [`IntervalEstimate`] per edge, in query
    /// order. Each overlapping window answers the whole batch through
    /// its sketch's [`estimate_detailed_batch`](GSketch::estimate_detailed_batch)
    /// (one batched kernel pass per window, per-slot bounds attached at
    /// no extra probe cost); per-edge values *and* error bounds are
    /// accumulated scaled by the window's covered fraction, and the
    /// confidence of the combined bound is the union bound over the
    /// contributing windows: `max(0, 1 − Σ(1 − c_w))` — the probability
    /// that *every* per-window bound held. Values are bit-identical to
    /// [`estimate_interval_batch`](Self::estimate_interval_batch).
    ///
    /// A coarsened tier contributes the **widened** `e·N_tier/quantum`
    /// bound of its folded sketch — `N_tier` is the union mass of every
    /// window the tier absorbed and `quantum` is far below a window's
    /// total width, so coarse history honestly reports its coarseness.
    pub fn estimate_interval_detailed_batch(
        &self,
        edges: &[Edge],
        t_start: u64,
        t_end: u64,
        out: &mut Vec<IntervalEstimate>,
    ) {
        // lint: allow(no-panics) — documented precondition: window configuration is validated once at construction; misuse must fail fast, release builds included.
        assert!(t_start <= t_end, "empty interval");
        out.clear();
        out.resize(edges.len(), IntervalEstimate::default());
        let mut window_rows = Vec::new();
        let mut tier_rows = Vec::new();
        let mut keys: Option<Vec<u64>> = None;
        let mut miss_probability = 0.0f64;
        let mut covered = false;
        for (ws, we, syn) in self.spans() {
            let lo = t_start.max(ws);
            let hi = t_end.saturating_add(1).min(we);
            if lo >= hi {
                continue;
            }
            let fraction = (hi - lo) as f64 / (we - ws) as f64;
            let span_confidence = match syn {
                SpanSketch::Window(g) => {
                    g.estimate_detailed_batch(edges, &mut window_rows);
                    for (acc, row) in out.iter_mut().zip(&window_rows) {
                        acc.value += row.value as f64 * fraction;
                        acc.error_bound += row.error_bound * fraction;
                    }
                    window_rows.first().map(|r| r.confidence)
                }
                SpanSketch::Tier(t) => {
                    let keys = keys.get_or_insert_with(|| edges.iter().map(|e| e.key()).collect());
                    t.estimate_detailed_batch(keys, &mut tier_rows);
                    for (acc, row) in out.iter_mut().zip(&tier_rows) {
                        acc.value += row.estimate as f64 * fraction;
                        acc.error_bound += row.error_bound * fraction;
                    }
                    tier_rows.first().map(|r| r.confidence)
                }
            };
            // All rows of one span share the span's confidence.
            if let Some(c) = span_confidence {
                miss_probability += 1.0 - c;
                covered = true;
            }
        }
        let confidence = if covered {
            (1.0 - miss_probability).max(0.0)
        } else {
            // No stored window overlaps: the zero answer is certain.
            1.0
        };
        for acc in out.iter_mut() {
            acc.confidence = confidence;
        }
    }

    /// Estimate over the whole lifetime observed so far.
    pub fn estimate_lifetime(&self, edge: Edge) -> f64 {
        self.estimate_interval(edge, 0, self.lifetime_end())
    }

    /// Batched [`estimate_lifetime`](Self::estimate_lifetime) (see
    /// [`estimate_interval_batch`](Self::estimate_interval_batch) for
    /// the rounding contract).
    pub fn estimate_lifetime_batch(&self, edges: &[Edge], out: &mut Vec<f64>) {
        self.estimate_interval_batch(edges, 0, self.lifetime_end(), out);
    }

    /// Last timestamp covered by the stored windows (the inclusive end
    /// of a lifetime query; saturating so a window abutting `u64::MAX`
    /// cannot wrap).
    pub fn lifetime_end(&self) -> u64 {
        self.current_start.saturating_add(self.cfg.span - 1)
    }

    /// Number of sealed full-fidelity windows currently stored.
    pub fn sealed_windows(&self) -> usize {
        self.sealed.len()
    }

    /// Number of coarsened tiers currently stored (0 without a horizon).
    pub fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// Total windows folded into tiers so far (monotone). The replay
    /// memo treats this as the sealed-history generation:
    /// sealed-interval answers can only change when it moves.
    pub fn coarsenings(&self) -> u64 {
        self.coarsenings
    }

    /// The configured full-fidelity horizon, if tiering is enabled.
    pub fn horizon_keep(&self) -> Option<usize> {
        self.horizon.map(|h| h.keep)
    }

    /// Whether this instance came from a horizon-limited snapshot load:
    /// answers are only valid inside the loaded span and
    /// [`crate::persist::save_windowed`] refuses to re-save it.
    pub fn is_partial(&self) -> bool {
        self.partial
    }

    /// Start timestamp of the currently open window.
    pub fn current_window_start(&self) -> u64 {
        self.current_start
    }

    /// The window configuration this synopsis was built with.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// Total counter memory across tiers and windows.
    pub fn bytes(&self) -> usize {
        self.tiers
            .iter()
            .map(|t| t.sketch.byte_size())
            .sum::<usize>()
            + self.sealed.iter().map(|s| s.sketch.bytes()).sum::<usize>()
            + self.current.bytes()
    }
}

// ---------------------------------------------------------------------------
// Snapshot parts (DESIGN.md §13): the window store serializes as a
// header + one record per sealed window + one mutable tail, so the
// persistence layer can append new windows without re-encoding old ones
// and skip records outside a queried horizon. The encode/decode pair
// lives here (it needs field access); framing, the footer index, and
// file I/O live in `crate::persist`.
// ---------------------------------------------------------------------------

impl<B: FrequencySketch> WindowedGSketch<B> {
    /// The immutable snapshot header body: everything needed to verify
    /// that an append targets the same deployment and to resume
    /// rotations identically (config, builder, tiering parameters).
    pub(crate) fn encode_header(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("config".to_owned(), self.cfg.to_value()),
            ("builder".to_owned(), self.builder.to_value()),
            (
                "horizon".to_owned(),
                self.horizon.map(|h| (h.keep, h.quantum)).to_value(),
            ),
        ])
    }

    /// `(start, end)` of every sealed full-fidelity window, oldest
    /// first. The persistence layer uses this to decide which records a
    /// snapshot file already holds.
    pub(crate) fn sealed_spans(&self) -> Vec<(u64, u64)> {
        self.sealed.iter().map(|s| (s.start, s.end)).collect()
    }

    /// Exclusive end of the coarsened span (0 with no tiers): sealed
    /// records at or before this point have been absorbed into tiers.
    pub(crate) fn tiers_end(&self) -> u64 {
        self.tiers.last().map_or(0, |t| t.end)
    }

    /// Encode sealed window `i` as one append-only snapshot record.
    pub(crate) fn encode_sealed(&self, i: usize) -> Option<serde::Value> {
        let w = self.sealed.get(i)?;
        Some(serde::Value::Map(vec![
            ("start".to_owned(), w.start.to_value()),
            ("end".to_owned(), w.end.to_value()),
            ("sketch".to_owned(), w.sketch.to_value()),
        ]))
    }

    /// Encode the mutable tail: tiers, the live window, and every piece
    /// of rotation state (reservoir, RNG, counters) needed to continue
    /// ingesting bit-identically after a load.
    pub(crate) fn encode_tail(&self) -> serde::Value {
        let tiers: Vec<serde::Value> = self
            .tiers
            .iter()
            .map(|t| {
                serde::Value::Map(vec![
                    ("start".to_owned(), t.start.to_value()),
                    ("end".to_owned(), t.end.to_value()),
                    ("windows".to_owned(), t.windows.to_value()),
                    ("sketch".to_owned(), t.sketch.to_value()),
                ])
            })
            .collect();
        serde::Value::Map(vec![
            ("tiers".to_owned(), serde::Value::Seq(tiers)),
            ("current".to_owned(), self.current.to_value()),
            ("current_start".to_owned(), self.current_start.to_value()),
            (
                "reservoir".to_owned(),
                serde::Value::Map(vec![
                    ("capacity".to_owned(), self.reservoir.capacity().to_value()),
                    ("seen".to_owned(), self.reservoir.seen().to_value()),
                    ("items".to_owned(), self.reservoir.sample().to_value()),
                ]),
            ),
            ("rng".to_owned(), self.rng.state().to_value()),
            ("windows_sealed".to_owned(), self.windows_sealed.to_value()),
            ("coarsenings".to_owned(), self.coarsenings.to_value()),
        ])
    }

    /// Rebuild an instance from decoded snapshot parts. `windows` holds
    /// the sealed-window records the caller chose to decode (all of
    /// them for a full load; only the overlapping ones for a
    /// horizon-limited load, which passes `partial = true`). Records
    /// whose span is covered by the tail's tiers are skipped: their
    /// full-fidelity bytes stay in the file as history, but the tiers
    /// answer for that span now.
    pub(crate) fn from_snapshot(
        header: &serde::Value,
        windows: &[serde::Value],
        tail: &serde::Value,
        partial: bool,
    ) -> Result<Self, serde::Error> {
        let cfg = WindowConfig::from_value(serde::value_field(header, "config")?)?;
        if cfg.span == 0 || cfg.sample_capacity == 0 {
            return Err(serde::Error(
                "snapshot window config has a zero span or sample capacity".to_owned(),
            ));
        }
        let builder = GSketchBuilder::from_value(serde::value_field(header, "builder")?)?;
        let horizon = Option::<(usize, usize)>::from_value(serde::value_field(header, "horizon")?)?
            .map(|(keep, quantum)| HorizonCfg { keep, quantum });

        let mut tiers = Vec::new();
        for tv in match serde::value_field(tail, "tiers")? {
            serde::Value::Seq(items) => items.as_slice(),
            other => return Err(serde::Error::expected("tier sequence", other)),
        } {
            let start = u64::from_value(serde::value_field(tv, "start")?)?;
            let end = u64::from_value(serde::value_field(tv, "end")?)?;
            let windows = u64::from_value(serde::value_field(tv, "windows")?)?;
            if start >= end || windows == 0 {
                return Err(serde::Error(format!(
                    "snapshot tier [{start}, {end}) with {windows} windows is malformed"
                )));
            }
            if let Some(prev_end) = tiers.last().map(|t: &Tier<B>| t.end) {
                if start < prev_end {
                    return Err(serde::Error(format!(
                        "snapshot tiers out of order at [{start}, {end})"
                    )));
                }
            }
            let sketch = B::from_value(serde::value_field(tv, "sketch")?)?;
            tiers.push(Tier {
                start,
                end,
                windows,
                sketch,
            });
        }
        let tiers_end = tiers.last().map_or(0, |t| t.end);

        let mut sealed: Vec<SealedWindow<B>> = Vec::new();
        for wv in windows {
            let start = u64::from_value(serde::value_field(wv, "start")?)?;
            let end = u64::from_value(serde::value_field(wv, "end")?)?;
            if end <= tiers_end {
                // Superseded by a coarsened tier; the record stays in
                // the file but the tier answers for this span now.
                continue;
            }
            if start >= end {
                return Err(serde::Error(format!(
                    "snapshot window [{start}, {end}) is empty or inverted"
                )));
            }
            if let Some(prev) = sealed.last() {
                if start < prev.end {
                    return Err(serde::Error(format!(
                        "snapshot windows out of order: [{start}, {end}) after [{}, {})",
                        prev.start, prev.end
                    )));
                }
            }
            let sketch = GSketch::<B>::from_value(serde::value_field(wv, "sketch")?)?;
            sealed.push(SealedWindow { start, end, sketch });
        }

        let current = GSketch::<B>::from_value(serde::value_field(tail, "current")?)?;
        let current_start = u64::from_value(serde::value_field(tail, "current_start")?)?;
        if let Some(last) = sealed.last() {
            if current_start < last.end {
                return Err(serde::Error(format!(
                    "snapshot live window starts at {current_start}, inside sealed window \
                     [{}, {})",
                    last.start, last.end
                )));
            }
        }
        let rv = serde::value_field(tail, "reservoir")?;
        let capacity = usize::from_value(serde::value_field(rv, "capacity")?)?;
        let seen = u64::from_value(serde::value_field(rv, "seen")?)?;
        let items = Vec::<StreamEdge>::from_value(serde::value_field(rv, "items")?)?;
        let reservoir = Reservoir::from_parts(capacity, seen, items)
            .ok_or_else(|| serde::Error("snapshot reservoir state is inconsistent".to_owned()))?;
        let rng = StdRng::from_state(<[u64; 4]>::from_value(serde::value_field(tail, "rng")?)?);
        let windows_sealed = u64::from_value(serde::value_field(tail, "windows_sealed")?)?;
        let coarsenings = u64::from_value(serde::value_field(tail, "coarsenings")?)?;

        Ok(Self {
            cfg,
            builder,
            horizon,
            tiers,
            sealed,
            current,
            current_start,
            reservoir,
            rng,
            windows_sealed,
            coarsenings,
            partial,
        })
    }
}

impl<B: FrequencySketch> EdgeSink for WindowedGSketch<B> {
    fn update(&mut self, se: StreamEdge) {
        self.try_insert(se)
            // lint: allow(no-panics) — `try_insert` only errors on a config the
            // constructor already validated; rotation itself is infallible.
            .expect("window rotation cannot fail after construction validated the config");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WindowConfig {
        WindowConfig {
            span: 100,
            memory_bytes_per_window: 1 << 14,
            sample_capacity: 200,
            seed: 9,
        }
    }

    fn builder() -> GSketchBuilder {
        GSketch::builder().min_width(16)
    }

    fn wedge(s: u32, d: u32, ts: u64) -> StreamEdge {
        StreamEdge::unit(Edge::new(s, d), ts)
    }

    #[test]
    fn windows_rotate_on_time() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        for ts in 0..350u64 {
            w.try_insert(wedge(1, 2, ts)).unwrap();
        }
        assert_eq!(w.sealed_windows(), 3);
        assert_eq!(w.current_window_start(), 300);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_timestamps_rejected() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        w.try_insert(wedge(1, 2, 500)).unwrap();
        w.try_insert(wedge(1, 2, 10)).unwrap();
    }

    #[test]
    fn lifetime_estimate_covers_all_windows() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        // Edge appears once per timestamp over 4 windows: truth 400.
        for ts in 0..400u64 {
            w.try_insert(wedge(7, 8, ts)).unwrap();
        }
        let est = w.estimate_lifetime(Edge::new(7u32, 8u32));
        assert!(est >= 400.0, "lifetime estimate too low: {est}");
        assert!(est <= 500.0, "lifetime estimate inflated: {est}");
    }

    #[test]
    fn interval_query_isolates_windows() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        // Edge (1,2) only in window 0; edge (3,4) only in window 1.
        for ts in 0..100u64 {
            w.try_insert(wedge(1, 2, ts)).unwrap();
        }
        for ts in 100..200u64 {
            w.try_insert(wedge(3, 4, ts)).unwrap();
        }
        w.try_insert(wedge(9, 9, 250)).unwrap(); // open window 2
        let e12 = Edge::new(1u32, 2u32);
        let e34 = Edge::new(3u32, 4u32);
        // Window-0 interval sees (1,2) but not (3,4).
        assert!(w.estimate_interval(e12, 0, 99) >= 100.0);
        assert_eq!(w.estimate_interval(e34, 0, 99), 0.0);
        // Window-1 interval sees (3,4) but not (1,2).
        assert!(w.estimate_interval(e34, 100, 199) >= 100.0);
        assert_eq!(w.estimate_interval(e12, 100, 199), 0.0);
    }

    #[test]
    fn partial_overlap_extrapolates_proportionally() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        for ts in 0..100u64 {
            w.try_insert(wedge(1, 2, ts)).unwrap();
        }
        w.try_insert(wedge(9, 9, 150)).unwrap();
        let e = Edge::new(1u32, 2u32);
        // Asking for half of window 0 → about half the mass.
        let half = w.estimate_interval(e, 0, 49);
        let full = w.estimate_interval(e, 0, 99);
        assert!((half - full / 2.0).abs() < full * 0.05 + 1.0);
    }

    /// A timestamp gap wider than one window must not materialize the
    /// empty windows it skips: epoch-style timestamps are O(1) per
    /// arrival, and queries over the gap answer 0.
    #[test]
    fn timestamp_gaps_skip_empty_windows() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        for ts in 0..150u64 {
            w.try_insert(wedge(1, 2, ts)).unwrap();
        }
        // Jump ~17 million windows forward: must be instant and must
        // not allocate a sealed window per skipped span.
        w.try_insert(wedge(3, 4, 1_700_000_000)).unwrap();
        assert!(
            w.sealed_windows() <= 3,
            "gap materialized {} windows",
            w.sealed_windows()
        );
        assert_eq!(w.current_window_start(), 1_700_000_000);
        // Pre-gap mass is intact, the gap answers 0, the post-gap
        // window answers its own mass.
        let e12 = Edge::new(1u32, 2u32);
        let e34 = Edge::new(3u32, 4u32);
        // [0, 149] fully covers window [0,100) and half of [100,200):
        // 100 + 0.5·50 under the uniform-extrapolation semantics.
        assert!(w.estimate_interval(e12, 0, 149) >= 125.0);
        assert!(w.estimate_interval(e12, 0, 199) >= 150.0);
        assert_eq!(w.estimate_interval(e12, 1_000, 999_999), 0.0);
        assert_eq!(w.estimate_interval(e34, 1_000, 999_999), 0.0);
        assert!(w.estimate_interval(e34, 1_700_000_000, u64::MAX) >= 1.0);
        assert!(w.estimate_lifetime(e12) >= 150.0);
    }

    /// Timestamps at the top of the u64 domain must neither overflow
    /// the rotation boundary nor wedge the insert loop.
    #[test]
    fn timestamps_near_u64_max_are_legal() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        w.try_insert(wedge(1, 2, 5)).unwrap();
        w.try_insert(wedge(1, 2, u64::MAX - 7)).unwrap();
        w.try_insert(wedge(1, 2, u64::MAX)).unwrap(); // same final window
        let e = Edge::new(1u32, 2u32);
        assert!(w.estimate_interval(e, 0, u64::MAX) >= 3.0);
        assert!(w.estimate_lifetime(e) >= 3.0);
        let mut batch = Vec::new();
        w.estimate_interval_batch(&[e], u64::MAX - 100, u64::MAX, &mut batch);
        assert!(batch[0] >= 2.0);
    }

    /// The inclusive interval end must saturate, not wrap: an
    /// open-ended `[0, u64::MAX]` query covers the whole lifetime
    /// (this used to overflow `t_end + 1` — panicking in debug builds
    /// and silently answering 0 in release builds).
    #[test]
    fn open_ended_interval_covers_everything() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        for ts in 0..250u64 {
            w.try_insert(wedge(1, 2, ts)).unwrap();
        }
        let e = Edge::new(1u32, 2u32);
        let open = w.estimate_interval(e, 0, u64::MAX);
        let lifetime = w.estimate_lifetime(e);
        assert_eq!(open.to_bits(), lifetime.to_bits());
        assert!(open >= 250.0, "open-ended interval lost coverage: {open}");
        let mut batch = Vec::new();
        w.estimate_interval_batch(&[e], 0, u64::MAX, &mut batch);
        assert_eq!(batch[0].to_bits(), open.to_bits());
    }

    /// Detailed interval rows: values bit-identical to the plain batch,
    /// bounds positive where windows contribute, confidence the union
    /// bound over contributing windows (and exactly 1 when no window
    /// overlaps — the zero answer is certain).
    #[test]
    fn detailed_interval_batch_matches_plain_batch() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        for ts in 0..320u64 {
            w.try_insert(wedge((ts % 5) as u32, 8, ts)).unwrap();
        }
        let edges: Vec<Edge> = (0..5u32).map(|v| Edge::new(v, 8u32)).collect();
        let mut plain = Vec::new();
        let mut rows = Vec::new();
        for (ts, te) in [(0u64, 319u64), (37, 211), (150, 150), (0, u64::MAX)] {
            w.estimate_interval_batch(&edges, ts, te, &mut plain);
            w.estimate_interval_detailed_batch(&edges, ts, te, &mut rows);
            assert_eq!(rows.len(), edges.len());
            for (row, &v) in rows.iter().zip(&plain) {
                assert_eq!(row.value.to_bits(), v.to_bits());
                assert!(row.error_bound >= 0.0);
                assert!((0.0..=1.0).contains(&row.confidence));
            }
        }
        // An interval past every stored window: zero, with certainty.
        let horizon = w.lifetime_end();
        w.estimate_interval_detailed_batch(&edges, horizon + 1, horizon + 10, &mut rows);
        for row in &rows {
            assert_eq!(row.value, 0.0);
            assert_eq!(row.error_bound, 0.0);
            assert_eq!(row.confidence, 1.0);
        }
    }

    /// The epoch-handoff sharded path — counters committed by exclusive
    /// slice owners, rotations sequential at quiesced boundaries — must
    /// be bit-identical to a sequential `try_insert` loop: same sealed
    /// windows, same lifetime and interval answers (including the
    /// fractional parts), across single- and multi-owner runs, window
    /// rotations mid-stream, timestamp gaps, and calls split mid-window.
    #[test]
    fn sharded_ingest_matches_sequential() {
        let stream: Vec<StreamEdge> = (0..650u64)
            .map(|ts| {
                let src = if ts % 3 == 0 { 1 } else { (ts % 23) as u32 };
                StreamEdge::weighted(Edge::new(src, (ts % 7) as u32 + 50), ts, ts % 4 + 1)
            })
            // A gap wider than a window, then a far tail window.
            .chain((0..40u64).map(|i| StreamEdge::unit(Edge::new(3u32, 4u32), 2_000 + i)))
            .collect();
        let edges: Vec<Edge> = stream.iter().map(|se| se.edge).collect();

        let mut seq = WindowedGSketch::new(cfg(), builder()).unwrap();
        for se in &stream {
            seq.try_insert(*se).unwrap();
        }
        for owners in [1usize, 4] {
            let mut par = WindowedGSketch::new(cfg(), builder()).unwrap();
            // Split mid-window: engine state must carry across calls.
            let report = par
                .try_ingest_sharded(&stream[..350], owners, true)
                .unwrap();
            assert_eq!(report.arrivals, 350);
            par.try_ingest_sharded(&stream[350..], owners, true)
                .unwrap();
            assert_eq!(
                par.sealed_windows(),
                seq.sealed_windows(),
                "{owners} owners"
            );
            assert_eq!(par.current_window_start(), seq.current_window_start());
            let mut a = Vec::new();
            let mut b = Vec::new();
            par.estimate_lifetime_batch(&edges, &mut a);
            seq.estimate_lifetime_batch(&edges, &mut b);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{owners} owners");
            }
            par.estimate_interval_batch(&edges, 120, 410, &mut a);
            seq.estimate_interval_batch(&edges, 120, 410, &mut b);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{owners} owners");
            }
        }
    }

    #[test]
    fn later_windows_are_partitioned_from_samples() {
        let mut w = WindowedGSketch::new(cfg(), builder()).unwrap();
        // Two windows of traffic from a small vertex set: the second
        // window's sketch must have partitions (sample was non-empty).
        for ts in 0..200u64 {
            w.try_insert(wedge((ts % 10) as u32, 100, ts)).unwrap();
        }
        assert_eq!(w.sealed_windows(), 1); // window 1 currently open
        assert!(w.current_window_start() == 100);
        // The open window was partitioned from window 0's sample.
        assert!(w.bytes() > 0);
    }

    // -- tiering ----------------------------------------------------------

    /// Ingest `n_windows` windows of a fixed per-window pattern into a
    /// horizon-`keep` instance.
    fn tiered(keep: usize, n_windows: u64) -> WindowedGSketch {
        let mut w = WindowedGSketch::with_horizon(cfg(), builder(), keep).unwrap();
        for ts in 0..n_windows * 100 {
            w.try_insert(wedge((ts % 5) as u32, 8, ts)).unwrap();
        }
        w
    }

    /// Beyond the horizon, sealed windows coarsen into tiers, and the
    /// binary-counter cascade keeps the tier count logarithmic.
    #[test]
    fn horizon_coarsens_old_windows_into_log_tiers() {
        let keep = 3usize;
        let w = tiered(keep, 20); // 19 sealed so far; 16 coarsened
        assert_eq!(w.sealed_windows(), keep);
        assert_eq!(w.coarsenings(), 19 - keep as u64);
        // 16 expired windows → binary-counter population ≤ log2+1 tiers.
        assert!(
            w.num_tiers() <= 5,
            "expected logarithmic tier count, got {}",
            w.num_tiers()
        );
        assert_eq!(w.horizon_keep(), Some(keep));
        // Tiers answer for the coarsened span: CountMin never
        // underestimates and folding only adds collisions, so the
        // full-lifetime answer still dominates the truth (each of the
        // 5 sources appears 20 times per window × 20 windows = 400).
        for v in 0..5u32 {
            let e = Edge::new(v, 8u32);
            assert!(
                w.estimate_lifetime(e) >= 400.0,
                "coarsened lifetime underestimates edge {v}"
            );
        }
    }

    /// Without enough sealed windows to exceed the horizon, a tiered
    /// instance holds no tiers and behaves like a plain windowed sketch.
    #[test]
    fn horizon_keeps_recent_windows_full_fidelity() {
        let w = tiered(5, 4);
        assert_eq!(w.num_tiers(), 0);
        assert_eq!(w.coarsenings(), 0);
        assert_eq!(w.sealed_windows(), 3);
    }

    /// Coarsened intervals report the widened tier bound: a query
    /// answered by a tier must carry a strictly larger error bound than
    /// the same query pattern answered by a full-fidelity window,
    /// because the tier packs several windows' mass into `quantum`
    /// cells.
    #[test]
    fn coarsened_intervals_widen_error_bounds() {
        let w = tiered(2, 20);
        let edges: Vec<Edge> = (0..5u32).map(|v| Edge::new(v, 8u32)).collect();
        let mut old_rows = Vec::new();
        let mut new_rows = Vec::new();
        // [0, 99] is deep inside the coarsened span; the most recent
        // sealed window is full fidelity.
        w.estimate_interval_detailed_batch(&edges, 0, 99, &mut old_rows);
        let recent = w.current_window_start() - 100;
        w.estimate_interval_detailed_batch(&edges, recent, recent + 99, &mut new_rows);
        for (old, new) in old_rows.iter().zip(&new_rows) {
            assert!(
                old.error_bound > new.error_bound,
                "tier bound {} not wider than window bound {}",
                old.error_bound,
                new.error_bound
            );
            // Still a one-sided CountMin answer: per-window truth is 20
            // per edge, and the tier never underestimates its span.
            assert!(old.value >= 20.0);
        }
    }

    /// Tier spans never overlap sealed windows, and the gap rule holds:
    /// tiers separated by a timestamp gap do not merge, and the gap
    /// still answers exactly zero.
    #[test]
    fn tiers_respect_gaps() {
        let mut w = WindowedGSketch::with_horizon(cfg(), builder(), 1).unwrap();
        for ts in 0..300u64 {
            w.try_insert(wedge(1, 2, ts)).unwrap();
        }
        // Jump far ahead, then seal a few more windows.
        for ts in 10_000..10_300u64 {
            w.try_insert(wedge(3, 4, ts)).unwrap();
        }
        assert!(w.num_tiers() >= 2, "gap should split the tier cascade");
        assert_eq!(
            w.estimate_interval(Edge::new(1u32, 2u32), 1_000, 9_000),
            0.0
        );
        assert_eq!(
            w.estimate_interval(Edge::new(3u32, 4u32), 1_000, 9_000),
            0.0
        );
        assert!(w.estimate_interval(Edge::new(1u32, 2u32), 0, 299) >= 300.0);
    }

    /// Scalar and batched interval estimates stay bit-identical when
    /// tiers participate in the answer.
    #[test]
    fn tiered_batch_matches_scalar() {
        let w = tiered(2, 12);
        let edges: Vec<Edge> = (0..5u32).map(|v| Edge::new(v, 8u32)).collect();
        let mut batch = Vec::new();
        for (ts, te) in [(0u64, 1_199u64), (50, 450), (0, u64::MAX)] {
            w.estimate_interval_batch(&edges, ts, te, &mut batch);
            for (e, &b) in edges.iter().zip(&batch) {
                let scalar = w.estimate_interval(*e, ts, te);
                assert_eq!(scalar.to_bits(), b.to_bits());
            }
        }
    }

    /// The generic backends drive the same tiering machinery: folded
    /// tiers merge and answers keep the coarsened mass visible.
    #[test]
    fn tiering_works_across_backends() {
        fn exercise<B: FrequencySketch>() {
            let mut w = WindowedGSketch::<B>::with_horizon_backend(cfg(), builder(), 2).unwrap();
            for ts in 0..1_000u64 {
                w.try_insert(wedge((ts % 5) as u32, 8, ts)).unwrap();
            }
            assert_eq!(w.sealed_windows(), 2);
            assert!(w.num_tiers() >= 1);
            let e = Edge::new(1u32, 8u32);
            let est = w.estimate_interval(e, 0, 999);
            assert!(est > 0.0, "{} lost the coarsened mass", B::KIND);
        }
        exercise::<CmArena>();
        exercise::<sketch::CountMinSketch>();
        exercise::<sketch::CountSketch>();
    }
}
