//! Query processing (§3.1 and §5): edge queries and aggregate subgraph
//! queries with an aggregate function `Γ(·)` — batched end to end
//! (DESIGN.md §8).
//!
//! The write path batches aggressively (slot-grouped counting sort, span
//! commits, prefetch — DESIGN.md §7); this module gives the read path
//! the same discipline. [`EdgeEstimator::estimate_edges`] answers a
//! whole query batch at once: the partitioned estimators counting-sort
//! the batch by router slot so each slot's counter block is walked once,
//! and the arena backend answers each slot run through its batched read
//! kernel (shared per-key hash folds, fastmod range reduction,
//! block-prefetched cells, duplicate coalescing). Everything downstream —
//! subgraph aggregation, workload replay, the accuracy metrics, the
//! structural queries — drives this surface instead of scalar loops, and
//! [`ParallelQuery`] fans a large batch out across the same clamped
//! worker pool the ingest pipeline uses. Answers are bit-identical to
//! the scalar path (pinned by the `backend_parity` proptests).

use gstream::edge::Edge;
use gstream::vertex::VertexId;
use gstream::workload::SubgraphQuery;

/// Anything that can answer edge-frequency point queries — scalar or
/// batched. Every deployment ([`crate::GSketch`], [`crate::GlobalSketch`],
/// [`crate::AdaptiveGSketch`], [`crate::ConcurrentGSketch`],
/// [`crate::WindowedGSketch`]) and the exact ground truth implement
/// this, so the whole evaluation harness is generic over the synopsis.
pub trait EdgeEstimator {
    /// Estimated aggregate frequency of `edge`.
    fn estimate_edge(&self, edge: Edge) -> u64;

    /// The estimate in its native precision. Integral for every counter
    /// synopsis; the windowed deployment overrides it to expose its
    /// fractional interval extrapolation unrounded, so aggregates round
    /// once at the aggregation boundary instead of once per edge.
    fn estimate_edge_f64(&self, edge: Edge) -> f64 {
        self.estimate_edge(edge) as f64
    }

    /// Batched point queries: `out` is cleared and receives one estimate
    /// per entry of `edges`, in order. This provided default is the
    /// scalar loop; the partitioned estimators override it to
    /// counting-sort the batch by router slot before hitting the
    /// synopsis bank. Answers are bit-identical either way.
    fn estimate_edges(&self, edges: &[Edge], out: &mut Vec<u64>) {
        out.clear();
        out.extend(edges.iter().map(|&e| self.estimate_edge(e)));
    }

    /// Batched [`estimate_edge_f64`](Self::estimate_edge_f64): the
    /// surface subgraph aggregation consumes. Routed through
    /// [`estimate_edges`](Self::estimate_edges) so estimators that only
    /// override the integer batch still answer batched.
    fn estimate_edges_f64(&self, edges: &[Edge], out: &mut Vec<f64>) {
        let mut ints = Vec::with_capacity(edges.len());
        self.estimate_edges(edges, &mut ints);
        out.clear();
        out.extend(ints.iter().map(|&v| v as f64));
    }
}

/// Estimators answer through shared references, so a borrow is as good
/// as the estimator itself — this is what lets the replay engine front
/// a deployment it merely borrows (e.g. one also driven by a
/// [`ParallelQuery`] pool). Every method forwards, so backend-specific
/// batch overrides are preserved.
impl<T: EdgeEstimator + ?Sized> EdgeEstimator for &T {
    fn estimate_edge(&self, edge: Edge) -> u64 {
        (**self).estimate_edge(edge)
    }

    fn estimate_edge_f64(&self, edge: Edge) -> f64 {
        (**self).estimate_edge_f64(edge)
    }

    fn estimate_edges(&self, edges: &[Edge], out: &mut Vec<u64>) {
        (**self).estimate_edges(edges, out);
    }

    fn estimate_edges_f64(&self, edges: &[Edge], out: &mut Vec<f64>) {
        (**self).estimate_edges_f64(edges, out);
    }
}

/// Counting-sort a query batch by destination slot and answer each slot
/// run through one batched bank probe — the read-side mirror of the
/// ingest path's slot-grouped batching, shared by every partitioned
/// estimator (sequential and concurrent banks differ only in the
/// `run_estimator` they pass in). `out` is overwritten with one answer
/// per query, in query order.
///
/// `slot_of` contractually returns values below `n_slots`; the scatter
/// indices it feeds are nevertheless guarded (`get`/`get_mut` — a rogue
/// slot drops its queries to answer `0` instead of panicking), so the
/// monomorphized kernels this body lands in stay panic-free in the
/// compiled artifact (`xtask audit`).
pub(crate) fn estimate_batch_by_slot<S, R>(
    edges: &[Edge],
    n_slots: usize,
    slot_of: S,
    mut run_estimator: R,
    out: &mut Vec<u64>,
) where
    S: Fn(VertexId) -> u32,
    R: FnMut(u32, &[u64], &mut Vec<u64>),
{
    out.clear();
    out.resize(edges.len(), 0);
    // Route each query once; counting-sort (key, origin) pairs by slot.
    let slots: Vec<u32> = edges.iter().map(|e| slot_of(e.src)).collect();
    let mut counts = vec![0usize; n_slots];
    for &s in &slots {
        if let Some(c) = counts.get_mut(s as usize) {
            *c += 1;
        }
    }
    let mut cursors = Vec::with_capacity(n_slots);
    let mut acc = 0usize;
    for &c in &counts {
        cursors.push(acc);
        acc += c;
    }
    let starts = cursors.clone();
    let mut keys: Vec<u64> = vec![0; edges.len()];
    let mut origin: Vec<usize> = vec![0; edges.len()];
    for (i, (e, &s)) in edges.iter().zip(&slots).enumerate() {
        let Some(at) = cursors.get_mut(s as usize) else {
            continue;
        };
        if let Some(k) = keys.get_mut(*at) {
            *k = e.key();
        }
        if let Some(o) = origin.get_mut(*at) {
            *o = i;
        }
        *at += 1;
    }
    // One batched bank probe per non-empty slot run, scattered back to
    // query order.
    let mut vals = Vec::new();
    for (slot, (&start, &count)) in starts.iter().zip(&counts).enumerate() {
        if count == 0 {
            continue;
        }
        let Some(run) = keys.get(start..start + count) else {
            continue;
        };
        run_estimator(slot as u32, run, &mut vals);
        for (&v, &o) in vals.iter().zip(origin.iter().skip(start).take(count)) {
            if let Some(slot_out) = out.get_mut(o) {
                *slot_out = v;
            }
        }
    }
}

impl<B: sketch::FrequencySketch> EdgeEstimator for crate::GSketch<B> {
    fn estimate_edge(&self, edge: Edge) -> u64 {
        self.estimate(edge)
    }

    fn estimate_edges(&self, edges: &[Edge], out: &mut Vec<u64>) {
        self.estimate_batch(edges, out);
    }
}

impl EdgeEstimator for crate::GlobalSketch {
    fn estimate_edge(&self, edge: Edge) -> u64 {
        self.estimate(edge)
    }

    fn estimate_edges(&self, edges: &[Edge], out: &mut Vec<u64>) {
        self.estimate_batch(edges, out);
    }
}

/// The adaptive estimator answers a batch as the sum of its two
/// components: the warm-up sketch's batched estimates plus (after
/// switchover) the partitioned sketch's slot-sorted batch.
impl EdgeEstimator for crate::AdaptiveGSketch {
    fn estimate_edge(&self, edge: Edge) -> u64 {
        self.estimate(edge)
    }

    fn estimate_edges(&self, edges: &[Edge], out: &mut Vec<u64>) {
        self.estimate_batch(edges, out);
    }
}

/// Subgraph queries can run against a live concurrent sketch — reads are
/// lock-free and see every update that happened-before the call.
impl EdgeEstimator for crate::ConcurrentGSketch {
    fn estimate_edge(&self, edge: Edge) -> u64 {
        self.estimate(edge)
    }

    fn estimate_edges(&self, edges: &[Edge], out: &mut Vec<u64>) {
        self.estimate_batch(edges, out);
    }
}

/// The windowed synopsis answers as an estimator over the whole observed
/// lifetime. Sealed windows are fully covered, so no extrapolation is
/// involved and the fractional sum is integral; rounding only guards
/// float error. The fractional surface exposes the unrounded sum, so an
/// aggregate over interval-extrapolated estimates rounds once at the
/// aggregation boundary, never per edge.
impl EdgeEstimator for crate::WindowedGSketch {
    fn estimate_edge(&self, edge: Edge) -> u64 {
        self.estimate_lifetime(edge).round() as u64
    }

    fn estimate_edge_f64(&self, edge: Edge) -> f64 {
        self.estimate_lifetime(edge)
    }

    fn estimate_edges(&self, edges: &[Edge], out: &mut Vec<u64>) {
        let mut frac = Vec::with_capacity(edges.len());
        self.estimate_lifetime_batch(edges, &mut frac);
        out.clear();
        out.extend(frac.iter().map(|v| v.round() as u64));
    }

    fn estimate_edges_f64(&self, edges: &[Edge], out: &mut Vec<f64>) {
        self.estimate_lifetime_batch(edges, out);
    }
}

/// Exact ground truth is also an estimator — used to compute the
/// denominator of relative errors and in tests. Point lookups in a hash
/// map gain nothing from batch shape, so this deliberately rides the
/// provided default.
impl EdgeEstimator for gstream::ExactCounter {
    fn estimate_edge(&self, edge: Edge) -> u64 {
        self.frequency(edge)
    }
}

/// Embarrassingly parallel read fan-out: a large query batch is split
/// into contiguous spans, each answered by one worker through the
/// estimator's batched surface (slot sort and all), writing into
/// disjoint regions of the output. Workers are clamped to the host's
/// available parallelism by the same rule as the ingest pipeline's
/// pool (DESIGN.md §7); answers are bit-identical to a sequential
/// [`EdgeEstimator::estimate_edges`] call because each span's batch is
/// answered independently.
#[derive(Debug)]
pub struct ParallelQuery<'e, E: EdgeEstimator + Sync> {
    estimator: &'e E,
    threads: usize,
    oversubscribe: bool,
}

impl<'e, E: EdgeEstimator + Sync> ParallelQuery<'e, E> {
    /// Fan queries out over `estimator` from up to `threads` workers
    /// (clamped to at least 1 and to the host's available parallelism).
    pub fn new(estimator: &'e E, threads: usize) -> Self {
        Self {
            estimator,
            threads: threads.max(1),
            oversubscribe: false,
        }
    }

    /// Spawn exactly the requested worker count even beyond the host's
    /// cores (for correctness tests that need real interleaving).
    #[must_use]
    pub fn oversubscribe(mut self, on: bool) -> Self {
        self.oversubscribe = on;
        self
    }

    /// Requested worker threads (upper bound).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Worker threads a batch will actually fan out over.
    pub fn effective_threads(&self) -> usize {
        crate::pipeline::clamp_workers(self.threads, self.oversubscribe)
    }

    /// Answer a query batch across the worker pool: `out` is overwritten
    /// with one estimate per edge, in query order.
    pub fn estimate_edges(&self, edges: &[Edge], out: &mut Vec<u64>) {
        let workers = self.effective_threads();
        if workers <= 1 || edges.len() < 2 {
            self.estimator.estimate_edges(edges, out);
            return;
        }
        out.clear();
        out.resize(edges.len(), 0);
        let span = edges.len().div_ceil(workers);
        let estimator = self.estimator;
        std::thread::scope(|scope| {
            for (chunk, sink) in edges.chunks(span).zip(out.chunks_mut(span)) {
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(chunk.len());
                    estimator.estimate_edges(chunk, &mut local);
                    sink.copy_from_slice(&local);
                });
            }
        });
    }
}

impl<'e, E: EdgeEstimator + crate::SlotRouted + Sync> ParallelQuery<'e, E> {
    /// Answer a query batch through the **ownership map** of the
    /// owner-sharded engine (DESIGN.md §11): the batch is routed once and
    /// counting-sorted by destination slot, each owning worker answers
    /// the contiguous span of queries whose slots fall in its
    /// [`crate::OwnerMap::slot_range`], and answers are scattered back to
    /// query order.
    ///
    /// Where the span fan-out of [`estimate_edges`](Self::estimate_edges)
    /// hands every worker a slot-mixed chunk (each worker's internal
    /// counting sort then touches the whole bank), this shape aligns the
    /// read path with the sharded write path: a worker only walks counter
    /// blocks inside its own slot range — the same contiguous arena bytes
    /// it committed during ingest, warm in its cache and local on its
    /// NUMA node. Answers are bit-identical to a sequential
    /// [`EdgeEstimator::estimate_edges`] call because every query is
    /// answered independently by the same batched slot kernel (pinned by
    /// the `backend_parity` proptests).
    pub fn estimate_edges_routed(&self, edges: &[Edge], out: &mut Vec<u64>) {
        let workers = self.effective_threads();
        if workers <= 1 || edges.len() < 2 {
            self.estimator.estimate_edges(edges, out);
            return;
        }
        let n_slots = self.estimator.num_slots();
        let map = crate::OwnerMap::new(n_slots, workers);
        if map.owners() <= 1 {
            self.estimator.estimate_edges(edges, out);
            return;
        }
        // Route each query once; counting-sort (edge, origin) pairs by
        // slot so each owner's queries form one contiguous span.
        let slots: Vec<u32> = edges
            .iter()
            .map(|e| self.estimator.slot_of(e.src))
            .collect();
        let mut starts = vec![0usize; n_slots + 1];
        for &s in &slots {
            starts[s as usize + 1] += 1;
        }
        for i in 0..n_slots {
            starts[i + 1] += starts[i];
        }
        let mut cursors = starts.clone();
        let mut sorted: Vec<Edge> = vec![Edge::new(0u32, 0u32); edges.len()];
        let mut origin: Vec<usize> = vec![0; edges.len()];
        for (i, (&e, &s)) in edges.iter().zip(&slots).enumerate() {
            let at = &mut cursors[s as usize];
            sorted[*at] = e;
            origin[*at] = i;
            *at += 1;
        }
        // Each owner answers its span through the estimator's batched
        // surface, writing into the disjoint slot-sorted output span.
        let mut sorted_out = vec![0u64; edges.len()];
        let estimator = self.estimator;
        std::thread::scope(|scope| {
            let mut rest = sorted.as_slice();
            let mut out_rest = sorted_out.as_mut_slice();
            let mut consumed = 0usize;
            // cast: usize -> u32; owners <= num_slots and slot ids are u32.
            for w in 0..map.owners() as u32 {
                let (_, hi) = map.slot_range(w);
                let end = starts[hi as usize];
                let (chunk, tail) = rest.split_at(end - consumed);
                let (sink, out_tail) = out_rest.split_at_mut(end - consumed);
                rest = tail;
                out_rest = out_tail;
                consumed = end;
                if chunk.is_empty() {
                    continue;
                }
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(chunk.len());
                    estimator.estimate_edges(chunk, &mut local);
                    sink.copy_from_slice(&local);
                });
            }
        });
        out.clear();
        out.resize(edges.len(), 0);
        for (&v, &o) in sorted_out.iter().zip(&origin) {
            out[o] = v;
        }
    }
}

/// The aggregate function `Γ(·)` of an aggregate subgraph query.
///
/// The paper evaluates `SUM` (§6.2) and names `MIN`/`AVERAGE` as further
/// examples (§3.1); the remaining variants implement §7's future-work
/// item of "more complex queries … involving the computation of complex
/// functions of edge frequencies in a subgraph query". Truly ad-hoc
/// functions go through [`estimate_subgraph_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aggregator {
    /// `Γ = SUM` — total frequency of the constituent edges (the paper's
    /// experimental choice, §6.2).
    #[default]
    Sum,
    /// `Γ = MIN`.
    Min,
    /// `Γ = MAX`.
    Max,
    /// `Γ = AVERAGE`.
    Average,
    /// `Γ = COUNT` of edges whose estimate is non-zero — the subgraph's
    /// *materialized* edge count.
    CountPresent,
    /// Population variance of the constituent edge frequencies — a
    /// homogeneity measure for the subgraph's activity.
    Variance,
    /// Median of the constituent edge frequencies (lower middle for even
    /// lengths) — a heavy-hitter-robust center.
    Median,
    /// Euclidean norm `√(Σ f̃²)` — the subgraph's frequency "energy",
    /// dominated by its hottest edges.
    L2Norm,
}

impl Aggregator {
    /// Apply the aggregate over integer per-edge values.
    pub fn apply(&self, values: &[u64]) -> f64 {
        let as_f64: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        self.apply_f64(&as_f64)
    }

    /// Apply the aggregate over per-edge values in their native
    /// precision — the form the batched query path feeds, so estimators
    /// with fractional estimates (the windowed synopsis) are aggregated
    /// without a per-edge rounding step. Values must be finite and
    /// non-negative (every estimator's contract).
    pub fn apply_f64(&self, values: &[f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let n = values.len() as f64;
        match self {
            Aggregator::Sum => values.iter().sum(),
            Aggregator::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregator::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregator::Average => values.iter().sum::<f64>() / n,
            Aggregator::CountPresent => values.iter().filter(|&&v| v > 0.0).count() as f64,
            Aggregator::Variance => {
                let mean = values.iter().sum::<f64>() / n;
                values.iter().map(|&v| (v - mean).powi(2)).sum::<f64>() / n
            }
            Aggregator::Median => {
                let mut sorted: Vec<f64> = values.to_vec();
                sorted.sort_unstable_by(|a, b| {
                    // lint: allow(no-panics) — estimates are u64 counters cast to f64,
                    // so every value is finite and the comparator total.
                    a.partial_cmp(b).expect("estimates are finite and ordered")
                });
                sorted[(sorted.len() - 1) / 2]
            }
            Aggregator::L2Norm => values.iter().map(|&v| v * v).sum::<f64>().sqrt(),
        }
    }
}

/// Answer an aggregate subgraph query by decomposing it into its
/// constituent edge queries — answered as **one batch** through
/// [`EdgeEstimator::estimate_edges_f64`] — and applying `Γ` to the
/// estimates (§5).
pub fn estimate_subgraph<E: EdgeEstimator + ?Sized>(
    estimator: &E,
    query: &SubgraphQuery,
    aggregator: Aggregator,
) -> f64 {
    let mut values = Vec::with_capacity(query.edges.len());
    estimator.estimate_edges_f64(&query.edges, &mut values);
    aggregator.apply_f64(&values)
}

/// Answer an aggregate subgraph query with an arbitrary aggregate
/// function over the per-edge estimates — §7's "complex functions of edge
/// frequencies" without enumerating them. The closure receives the
/// batched estimates in the query's edge order, in native precision.
pub fn estimate_subgraph_with<E, F>(estimator: &E, query: &SubgraphQuery, gamma: F) -> f64
where
    E: EdgeEstimator + ?Sized,
    F: FnOnce(&[f64]) -> f64,
{
    let mut values = Vec::with_capacity(query.edges.len());
    estimator.estimate_edges_f64(&query.edges, &mut values);
    gamma(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstream::edge::StreamEdge;
    use gstream::ExactCounter;

    fn truth() -> ExactCounter {
        let stream = vec![
            StreamEdge::weighted(Edge::new(1u32, 2u32), 0, 10),
            StreamEdge::weighted(Edge::new(2u32, 3u32), 1, 20),
            StreamEdge::weighted(Edge::new(3u32, 4u32), 2, 30),
        ];
        ExactCounter::from_stream(&stream)
    }

    fn q() -> SubgraphQuery {
        SubgraphQuery {
            edges: vec![
                Edge::new(1u32, 2u32),
                Edge::new(2u32, 3u32),
                Edge::new(3u32, 4u32),
            ],
        }
    }

    #[test]
    fn aggregators_compute_expected_values() {
        let t = truth();
        assert_eq!(estimate_subgraph(&t, &q(), Aggregator::Sum), 60.0);
        assert_eq!(estimate_subgraph(&t, &q(), Aggregator::Min), 10.0);
        assert_eq!(estimate_subgraph(&t, &q(), Aggregator::Max), 30.0);
        assert_eq!(estimate_subgraph(&t, &q(), Aggregator::Average), 20.0);
    }

    #[test]
    fn extended_aggregators_compute_expected_values() {
        let t = truth();
        // Frequencies of q() are [10, 20, 30].
        assert_eq!(estimate_subgraph(&t, &q(), Aggregator::CountPresent), 3.0);
        assert_eq!(estimate_subgraph(&t, &q(), Aggregator::Median), 20.0);
        // Variance of {10,20,30}: mean 20, deviations²: 100+0+100 → /3.
        let var = estimate_subgraph(&t, &q(), Aggregator::Variance);
        assert!((var - 200.0 / 3.0).abs() < 1e-9);
        let l2 = estimate_subgraph(&t, &q(), Aggregator::L2Norm);
        assert!((l2 - (1400.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn integer_and_f64_aggregates_agree() {
        let values = [10u64, 20, 30, 0, 7];
        let as_f64: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        for agg in [
            Aggregator::Sum,
            Aggregator::Min,
            Aggregator::Max,
            Aggregator::Average,
            Aggregator::CountPresent,
            Aggregator::Variance,
            Aggregator::Median,
            Aggregator::L2Norm,
        ] {
            assert_eq!(agg.apply(&values), agg.apply_f64(&as_f64), "{agg:?}");
        }
    }

    #[test]
    fn count_present_skips_absent_edges() {
        let t = truth();
        let query = SubgraphQuery {
            edges: vec![Edge::new(1u32, 2u32), Edge::new(77u32, 88u32)],
        };
        assert_eq!(estimate_subgraph(&t, &query, Aggregator::CountPresent), 1.0);
    }

    #[test]
    fn median_even_length_takes_lower_middle() {
        let t = truth();
        let query = SubgraphQuery {
            edges: vec![Edge::new(1u32, 2u32), Edge::new(2u32, 3u32)],
        };
        // Frequencies [10, 20]: lower middle = 10.
        assert_eq!(estimate_subgraph(&t, &query, Aggregator::Median), 10.0);
    }

    #[test]
    fn custom_gamma_closure() {
        let t = truth();
        // Geometric mean — a genuinely "complex function" of §7.
        let gm = estimate_subgraph_with(&t, &q(), |vals| {
            let logsum: f64 = vals.iter().map(|&v| v.ln()).sum();
            (logsum / vals.len() as f64).exp()
        });
        let expect = (10.0f64 * 20.0 * 30.0).powf(1.0 / 3.0);
        assert!((gm - expect).abs() < 1e-9);
    }

    #[test]
    fn empty_query_aggregates_to_zero() {
        let t = truth();
        let empty = SubgraphQuery { edges: vec![] };
        for agg in [
            Aggregator::Sum,
            Aggregator::Min,
            Aggregator::Max,
            Aggregator::Average,
            Aggregator::CountPresent,
            Aggregator::Variance,
            Aggregator::Median,
            Aggregator::L2Norm,
        ] {
            assert_eq!(estimate_subgraph(&t, &empty, agg), 0.0);
        }
    }

    #[test]
    fn sketches_implement_estimator() {
        use crate::EdgeSink;
        let stream = vec![
            StreamEdge::weighted(Edge::new(1u32, 2u32), 0, 10),
            StreamEdge::weighted(Edge::new(2u32, 3u32), 1, 20),
        ];
        let mut gs = crate::GSketch::builder()
            .memory_bytes(1 << 14)
            .min_width(16)
            .build_from_sample(&stream)
            .unwrap();
        gs.ingest(&stream);
        let mut gl = crate::GlobalSketch::new(1 << 14, 3, 1).unwrap();
        gl.ingest(&stream);
        let query = SubgraphQuery {
            edges: vec![Edge::new(1u32, 2u32), Edge::new(2u32, 3u32)],
        };
        // SUM over CountMin estimates never underestimates.
        assert!(estimate_subgraph(&gs, &query, Aggregator::Sum) >= 30.0);
        assert!(estimate_subgraph(&gl, &query, Aggregator::Sum) >= 30.0);
    }

    /// The paper's headline structure — `estimate_subgraph` over a
    /// partitioned sketch — must also run against the concurrent and
    /// windowed deployments (they were the only estimators missing the
    /// trait).
    #[test]
    fn concurrent_and_windowed_implement_estimator() {
        use crate::EdgeSink;
        let stream = vec![
            StreamEdge::weighted(Edge::new(1u32, 2u32), 0, 10),
            StreamEdge::weighted(Edge::new(2u32, 3u32), 1, 20),
            StreamEdge::weighted(Edge::new(1u32, 2u32), 150, 5),
        ];
        let query = SubgraphQuery {
            edges: vec![Edge::new(1u32, 2u32), Edge::new(2u32, 3u32)],
        };

        let gs = crate::GSketch::builder()
            .memory_bytes(1 << 14)
            .min_width(16)
            .build_from_sample(&stream)
            .unwrap();
        let mut conc = crate::ConcurrentGSketch::from_gsketch(gs);
        conc.ingest(&stream);
        assert!(estimate_subgraph(&conc, &query, Aggregator::Sum) >= 35.0);

        let mut windowed = crate::WindowedGSketch::new(
            crate::WindowConfig {
                span: 100,
                memory_bytes_per_window: 1 << 14,
                sample_capacity: 64,
                seed: 5,
            },
            crate::GSketch::builder().min_width(16),
        )
        .unwrap();
        windowed.ingest(&stream);
        // Lifetime SUM covers both windows; CountMin never underestimates.
        assert!(estimate_subgraph(&windowed, &query, Aggregator::Sum) >= 35.0);
        assert!(estimate_subgraph(&windowed, &query, Aggregator::Max) >= 20.0);
    }

    fn toy_stream(n: u64) -> Vec<StreamEdge> {
        (0..n)
            .map(|t| {
                StreamEdge::weighted(
                    Edge::new((t % 23) as u32, (t % 7) as u32 + 100),
                    t,
                    t % 5 + 1,
                )
            })
            .collect()
    }

    /// The batched surface must answer exactly like the scalar loop on a
    /// mixed batch (duplicates, absent edges, shuffled order) — the
    /// inline companion of the `backend_parity` proptests.
    #[test]
    fn batched_estimates_match_scalar_loop() {
        use crate::EdgeSink;
        let stream = toy_stream(4_000);
        let mut gs = crate::GSketch::builder()
            .memory_bytes(1 << 14)
            .min_width(16)
            .seed(9)
            .build_from_sample(&stream[..400])
            .unwrap();
        gs.ingest(&stream);
        let mut batch: Vec<Edge> = stream.iter().step_by(3).map(|se| se.edge).collect();
        batch.push(Edge::new(9_999u32, 1u32)); // absent
        batch.extend(batch.clone()); // duplicates, non-adjacent
        let mut out = Vec::new();
        gs.estimate_edges(&batch, &mut out);
        assert_eq!(out.len(), batch.len());
        for (&e, &v) in batch.iter().zip(&out) {
            assert_eq!(v, gs.estimate_edge(e));
        }
    }

    /// `ParallelQuery` fan-out answers bit-identically to the sequential
    /// batch, for any worker count (oversubscribed to force real
    /// interleaving) and for batches smaller than the pool.
    #[test]
    fn parallel_query_matches_sequential_batch() {
        use crate::EdgeSink;
        let stream = toy_stream(5_000);
        let mut gs = crate::GSketch::builder()
            .memory_bytes(1 << 14)
            .min_width(16)
            .seed(3)
            .build_from_sample(&stream[..500])
            .unwrap();
        gs.ingest(&stream);
        let batch: Vec<Edge> = stream.iter().map(|se| se.edge).collect();
        let mut sequential = Vec::new();
        gs.estimate_edges(&batch, &mut sequential);
        for threads in [1usize, 2, 4, 7] {
            let pq = ParallelQuery::new(&gs, threads).oversubscribe(true);
            assert_eq!(pq.effective_threads(), threads);
            let mut parallel = Vec::new();
            pq.estimate_edges(&batch, &mut parallel);
            assert_eq!(parallel, sequential, "{threads} workers");
            // Tiny batch: falls back to the sequential path.
            let mut tiny = Vec::new();
            pq.estimate_edges(&batch[..1], &mut tiny);
            assert_eq!(tiny, sequential[..1]);
        }
        let pq = ParallelQuery::new(&gs, 0);
        assert_eq!(pq.threads(), 1);
        let mut out = Vec::new();
        pq.estimate_edges(&[], &mut out);
        assert!(out.is_empty());
    }

    /// The slot-routed fan-out (ownership-map spans) answers
    /// bit-identically to the sequential batch for any worker count,
    /// including duplicates, absent edges, and batches smaller than the
    /// pool.
    #[test]
    fn routed_query_matches_sequential_batch() {
        use crate::EdgeSink;
        let stream = toy_stream(5_000);
        let mut gs = crate::GSketch::builder()
            .memory_bytes(1 << 14)
            .min_width(16)
            .seed(3)
            .build_from_sample(&stream[..500])
            .unwrap();
        gs.ingest(&stream);
        let mut batch: Vec<Edge> = stream.iter().map(|se| se.edge).collect();
        batch.push(Edge::new(9_999u32, 1u32)); // absent → outlier slot
        let mut sequential = Vec::new();
        gs.estimate_edges(&batch, &mut sequential);
        for threads in [1usize, 2, 3, 8] {
            let pq = ParallelQuery::new(&gs, threads).oversubscribe(true);
            let mut routed = Vec::new();
            pq.estimate_edges_routed(&batch, &mut routed);
            assert_eq!(routed, sequential, "{threads} workers");
            let mut tiny = Vec::new();
            pq.estimate_edges_routed(&batch[..1], &mut tiny);
            assert_eq!(tiny, sequential[..1]);
        }
        // More workers than slots: the owner map clamps and the routed
        // path still answers exactly.
        let pq = ParallelQuery::new(&gs, 64).oversubscribe(true);
        let mut routed = Vec::new();
        pq.estimate_edges_routed(&batch, &mut routed);
        assert_eq!(routed, sequential);
    }
}
