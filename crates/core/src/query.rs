//! Query processing (§3.1 and §5): edge queries and aggregate subgraph
//! queries with an aggregate function `Γ(·)`.

use gstream::edge::Edge;
use gstream::workload::SubgraphQuery;

/// Anything that can answer edge-frequency point queries. Both
/// [`crate::GSketch`] and [`crate::GlobalSketch`] implement this, so the
/// whole evaluation harness is generic over the synopsis.
pub trait EdgeEstimator {
    /// Estimated aggregate frequency of `edge`.
    fn estimate_edge(&self, edge: Edge) -> u64;
}

impl<B: sketch::FrequencySketch> EdgeEstimator for crate::GSketch<B> {
    fn estimate_edge(&self, edge: Edge) -> u64 {
        self.estimate(edge)
    }
}

impl EdgeEstimator for crate::GlobalSketch {
    fn estimate_edge(&self, edge: Edge) -> u64 {
        self.estimate(edge)
    }
}

impl EdgeEstimator for crate::AdaptiveGSketch {
    fn estimate_edge(&self, edge: Edge) -> u64 {
        self.estimate(edge)
    }
}

/// Subgraph queries can run against a live concurrent sketch — reads are
/// lock-free and see every update that happened-before the call.
impl EdgeEstimator for crate::ConcurrentGSketch {
    fn estimate_edge(&self, edge: Edge) -> u64 {
        self.estimate(edge)
    }
}

/// The windowed synopsis answers as an estimator over the whole observed
/// lifetime. Sealed windows are fully covered, so no extrapolation is
/// involved and the fractional sum is integral; rounding only guards
/// float error.
impl EdgeEstimator for crate::WindowedGSketch {
    fn estimate_edge(&self, edge: Edge) -> u64 {
        self.estimate_lifetime(edge).round() as u64
    }
}

/// Exact ground truth is also an estimator — used to compute the
/// denominator of relative errors and in tests.
impl EdgeEstimator for gstream::ExactCounter {
    fn estimate_edge(&self, edge: Edge) -> u64 {
        self.frequency(edge)
    }
}

/// The aggregate function `Γ(·)` of an aggregate subgraph query.
///
/// The paper evaluates `SUM` (§6.2) and names `MIN`/`AVERAGE` as further
/// examples (§3.1); the remaining variants implement §7's future-work
/// item of "more complex queries … involving the computation of complex
/// functions of edge frequencies in a subgraph query". Truly ad-hoc
/// functions go through [`estimate_subgraph_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aggregator {
    /// `Γ = SUM` — total frequency of the constituent edges (the paper's
    /// experimental choice, §6.2).
    #[default]
    Sum,
    /// `Γ = MIN`.
    Min,
    /// `Γ = MAX`.
    Max,
    /// `Γ = AVERAGE`.
    Average,
    /// `Γ = COUNT` of edges whose estimate is non-zero — the subgraph's
    /// *materialized* edge count.
    CountPresent,
    /// Population variance of the constituent edge frequencies — a
    /// homogeneity measure for the subgraph's activity.
    Variance,
    /// Median of the constituent edge frequencies (lower middle for even
    /// lengths) — a heavy-hitter-robust center.
    Median,
    /// Euclidean norm `√(Σ f̃²)` — the subgraph's frequency "energy",
    /// dominated by its hottest edges.
    L2Norm,
}

impl Aggregator {
    /// Apply the aggregate over per-edge values.
    pub fn apply(&self, values: &[u64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let n = values.len() as f64;
        match self {
            Aggregator::Sum => values.iter().map(|&v| v as f64).sum(),
            Aggregator::Min => values.iter().copied().min().unwrap_or(0) as f64,
            Aggregator::Max => values.iter().copied().max().unwrap_or(0) as f64,
            Aggregator::Average => values.iter().map(|&v| v as f64).sum::<f64>() / n,
            Aggregator::CountPresent => values.iter().filter(|&&v| v > 0).count() as f64,
            Aggregator::Variance => {
                let mean = values.iter().map(|&v| v as f64).sum::<f64>() / n;
                values
                    .iter()
                    .map(|&v| (v as f64 - mean).powi(2))
                    .sum::<f64>()
                    / n
            }
            Aggregator::Median => {
                let mut sorted: Vec<u64> = values.to_vec();
                sorted.sort_unstable();
                sorted[(sorted.len() - 1) / 2] as f64
            }
            Aggregator::L2Norm => values
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum::<f64>()
                .sqrt(),
        }
    }
}

/// Answer an aggregate subgraph query by decomposing it into its
/// constituent edge queries and applying `Γ` to the estimates (§5).
pub fn estimate_subgraph<E: EdgeEstimator + ?Sized>(
    estimator: &E,
    query: &SubgraphQuery,
    aggregator: Aggregator,
) -> f64 {
    let values: Vec<u64> = query
        .edges
        .iter()
        .map(|&e| estimator.estimate_edge(e))
        .collect();
    aggregator.apply(&values)
}

/// Answer an aggregate subgraph query with an arbitrary aggregate
/// function over the per-edge estimates — §7's "complex functions of edge
/// frequencies" without enumerating them. The closure receives the
/// estimates in the query's edge order.
pub fn estimate_subgraph_with<E, F>(estimator: &E, query: &SubgraphQuery, gamma: F) -> f64
where
    E: EdgeEstimator + ?Sized,
    F: FnOnce(&[u64]) -> f64,
{
    let values: Vec<u64> = query
        .edges
        .iter()
        .map(|&e| estimator.estimate_edge(e))
        .collect();
    gamma(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gstream::edge::StreamEdge;
    use gstream::ExactCounter;

    fn truth() -> ExactCounter {
        let stream = vec![
            StreamEdge::weighted(Edge::new(1u32, 2u32), 0, 10),
            StreamEdge::weighted(Edge::new(2u32, 3u32), 1, 20),
            StreamEdge::weighted(Edge::new(3u32, 4u32), 2, 30),
        ];
        ExactCounter::from_stream(&stream)
    }

    fn q() -> SubgraphQuery {
        SubgraphQuery {
            edges: vec![
                Edge::new(1u32, 2u32),
                Edge::new(2u32, 3u32),
                Edge::new(3u32, 4u32),
            ],
        }
    }

    #[test]
    fn aggregators_compute_expected_values() {
        let t = truth();
        assert_eq!(estimate_subgraph(&t, &q(), Aggregator::Sum), 60.0);
        assert_eq!(estimate_subgraph(&t, &q(), Aggregator::Min), 10.0);
        assert_eq!(estimate_subgraph(&t, &q(), Aggregator::Max), 30.0);
        assert_eq!(estimate_subgraph(&t, &q(), Aggregator::Average), 20.0);
    }

    #[test]
    fn extended_aggregators_compute_expected_values() {
        let t = truth();
        // Frequencies of q() are [10, 20, 30].
        assert_eq!(estimate_subgraph(&t, &q(), Aggregator::CountPresent), 3.0);
        assert_eq!(estimate_subgraph(&t, &q(), Aggregator::Median), 20.0);
        // Variance of {10,20,30} = 200/3·... mean 20, deviations²: 100+0+100 → /3.
        let var = estimate_subgraph(&t, &q(), Aggregator::Variance);
        assert!((var - 200.0 / 3.0).abs() < 1e-9);
        let l2 = estimate_subgraph(&t, &q(), Aggregator::L2Norm);
        assert!((l2 - (1400.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn count_present_skips_absent_edges() {
        let t = truth();
        let query = SubgraphQuery {
            edges: vec![Edge::new(1u32, 2u32), Edge::new(77u32, 88u32)],
        };
        assert_eq!(estimate_subgraph(&t, &query, Aggregator::CountPresent), 1.0);
    }

    #[test]
    fn median_even_length_takes_lower_middle() {
        let t = truth();
        let query = SubgraphQuery {
            edges: vec![Edge::new(1u32, 2u32), Edge::new(2u32, 3u32)],
        };
        // Frequencies [10, 20]: lower middle = 10.
        assert_eq!(estimate_subgraph(&t, &query, Aggregator::Median), 10.0);
    }

    #[test]
    fn custom_gamma_closure() {
        let t = truth();
        // Geometric mean — a genuinely "complex function" of §7.
        let gm = estimate_subgraph_with(&t, &q(), |vals| {
            let logsum: f64 = vals.iter().map(|&v| (v as f64).ln()).sum();
            (logsum / vals.len() as f64).exp()
        });
        let expect = (10.0f64 * 20.0 * 30.0).powf(1.0 / 3.0);
        assert!((gm - expect).abs() < 1e-9);
    }

    #[test]
    fn empty_query_aggregates_to_zero() {
        let t = truth();
        let empty = SubgraphQuery { edges: vec![] };
        for agg in [
            Aggregator::Sum,
            Aggregator::Min,
            Aggregator::Max,
            Aggregator::Average,
            Aggregator::CountPresent,
            Aggregator::Variance,
            Aggregator::Median,
            Aggregator::L2Norm,
        ] {
            assert_eq!(estimate_subgraph(&t, &empty, agg), 0.0);
        }
    }

    #[test]
    fn sketches_implement_estimator() {
        use crate::EdgeSink;
        let stream = vec![
            StreamEdge::weighted(Edge::new(1u32, 2u32), 0, 10),
            StreamEdge::weighted(Edge::new(2u32, 3u32), 1, 20),
        ];
        let mut gs = crate::GSketch::builder()
            .memory_bytes(1 << 14)
            .min_width(16)
            .build_from_sample(&stream)
            .unwrap();
        gs.ingest(&stream);
        let mut gl = crate::GlobalSketch::new(1 << 14, 3, 1).unwrap();
        gl.ingest(&stream);
        let query = SubgraphQuery {
            edges: vec![Edge::new(1u32, 2u32), Edge::new(2u32, 3u32)],
        };
        // SUM over CountMin estimates never underestimates.
        assert!(estimate_subgraph(&gs, &query, Aggregator::Sum) >= 30.0);
        assert!(estimate_subgraph(&gl, &query, Aggregator::Sum) >= 30.0);
    }

    /// The paper's headline structure — `estimate_subgraph` over a
    /// partitioned sketch — must also run against the concurrent and
    /// windowed deployments (they were the only estimators missing the
    /// trait).
    #[test]
    fn concurrent_and_windowed_implement_estimator() {
        use crate::EdgeSink;
        let stream = vec![
            StreamEdge::weighted(Edge::new(1u32, 2u32), 0, 10),
            StreamEdge::weighted(Edge::new(2u32, 3u32), 1, 20),
            StreamEdge::weighted(Edge::new(1u32, 2u32), 150, 5),
        ];
        let query = SubgraphQuery {
            edges: vec![Edge::new(1u32, 2u32), Edge::new(2u32, 3u32)],
        };

        let gs = crate::GSketch::builder()
            .memory_bytes(1 << 14)
            .min_width(16)
            .build_from_sample(&stream)
            .unwrap();
        let mut conc = crate::ConcurrentGSketch::from_gsketch(gs);
        conc.ingest(&stream);
        assert!(estimate_subgraph(&conc, &query, Aggregator::Sum) >= 35.0);

        let mut windowed = crate::WindowedGSketch::new(
            crate::WindowConfig {
                span: 100,
                memory_bytes_per_window: 1 << 14,
                sample_capacity: 64,
                seed: 5,
            },
            crate::GSketch::builder().min_width(16),
        )
        .unwrap();
        windowed.ingest(&stream);
        // Lifetime SUM covers both windows; CountMin never underestimates.
        assert!(estimate_subgraph(&windowed, &query, Aggregator::Sum) >= 35.0);
        assert!(estimate_subgraph(&windowed, &query, Aggregator::Max) >= 20.0);
    }
}
