//! The hash structure `H : V → S_i` mapping source vertices to their
//! localized sketches (§5 of the paper; memory model in DESIGN.md §6).
//!
//! The router answers in **flat slot ids**: partition `i` is slot `i` and
//! the outlier sketch is the *last* slot (`num_partitions`). The ingest
//! hot path therefore indexes straight into the synopsis bank with a
//! `u32` — no enum branch between "partition" and "outlier" — while the
//! query/diagnostic surface keeps the descriptive [`SketchId`] view.

use crate::partition::PartitionPlan;
use gstream::fxhash::FxHashMap;
use gstream::vertex::VertexId;
use serde::{Deserialize, Serialize};

/// Identifier of a localized sketch within a [`crate::GSketch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SketchId {
    /// One of the partitioned sketches (index into the partition list).
    Partition(u32),
    /// The outlier sketch for vertices absent from the data sample (§5).
    Outlier,
}

/// Routes source vertices to sketch slots.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Router {
    map: FxHashMap<VertexId, u32>,
    /// The outlier's flat slot id — one past the last partition, so it is
    /// also the number of partitions.
    outlier_slot: u32,
}

impl Router {
    /// Build the routing table from a partition plan. The outlier slot is
    /// pinned to `plan.len()`, matching the bank layout `GSketch` builds
    /// (partitions first, outlier last).
    pub fn from_plan(plan: &PartitionPlan) -> Self {
        // lint: allow(no-panics) — a plan with more than 2^32 leaves cannot
        // exist: each leaf costs width >= 2 cells of the memory budget.
        let outlier_slot = u32::try_from(plan.len()).expect("fewer than 2^32 partitions");
        let mut map = FxHashMap::default();
        for (i, leaf) in plan.leaves.iter().enumerate() {
            let idx = i as u32; // bounded by outlier_slot above
            for &v in &leaf.vertices {
                let prev = map.insert(v, idx);
                debug_assert!(prev.is_none(), "vertex routed twice: {v}");
            }
        }
        Self { map, outlier_slot }
    }

    /// The flat slot responsible for edges emanating from `src`:
    /// partition index, or the outlier slot for unsampled vertices. This
    /// is the hot-path entry point — one hash probe, no branch on the
    /// result.
    #[inline]
    pub fn slot(&self, src: VertexId) -> u32 {
        match self.map.get(&src) {
            Some(&i) => i,
            None => self.outlier_slot,
        }
    }

    /// The sketch responsible for edges emanating from `src`, in the
    /// descriptive [`SketchId`] form used by queries and diagnostics.
    #[inline]
    pub fn route(&self, src: VertexId) -> SketchId {
        self.id_of_slot(self.slot(src))
    }

    /// Translate a flat slot id back into a [`SketchId`].
    #[inline]
    pub fn id_of_slot(&self, slot: u32) -> SketchId {
        if slot == self.outlier_slot {
            SketchId::Outlier
        } else {
            SketchId::Partition(slot)
        }
    }

    /// The outlier's flat slot id (= number of partitions).
    #[inline]
    pub fn outlier_slot(&self) -> u32 {
        self.outlier_slot
    }

    /// Total number of slots the router addresses (partitions + outlier).
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.outlier_slot as usize + 1
    }

    /// Number of vertices with explicit routes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the routing table is empty (everything → outlier).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Memory footprint estimate of the routing table in bytes (the §5
    /// "marginal overhead" the paper accounts for; model in DESIGN.md §6).
    ///
    /// Hashbrown — the table under `std::collections::HashMap`, hence
    /// under `FxHashMap` — allocates a power-of-two bucket array sized so
    /// the load factor stays at or below 7/8, and stores one byte of
    /// control metadata per bucket (plus a constant-size sentinel group).
    /// Each bucket holds one `(VertexId, u32)` entry inline. The model
    /// reproduces exactly that accounting from the map's reported
    /// capacity, so it tracks the real allocation instead of the
    /// `capacity × (entry + 2)` underestimate the pre-flat-slot router
    /// shipped (which ignored the power-of-two rounding entirely).
    pub fn approx_bytes(&self) -> usize {
        table_bytes::<(VertexId, u32)>(self.map.capacity()) + std::mem::size_of::<u32>()
    }
}

/// The ownership map of the owner-sharded execution engine (DESIGN.md
/// §11): a partition of the flat slot space `0..num_slots` into one
/// **contiguous** slot range per owning worker.
///
/// Contiguity is the point. Slot blocks sit back-to-back in the arena
/// slab (DESIGN.md §2), so a contiguous slot range is a contiguous byte
/// range of counters: each owner commits plain stores into its own
/// slice, no two owners share a cache line beyond the two range
/// boundaries, and first-touch initialization of the range places it on
/// the owner's NUMA node. The map is a pure function of
/// `(num_slots, owners)` — both the scatter stage and the slot-routed
/// query path derive the identical assignment without sharing state.
///
/// Ranges are balanced to within one slot: slot `s` belongs to owner
/// `s·owners / num_slots`, the classic proportional split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwnerMap {
    num_slots: usize,
    owners: usize,
}

impl OwnerMap {
    /// A map of `num_slots` slots over `owners` workers. `owners` is
    /// clamped to `1..=num_slots` (an owner with zero slots would idle;
    /// zero owners would own nothing).
    pub fn new(num_slots: usize, owners: usize) -> Self {
        Self {
            num_slots: num_slots.max(1),
            owners: owners.clamp(1, num_slots.max(1)),
        }
    }

    /// Number of owning workers (after clamping).
    #[inline]
    pub fn owners(&self) -> usize {
        self.owners
    }

    /// Number of slots in the mapped space.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// The worker owning `slot`.
    #[inline]
    pub fn owner_of(&self, slot: u32) -> u32 {
        debug_assert!((slot as usize) < self.num_slots);
        // cast: u64 -> u32; the quotient is < owners, which fits u32 by
        // construction (owners <= num_slots <= u32 slot ids + 1).
        ((slot as u64 * self.owners as u64) / self.num_slots as u64) as u32
    }

    /// The half-open slot range `[lo, hi)` owned by `owner`. Ranges of
    /// consecutive owners tile `0..num_slots` exactly.
    #[inline]
    pub fn slot_range(&self, owner: u32) -> (u32, u32) {
        let lo = (owner as u64 * self.num_slots as u64).div_ceil(self.owners as u64);
        let hi = ((owner as u64 + 1) * self.num_slots as u64).div_ceil(self.owners as u64);
        // cast: u64 -> u32; both bounds are <= num_slots, which fits u32
        // (slot ids are u32).
        (lo as u32, hi as u32)
    }
}

/// Hashbrown allocation model: bytes owned by a `HashMap` whose usable
/// capacity is `capacity` and whose inline entries are `T`.
///
/// `capacity == 0` means no allocation at all. Otherwise the bucket count
/// is the smallest power of two whose 7/8 load bound covers `capacity`
/// (with a floor of 4 buckets — hashbrown's smallest non-empty table),
/// each bucket carries `size_of::<T>()` payload plus one control byte,
/// and one 16-byte sentinel control group terminates probe sequences.
pub(crate) fn table_bytes<T>(capacity: usize) -> usize {
    if capacity == 0 {
        return 0;
    }
    // Smallest power-of-two bucket count b with capacity <= b * 7 / 8.
    let mut buckets = 4usize;
    while buckets * 7 / 8 < capacity {
        buckets *= 2;
    }
    buckets * (std::mem::size_of::<T>() + 1) + 16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PlanLeaf;

    fn plan(groups: &[&[u32]]) -> PartitionPlan {
        PartitionPlan {
            leaves: groups
                .iter()
                .map(|vs| PlanLeaf {
                    vertices: vs.iter().map(|&v| VertexId(v)).collect(),
                    width: 16,
                    shrunk: false,
                    freq_mass: 1,
                    degree_mass: 1,
                    error_factor: 1.0,
                })
                .collect(),
            nodes_examined: 0,
        }
    }

    #[test]
    fn routes_follow_plan() {
        let r = Router::from_plan(&plan(&[&[1, 2], &[3]]));
        assert_eq!(r.route(VertexId(1)), SketchId::Partition(0));
        assert_eq!(r.route(VertexId(2)), SketchId::Partition(0));
        assert_eq!(r.route(VertexId(3)), SketchId::Partition(1));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn unknown_vertices_route_to_outlier() {
        let r = Router::from_plan(&plan(&[&[1]]));
        assert_eq!(r.route(VertexId(99)), SketchId::Outlier);
    }

    #[test]
    fn empty_plan_routes_everything_to_outlier() {
        let r = Router::from_plan(&plan(&[]));
        assert!(r.is_empty());
        assert_eq!(r.route(VertexId(0)), SketchId::Outlier);
        assert_eq!(r.slot(VertexId(0)), 0);
        assert_eq!(r.num_slots(), 1);
    }

    #[test]
    fn flat_slots_agree_with_sketch_ids() {
        let r = Router::from_plan(&plan(&[&[1, 2], &[3], &[4]]));
        assert_eq!(r.outlier_slot(), 3);
        assert_eq!(r.num_slots(), 4);
        assert_eq!(r.slot(VertexId(3)), 1);
        assert_eq!(r.id_of_slot(1), SketchId::Partition(1));
        assert_eq!(r.slot(VertexId(77)), 3);
        assert_eq!(r.id_of_slot(3), SketchId::Outlier);
        for v in [1u32, 2, 3, 4, 77, 1_000_000] {
            assert_eq!(r.id_of_slot(r.slot(VertexId(v))), r.route(VertexId(v)));
        }
    }

    /// Owner ranges are contiguous, tile the slot space exactly, are
    /// balanced to within one slot, and agree with `owner_of`.
    #[test]
    fn owner_map_ranges_tile_and_agree() {
        for num_slots in [1usize, 2, 3, 7, 8, 64, 129, 1000] {
            for owners in [1usize, 2, 3, 4, 8, 17, 2000] {
                let m = OwnerMap::new(num_slots, owners);
                assert!(m.owners() >= 1 && m.owners() <= num_slots);
                let mut next = 0u32;
                let base = num_slots / m.owners();
                for w in 0..m.owners() as u32 {
                    let (lo, hi) = m.slot_range(w);
                    assert_eq!(lo, next, "gap before owner {w}");
                    assert!(hi > lo, "empty range for owner {w}");
                    let span = (hi - lo) as usize;
                    assert!(
                        span == base || span == base + 1,
                        "unbalanced range {span} ({num_slots} slots / {} owners)",
                        m.owners()
                    );
                    for s in lo..hi {
                        assert_eq!(m.owner_of(s), w);
                    }
                    next = hi;
                }
                assert_eq!(next as usize, num_slots, "ranges do not tile");
            }
        }
    }

    #[test]
    fn owner_map_degenerate_inputs_clamp() {
        let m = OwnerMap::new(0, 0);
        assert_eq!(m.num_slots(), 1);
        assert_eq!(m.owners(), 1);
        assert_eq!(m.owner_of(0), 0);
        assert_eq!(m.slot_range(0), (0, 1));
    }

    #[test]
    fn approx_bytes_positive_when_populated() {
        let r = Router::from_plan(&plan(&[&[1, 2, 3]]));
        assert!(r.approx_bytes() > 0);
    }

    /// Pin the overhead model against the actual `FxHashMap` footprint:
    /// the model must reproduce hashbrown's bucket rounding from the
    /// map's reported capacity, never undercount the entries actually
    /// stored, and never exceed the theoretical worst case (every entry
    /// allocated at minimum load just after a doubling).
    #[test]
    fn approx_bytes_tracks_real_fxhashmap_footprint() {
        let entry = std::mem::size_of::<(VertexId, u32)>();
        assert_eq!(entry, 8);

        // Exact pins of the allocation model for known capacities:
        // 4 buckets hold up to 3 entries, 8 up to 7, doubling onward.
        assert_eq!(table_bytes::<(VertexId, u32)>(0), 0);
        assert_eq!(table_bytes::<(VertexId, u32)>(3), 4 * 9 + 16);
        assert_eq!(table_bytes::<(VertexId, u32)>(7), 8 * 9 + 16);
        assert_eq!(table_bytes::<(VertexId, u32)>(8), 16 * 9 + 16);
        assert_eq!(table_bytes::<(VertexId, u32)>(448), 512 * 9 + 16);
        assert_eq!(table_bytes::<(VertexId, u32)>(449), 1024 * 9 + 16);

        for n in [1usize, 3, 7, 8, 100, 1_000, 10_000] {
            let groups: Vec<u32> = (0..n as u32).collect();
            let r = Router::from_plan(&plan(&[&groups]));
            let map: FxHashMap<VertexId, u32> =
                (0..n as u32).map(|v| (VertexId(v), 0u32)).collect();
            // The router's own map followed the same growth policy, so
            // the model applied to either capacity must agree.
            assert_eq!(
                r.approx_bytes(),
                table_bytes::<(VertexId, u32)>(map.capacity()) + 4,
                "model diverges from a real FxHashMap at {n} entries"
            );
            // Lower bound: payload + control byte for every live entry.
            assert!(r.approx_bytes() > n * (entry + 1));
            // Upper bound: just after a doubling the table is at ~7/16
            // load, so the allocation never exceeds 16/7 of the live
            // payload+control bytes — except at the 4-bucket floor —
            // plus the constant tail.
            let ratio_bound = (n * (entry + 1) * 16 / 7).max(4 * (entry + 1));
            assert!(
                r.approx_bytes() <= ratio_bound + entry + 1 + 16 + 4,
                "model overshoots at {n} entries: {}",
                r.approx_bytes()
            );
        }
    }
}
