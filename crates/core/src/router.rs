//! The hash structure `H : V → S_i` mapping source vertices to their
//! localized sketches (§5 of the paper).

use crate::partition::PartitionPlan;
use gstream::fxhash::FxHashMap;
use gstream::vertex::VertexId;
use serde::{Deserialize, Serialize};

/// Identifier of a localized sketch within a [`crate::GSketch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SketchId {
    /// One of the partitioned sketches (index into the partition list).
    Partition(u32),
    /// The outlier sketch for vertices absent from the data sample (§5).
    Outlier,
}

/// Routes source vertices to sketches.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Router {
    map: FxHashMap<VertexId, u32>,
}

impl Router {
    /// Build the routing table from a partition plan.
    pub fn from_plan(plan: &PartitionPlan) -> Self {
        let mut map = FxHashMap::default();
        for (i, leaf) in plan.leaves.iter().enumerate() {
            let idx = u32::try_from(i).expect("fewer than 2^32 partitions");
            for &v in &leaf.vertices {
                let prev = map.insert(v, idx);
                debug_assert!(prev.is_none(), "vertex routed twice: {v}");
            }
        }
        Self { map }
    }

    /// The sketch responsible for edges emanating from `src`.
    #[inline]
    pub fn route(&self, src: VertexId) -> SketchId {
        match self.map.get(&src) {
            Some(&i) => SketchId::Partition(i),
            None => SketchId::Outlier,
        }
    }

    /// Number of vertices with explicit routes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the routing table is empty (everything → outlier).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Memory footprint estimate of the routing table in bytes (the §5
    /// "marginal overhead" the paper accounts for).
    pub fn approx_bytes(&self) -> usize {
        // Key (4) + value (4) + hashbrown per-entry overhead (~1 byte
        // control + load-factor slack): a close-enough engineering figure.
        self.map.capacity() * (std::mem::size_of::<(VertexId, u32)>() + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PlanLeaf;

    fn plan(groups: &[&[u32]]) -> PartitionPlan {
        PartitionPlan {
            leaves: groups
                .iter()
                .map(|vs| PlanLeaf {
                    vertices: vs.iter().map(|&v| VertexId(v)).collect(),
                    width: 16,
                    shrunk: false,
                    freq_mass: 1,
                    degree_mass: 1,
                    error_factor: 1.0,
                })
                .collect(),
            nodes_examined: 0,
        }
    }

    #[test]
    fn routes_follow_plan() {
        let r = Router::from_plan(&plan(&[&[1, 2], &[3]]));
        assert_eq!(r.route(VertexId(1)), SketchId::Partition(0));
        assert_eq!(r.route(VertexId(2)), SketchId::Partition(0));
        assert_eq!(r.route(VertexId(3)), SketchId::Partition(1));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn unknown_vertices_route_to_outlier() {
        let r = Router::from_plan(&plan(&[&[1]]));
        assert_eq!(r.route(VertexId(99)), SketchId::Outlier);
    }

    #[test]
    fn empty_plan_routes_everything_to_outlier() {
        let r = Router::from_plan(&plan(&[]));
        assert!(r.is_empty());
        assert_eq!(r.route(VertexId(0)), SketchId::Outlier);
    }

    #[test]
    fn approx_bytes_positive_when_populated() {
        let r = Router::from_plan(&plan(&[&[1, 2, 3]]));
        assert!(r.approx_bytes() > 0);
    }
}
