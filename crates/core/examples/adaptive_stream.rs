//! Sample-free deployment: the adaptive gSketch partitions itself from
//! the stream prefix — no pre-collected data sample required (the §7
//! future-work scenario).
//!
//! Run with: `cargo run --release -p gsketch --example adaptive_stream`

use gsketch::adaptive::Phase;
use gsketch::{AdaptiveConfig, AdaptiveGSketch, EdgeSink, GlobalSketch};
use gstream::gen::{RmatTrafficConfig, RmatTrafficGenerator};
use gstream::ExactCounter;

fn main() {
    // An R-MAT topology replayed under per-source activity — the
    // GTGraph-substitute traffic model with the §3.3 properties that
    // make partitioning worthwhile.
    let mut cfg = RmatTrafficConfig::gtgraph(14, 100_000, 1_200_000, 7);
    cfg.activity_alpha = 1.2;
    let stream: Vec<_> = RmatTrafficGenerator::new(cfg).generate();
    let truth = ExactCounter::from_stream(&stream);

    let budget = 256 * 1024;
    let mut adaptive = AdaptiveGSketch::new(AdaptiveConfig {
        memory_bytes: budget,
        warmup_arrivals: 20_000, // the stream prefix is the "sample"
        warmup_memory_fraction: 0.15,
        depth: 1,
        min_width: 128,
        ..AdaptiveConfig::default()
    })
    .expect("valid configuration");

    // Ingest; the switchover happens automatically mid-stream.
    let mut switched_at = None;
    for (i, se) in stream.iter().enumerate() {
        adaptive.update(*se);
        if switched_at.is_none() && adaptive.phase() == Phase::Partitioned {
            switched_at = Some(i + 1);
        }
    }
    println!(
        "switched from warm-up to {} partitions after {} arrivals",
        adaptive.num_partitions(),
        switched_at.unwrap_or(0),
    );

    // Same memory for the baseline.
    let mut global = GlobalSketch::new(budget, 1, 99).expect("valid configuration");
    global.ingest(&stream);

    // Compare average relative error over all distinct edges.
    let mut adaptive_err = 0.0f64;
    let mut global_err = 0.0f64;
    let mut n = 0usize;
    for (edge, f) in truth.iter() {
        adaptive_err += (adaptive.estimate(edge) - f) as f64 / f as f64;
        global_err += (global.estimate(edge) - f) as f64 / f as f64;
        n += 1;
    }
    println!(
        "avg relative error over {n} edges: adaptive {:.3} vs global {:.3}",
        adaptive_err / n as f64,
        global_err / n as f64,
    );
    println!(
        "memory: adaptive {} bytes (warm-up + partitions), global {} bytes",
        adaptive.bytes(),
        global.bytes(),
    );
}
