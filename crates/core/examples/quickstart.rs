//! Quickstart: build a gSketch from a data sample, stream edges through
//! it, and answer edge + subgraph queries.
//!
//! Run with: `cargo run --release -p gsketch --example quickstart`

use gsketch::{estimate_subgraph, Aggregator, EdgeSink, GSketch, GlobalSketch};
use gstream::workload::SubgraphQuery;
use gstream::{Edge, ExactCounter, Interner, StreamEdge};

fn main() {
    // Vertices carry string labels in the paper's model; the interner
    // maps them to dense ids once.
    let mut names = Interner::new();
    let alice = names.intern("alice");
    let bob = names.intern("bob");
    let carol = names.intern("carol");
    let dave = names.intern("dave");

    // A toy graph stream: alice↔bob chat constantly, the rest is sparse.
    let mut stream = Vec::new();
    for t in 0..10_000u64 {
        stream.push(StreamEdge::unit(Edge::new(alice, bob), t));
        if t % 50 == 0 {
            stream.push(StreamEdge::unit(Edge::new(bob, carol), t));
        }
        if t % 200 == 0 {
            stream.push(StreamEdge::unit(Edge::new(carol, dave), t));
        }
    }

    // Scenario 1: a data sample (here the stream prefix) drives the
    // sketch partitioning; then the full stream is ingested.
    let sample = &stream[..500];
    let mut gs = GSketch::builder()
        .memory_bytes(64 * 1024)
        .min_width(16)
        .build_from_sample(sample)
        .expect("valid configuration");
    gs.ingest(&stream);

    // The Global Sketch baseline gets the same memory.
    let mut global = GlobalSketch::new(64 * 1024, 3, 42).expect("valid configuration");
    global.ingest(&stream);

    // Ground truth for comparison (only possible on toy data!).
    let truth = ExactCounter::from_stream(&stream);

    println!("edge query                     truth   gSketch   Global");
    for (a, b) in [(alice, bob), (bob, carol), (carol, dave)] {
        let e = Edge::new(a, b);
        println!(
            "{:>6} -> {:<10} {:>12} {:>9} {:>8}",
            names.label(a).unwrap(),
            names.label(b).unwrap(),
            truth.frequency(e),
            gs.estimate(e),
            global.estimate(e),
        );
    }

    // An aggregate subgraph query: total traffic of the path.
    let community = SubgraphQuery {
        edges: vec![
            Edge::new(alice, bob),
            Edge::new(bob, carol),
            Edge::new(carol, dave),
        ],
    };
    println!(
        "\ncommunity SUM: truth {} | gSketch {} | Global {}",
        estimate_subgraph(&truth, &community, Aggregator::Sum),
        estimate_subgraph(&gs, &community, Aggregator::Sum),
        estimate_subgraph(&global, &community, Aggregator::Sum),
    );

    // Per-query confidence comes from the answering partition.
    let detail = gs.estimate_detailed(Edge::new(alice, bob));
    println!(
        "\nalice->bob: estimate {} (±{:.1} with confidence {:.3}, answered by {:?})",
        detail.value, detail.error_bound, detail.confidence, detail.sketch
    );
    println!(
        "gSketch built {} partitions in {} bytes",
        gs.num_partitions(),
        gs.bytes()
    );
}
