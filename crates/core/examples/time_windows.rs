//! Dynamic queries over time windows (paper §5): the timeline is divided
//! into intervals, each window gets its own partitioned sketch, and the
//! partitioning of every window is driven by a reservoir sample of the
//! previous one. Interval queries extrapolate across overlapping windows.
//!
//! Run with: `cargo run --release -p gsketch --example time_windows`

use gsketch::{GSketch, WindowConfig, WindowedGSketch};
use gstream::{Edge, StreamEdge};

fn main() {
    // Four "days" of traffic, 10_000 ticks each. Edge (1,2) is busy in
    // the mornings of every day; edge (3,4) only exists on day 3.
    let day = 10_000u64;
    let mut w = WindowedGSketch::new(
        WindowConfig {
            span: day,
            memory_bytes_per_window: 64 * 1024,
            sample_capacity: 2_000,
            seed: 11,
        },
        GSketch::builder().min_width(16),
    )
    .expect("valid configuration");

    for d in 0..4u64 {
        for t in 0..day {
            let ts = d * day + t;
            if t < day / 2 {
                w.try_insert(StreamEdge::unit(Edge::new(1u32, 2u32), ts))
                    .unwrap();
            }
            if d == 2 {
                w.try_insert(StreamEdge::unit(Edge::new(3u32, 4u32), ts))
                    .unwrap();
            }
            // Background chatter.
            w.try_insert(StreamEdge::unit(
                Edge::new((ts % 97) as u32 + 10, (ts % 89) as u32 + 200),
                ts,
            ))
            .unwrap();
        }
    }

    let busy = Edge::new(1u32, 2u32);
    let day3 = Edge::new(3u32, 4u32);

    println!("windows sealed: {}", w.sealed_windows());
    println!("\nedge (1,2) — true 5_000/day:");
    for d in 0..4u64 {
        println!(
            "  day {}: estimated {:.0}",
            d,
            w.estimate_interval(busy, d * day, (d + 1) * day - 1)
        );
    }
    println!(
        "  lifetime: estimated {:.0} (true 20_000)",
        w.estimate_lifetime(busy)
    );

    println!("\nedge (3,4) — exists only on day 2 (true 10_000 that day):");
    for d in 0..4u64 {
        println!(
            "  day {}: estimated {:.0}",
            d,
            w.estimate_interval(day3, d * day, (d + 1) * day - 1)
        );
    }

    // Partial-window extrapolation: half of day 0.
    println!(
        "\nedge (1,2) over the first half of day 0: estimated {:.0} (true 5_000; \
         extrapolation assumes uniform arrival within the window)",
        w.estimate_interval(busy, 0, day / 2 - 1)
    );
    println!("\ntotal memory across windows: {} bytes", w.bytes());
}
