//! Persistence: snapshot a live gSketch to disk and restore it in a
//! "new process", with estimates and routing intact.
//!
//! Run with: `cargo run --release -p gsketch --example persistence`

use gsketch::{load_gsketch, save_gsketch, EdgeSink, GSketch};
use gstream::gen::{SmallWorldConfig, SmallWorldGenerator};
use gstream::sample::sample_iter;
use gstream::Edge;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Day 1: build from a sample, ingest the morning's traffic.
    let stream: Vec<_> =
        SmallWorldGenerator::new(SmallWorldConfig::new(2_000, 200_000, 3)).collect();
    let mut rng = StdRng::seed_from_u64(42);
    let sample = sample_iter(stream.iter().copied(), 10_000, &mut rng);
    let mut sketch = GSketch::builder()
        .memory_bytes(128 * 1024)
        .min_width(64)
        .sample_rate(10_000.0 / stream.len() as f64)
        .build_from_sample(&sample)
        .expect("valid configuration");
    let midpoint = stream.len() / 2;
    sketch.ingest(&stream[..midpoint]);

    // Snapshot at the shift change.
    let path = std::env::temp_dir().join("gsketch_example_snapshot.json");
    save_gsketch(&path, &sketch).expect("snapshot written");
    let snapshot_bytes = std::fs::metadata(&path).expect("snapshot exists").len();
    println!(
        "snapshotted {} partitions / {} counter bytes into {} bytes of JSON",
        sketch.num_partitions(),
        sketch.bytes(),
        snapshot_bytes,
    );

    // Day 2 (a different process, in spirit): restore and keep ingesting.
    let mut restored = load_gsketch(&path).expect("snapshot read");
    restored.ingest(&stream[midpoint..]);
    sketch.ingest(&stream[midpoint..]); // reference: the never-stopped sketch

    // The restored sketch is indistinguishable from one that never stopped.
    let mut checked = 0;
    for se in stream.iter().step_by(997) {
        assert_eq!(restored.estimate(se.edge), sketch.estimate(se.edge));
        assert_eq!(restored.route(se.edge), sketch.route(se.edge));
        checked += 1;
    }
    println!("restored sketch matches the uninterrupted one on {checked} probes");

    let probe = Edge::new(0u32, 1u32);
    println!(
        "probe {probe}: estimate {} via {:?}",
        restored.estimate(probe),
        restored.route(probe),
    );
    std::fs::remove_file(&path).ok();
}
