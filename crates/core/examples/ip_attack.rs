//! Network-intrusion scenario (paper §1, application 2): estimate attack
//! frequencies between IP pairs on a sensor stream that mixes port
//! scanners, sustained attacks, and background noise. Also demonstrates
//! the outlier sketch: IPs never seen in the data sample still get
//! estimates.
//!
//! Run with: `cargo run --release -p gsketch --example ip_attack`

use gsketch::{evaluate_edge_queries, EdgeSink, GSketch, GlobalSketch, SketchId, DEFAULT_G0};
use gstream::gen::{ipattack, IpAttackConfig};
use gstream::workload::uniform_distinct_queries;
use gstream::ExactCounter;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let stream = ipattack::generate(IpAttackConfig {
        hosts: 20_000,
        arrivals: 1_000_000,
        scanners: 20,
        attackers: 300,
        scan_subnet: 1_500,
        seed: 3,
        ..IpAttackConfig::default()
    });
    let truth = ExactCounter::from_stream(&stream);
    println!(
        "sensor feed: {} packets over {} distinct IP pairs",
        truth.arrivals(),
        truth.distinct_edges()
    );

    // The paper uses the first day of traffic as the data sample; we use
    // the same idea with a 12% prefix.
    let sample = &stream[..stream.len() * 12 / 100];
    let rate = sample.len() as f64 / stream.len() as f64;

    let memory = 512 * 1024;
    let mut gs = GSketch::builder()
        .memory_bytes(memory)
        .depth(1)
        .min_width(64)
        .sample_rate(rate)
        .build_from_sample_calibrated(sample, &stream)
        .expect("valid configuration");
    gs.ingest(&stream);
    let mut global = GlobalSketch::new(memory, 1, 5).expect("valid configuration");
    global.ingest(&stream);

    let mut rng = StdRng::seed_from_u64(17);
    let queries = uniform_distinct_queries(&truth, 5_000, &mut rng);
    let a = evaluate_edge_queries(&gs, &queries, &truth, DEFAULT_G0);
    let b = evaluate_edge_queries(&global, &queries, &truth, DEFAULT_G0);
    println!(
        "\n'How many times did X attack Y?' over {} queries:",
        queries.len()
    );
    println!(
        "gSketch: avg rel err {:.2}, effective {}",
        a.avg_relative_error, a.effective_queries
    );
    println!(
        "Global : avg rel err {:.2}, effective {}",
        b.avg_relative_error, b.effective_queries
    );

    // Outlier behaviour: count queries served by the outlier sketch and
    // their separate accuracy (the §6.6 robustness check).
    let outlier_queries: Vec<_> = queries
        .iter()
        .copied()
        .filter(|q| matches!(gs.route(*q), SketchId::Outlier))
        .collect();
    let o = evaluate_edge_queries(&gs, &outlier_queries, &truth, DEFAULT_G0);
    println!(
        "\noutlier sketch served {} of {} queries at avg rel err {:.2} \
         (vs {:.2} overall) — unsampled IPs remain answerable",
        outlier_queries.len(),
        queries.len(),
        o.avg_relative_error,
        a.avg_relative_error
    );

    // The heaviest attack pair is estimated almost exactly.
    let (heavy, f) = truth.iter().max_by_key(|&(_, f)| f).expect("non-empty");
    println!(
        "\nheaviest attack pair {heavy}: true {f}, gSketch {}, Global {}",
        gs.estimate(heavy),
        global.estimate(heavy)
    );
}
