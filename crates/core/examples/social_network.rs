//! Social-network scenario (paper §1, application 1): estimate
//! communication frequencies between friends and within communities on a
//! DBLP-like co-authorship stream, comparing gSketch with the Global
//! Sketch baseline at a tight memory budget.
//!
//! Run with: `cargo run --release -p gsketch --example social_network`

use gsketch::{
    evaluate_edge_queries, evaluate_subgraph_queries, Aggregator, EdgeSink, GSketch, GlobalSketch,
    DEFAULT_G0,
};
use gstream::gen::{dblp, DblpConfig};
use gstream::workload::{bfs_subgraph_queries, uniform_distinct_queries};
use gstream::ExactCounter;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A co-authorship stream with stable labs and one-off collaborations.
    let stream = dblp::generate(DblpConfig {
        authors: 20_000,
        papers: 80_000,
        seed: 7,
        ..DblpConfig::default()
    });
    let truth = ExactCounter::from_stream(&stream);
    println!(
        "stream: {} interactions over {} distinct pairs",
        truth.arrivals(),
        truth.distinct_edges()
    );

    // 5% reservoir data sample; queries are uniform over distinct pairs.
    let mut rng = StdRng::seed_from_u64(1);
    let sample = gstream::sample::sample_iter(stream.iter().copied(), stream.len() / 20, &mut rng);
    let rate = sample.len() as f64 / stream.len() as f64;
    let queries = uniform_distinct_queries(&truth, 5_000, &mut rng);
    let communities = bfs_subgraph_queries(&truth, 500, 10, &mut rng);

    let memory = 128 * 1024;
    let mut gs = GSketch::builder()
        .memory_bytes(memory)
        .depth(1)
        .min_width(64)
        .sample_rate(rate)
        .build_from_sample_calibrated(&sample, &stream)
        .expect("valid configuration");
    gs.ingest(&stream);
    let mut global = GlobalSketch::new(memory, 1, 9).expect("valid configuration");
    global.ingest(&stream);

    println!("\n-- edge queries: 'how often do these two interact?' --");
    let a = evaluate_edge_queries(&gs, &queries, &truth, DEFAULT_G0);
    let b = evaluate_edge_queries(&global, &queries, &truth, DEFAULT_G0);
    println!(
        "gSketch: avg rel err {:.2}, effective {}/{}",
        a.avg_relative_error, a.effective_queries, a.total_queries
    );
    println!(
        "Global : avg rel err {:.2}, effective {}/{}",
        b.avg_relative_error, b.effective_queries, b.total_queries
    );

    println!("\n-- community queries: 'how chatty is this group?' (Γ=SUM) --");
    let a = evaluate_subgraph_queries(&gs, &communities, &truth, Aggregator::Sum, DEFAULT_G0);
    let b = evaluate_subgraph_queries(&global, &communities, &truth, Aggregator::Sum, DEFAULT_G0);
    println!(
        "gSketch: avg rel err {:.3}, effective {}/{}",
        a.avg_relative_error, a.effective_queries, a.total_queries
    );
    println!(
        "Global : avg rel err {:.3}, effective {}/{}",
        b.avg_relative_error, b.effective_queries, b.total_queries
    );
    println!(
        "\ngSketch used {} partitions + outlier in {} bytes",
        gs.num_partitions(),
        gs.bytes()
    );
}
