//! Minimal, deterministic stand-in for the subset of the `rand` 0.8 API
//! this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, `Rng::gen::<f64>()`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The workspace builds fully offline, so the real crates.io `rand` is not
//! available; this crate keeps the same import paths and call sites so the
//! swap back is mechanical. `StdRng` here is xoshiro256++ seeded through
//! SplitMix64 — statistically strong for simulation workloads, **not**
//! cryptographically secure (the real `StdRng` is ChaCha12; nothing in the
//! workspace relies on that).

#![warn(missing_docs)]

/// A source of uniformly random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG that can be constructed from a seed, deterministically.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a single `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by rejection sampling (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Reject the final partial copy of `bound` in the u64 space.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every u64 value is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for serialization.
        ///
        /// Round-trips exactly through [`StdRng::from_state`]; the real
        /// `rand` has no such accessor, so callers that persist RNG state
        /// must gate on this vendored stand-in.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild an RNG from state words captured by [`StdRng::state`].
        ///
        /// An all-zero state (which xoshiro cannot accept) is remapped the
        /// same way [`SeedableRng::from_seed`] remaps it, so every input
        /// yields a working generator.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not be seeded with all zeros.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Extension methods for slices: shuffling and random choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 100 elements in order");
    }
}
