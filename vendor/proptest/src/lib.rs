//! Minimal offline stand-in for the `proptest` surface this workspace uses:
//! the `proptest!` macro (with optional `#![proptest_config(...)]` header),
//! `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, integer-range strategies,
//! tuple strategies, and `proptest::collection::vec`.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build: no shrinking (a failing case panics, and the case index plus the
//! generated inputs are printed to stderr), and generation is driven by a
//! deterministic per-test RNG seeded from the test name, so failures
//! reproduce across runs.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases to run per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; kept the same so the workspace's
        // statistical assertions see equivalent coverage.
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw one value from the full domain of the type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty : $draw:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$draw>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8: u64, u16: u64, u32: u64, u64: u64, usize: u64, i8: u64, i16: u64, i32: u64, i64: u64, isize: u64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite values only: the workspace's properties do arithmetic.
        rng.gen::<f64>() * 2e6 - 1e6
    }
}

/// Strategy for the full domain of `T`; see [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The canonical strategy for all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy producing `Vec`s of a given element strategy and length range.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `Vec` strategy: each case draws a length in `size`, then that many
    /// elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file typically imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Prints the failing case's index and generated inputs when the property
/// body panics (dropped during unwind). Created per case by [`proptest!`].
#[doc(hidden)]
pub struct CaseGuard {
    case: u32,
    inputs: String,
}

impl CaseGuard {
    /// Arm the guard for `case` with pre-rendered `inputs`.
    pub fn new(case: u32, inputs: String) -> Self {
        CaseGuard { case, inputs }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "[proptest] failing case #{} with inputs: {}",
                self.case, self.inputs
            );
        }
    }
}

/// Deterministic per-test RNG: seeded from the test's name so each property
/// explores a stable sequence of cases across runs.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for b in test_name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(seed)
}

/// Assert a property holds; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` against `cases` generated inputs.
/// The user writes `#[test]` inside the block (as with real proptest); the
/// macro re-emits it on the wrapper function.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                // Inputs are rendered as they are generated (before the
                // pattern binding consumes them) so a panicking body can
                // still report them. Requires generated values to be
                // `Debug`, as in real proptest.
                let mut __inputs = ::std::string::String::new();
                $(
                    let __generated = $crate::Strategy::generate(&($strategy), &mut __rng);
                    __inputs.push_str(concat!(stringify!($arg), " = "));
                    __inputs.push_str(&::std::format!("{:?}; ", &__generated));
                    let $arg = __generated;
                )+
                let __guard = $crate::CaseGuard::new(__case, __inputs);
                $body
                ::std::mem::drop(__guard);
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::collection::vec;
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds and tuples compose.
        #[test]
        fn ranges_in_bounds(x in 3u64..10, (a, b) in (0u32..5, 1u16..4)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((1..4).contains(&b));
        }

        /// Vec strategy respects its length range.
        #[test]
        fn vec_length_in_range(v in vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::RngCore;
        let mut a = test_rng("x");
        let mut b = test_rng("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = test_rng("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
