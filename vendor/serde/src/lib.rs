//! Minimal offline stand-in for the `serde` surface this workspace uses.
//!
//! The real serde models serialization through `Serializer`/`Deserializer`
//! visitors; everything here instead round-trips through one in-memory
//! [`Value`] tree that `serde_json` (the vendored one) renders to and parses
//! from JSON text. The public contract is intentionally the same shape the
//! workspace code relies on:
//!
//! - `use serde::{Serialize, Deserialize};` imports both the traits and the
//!   derive macros (re-exported from `serde_derive`, exactly like real serde
//!   with the `derive` feature).
//! - `#[derive(Serialize, Deserialize)]` works on named/tuple structs and on
//!   enums with unit and tuple variants (the only shapes in this workspace),
//!   using serde's externally-tagged representation.
//!
//! Maps with non-string keys are serialized as sequences of `[key, value]`
//! pairs (real serde_json would reject them at runtime; persistence here is
//! only ever read back by this same crate pair, so the representation just
//! has to round-trip).

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::{BuildHasher, Hash};

/// A JSON-shaped document tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact; JSON has no 2^53 limit we honor).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, as insertion-ordered key/value pairs.
    Map(Vec<(String, Value)>),
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Build an error noting what was expected and what was found.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error(format!("expected {what}, found {found:?}"))
    }
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the data-model tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the data-model tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Look up a struct field inside an object value (derive-macro helper).
pub fn value_field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, Error> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, val)| val)
            .ok_or_else(|| Error(format!("missing field `{name}`"))),
        other => Err(Error::expected("object", other)),
    }
}

/// Expect a sequence of exactly `n` elements (derive-macro helper).
pub fn value_seq(v: &Value, n: usize) -> Result<&[Value], Error> {
    match v {
        Value::Seq(items) if items.len() == n => Ok(items),
        Value::Seq(items) => Err(Error(format!(
            "expected sequence of {n} elements, found {}",
            items.len()
        ))),
        other => Err(Error::expected("sequence", other)),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

/// A `Value` serializes as itself, so pre-built trees flow through the
/// same entry points as derived types (e.g. `serde_json::to_string`).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // Non-finite floats serialize as null (see vendored serde_json).
            Value::Null => Ok(f64::NAN),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::expected("single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = value_seq(v, N)?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error(format!("expected array of {N} elements")))
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BinaryHeap<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BinaryHeap<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("sequence", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) of $n:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = value_seq(v, $n)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0) of 1;
    (A: 0, B: 1) of 2;
    (A: 0, B: 1, C: 2) of 3;
    (A: 0, B: 1, C: 2, D: 3) of 4;
}

impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: Serialize,
    V: Serialize,
    S: BuildHasher,
{
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items
                .iter()
                .map(|entry| {
                    let pair = value_seq(entry, 2)?;
                    Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
                })
                .collect(),
            other => Err(Error::expected("sequence of [key, value] pairs", other)),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items
                .iter()
                .map(|entry| {
                    let pair = value_seq(entry, 2)?;
                    Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
                })
                .collect(),
            other => Err(Error::expected("sequence of [key, value] pairs", other)),
        }
    }
}

impl<T, S> Serialize for HashSet<T, S>
where
    T: Serialize,
    S: BuildHasher,
{
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("sequence", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let x = 0.125f64;
        assert_eq!(f64::from_value(&x.to_value()).unwrap(), x);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2u64), (3, 4)];
        assert_eq!(Vec::<(u32, u64)>::from_value(&v.to_value()).unwrap(), v);
        let a = [9u64; 4];
        assert_eq!(<[u64; 4]>::from_value(&a.to_value()).unwrap(), a);
        let mut m = HashMap::new();
        m.insert(5u32, "five".to_string());
        let back: HashMap<u32, String> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::Str("nope".into())).is_err());
    }
}
