//! Minimal offline stand-in for the Criterion benchmarking API surface used
//! by this workspace: `criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, and `black_box`.
//!
//! Measurement model: each benchmark warms up briefly, then runs timed
//! batches until the measurement budget elapses, and reports the median
//! per-iteration latency (plus throughput when declared) on stdout. That is
//! deliberately simpler than real Criterion (no outlier analysis, no HTML
//! reports) but produces stable, comparable numbers for the perf
//! trajectory, and keeps `cargo bench` runs fast.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier for `name` measured at `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Anything `bench_function` accepts as an identifier.
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    measure_for: Duration,
    /// Per-batch mean latency in ns/iter; the median of these is reported.
    batch_ns: Vec<f64>,
}

impl Bencher {
    /// Run `routine` repeatedly, timing each batch, until the measurement
    /// budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up also sizes the batches: aim for ~1ms per batch.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 1 << 20) as u64;

        let start = Instant::now();
        while start.elapsed() < self.measure_for {
            let batch_start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let batch_elapsed = batch_start.elapsed();
            self.elapsed += batch_elapsed;
            self.iters_done += batch;
            self.batch_ns
                .push(batch_elapsed.as_nanos() as f64 / batch as f64);
        }
    }
}

/// Shared measurement settings.
#[derive(Debug, Clone)]
struct Settings {
    /// Scales the measurement budget, by analogy to Criterion's sample count.
    sample_size: usize,
    measurement_time: Duration,
}

impl Settings {
    fn budget(&self) -> Duration {
        // Real Criterion defaults to 100 samples over ~5s; scale linearly so
        // `.sample_size(10)` keeps heavy construction benches quick.
        let nanos = self.measurement_time.as_nanos() as u64;
        Duration::from_nanos((nanos * self.sample_size as u64 / 100).max(10_000_000))
    }
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 100,
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// The benchmark driver: entry point handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Set the nominal sample count (scales the measurement budget).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n;
        self
    }

    /// Set the nominal measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.settings.measurement_time = t;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into_name(), &self.settings, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the nominal sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Set the nominal measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_name());
        run_bench(&full, &self.settings, self.throughput, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into_name());
        run_bench(&full, &self.settings, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (report separator; kept for API compatibility).
    pub fn finish(self) {}
}

/// Median of the per-batch latencies (robust to one-off stalls).
fn median(samples: &mut [f64]) -> f64 {
    debug_assert!(!samples.is_empty());
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    settings: &Settings,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        measure_for: settings.budget(),
        batch_ns: Vec::new(),
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{name:<50} (no iterations recorded)");
        return;
    }
    let ns_per_iter = median(&mut b.batch_ns);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / ns_per_iter)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 * 1e9 / ns_per_iter)
        }
        None => String::new(),
    };
    println!("{name:<50} {ns_per_iter:>12.1} ns/iter{rate}");
}

/// Define a benchmark group function that runs each target in sequence.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- <filter>` passes args we do not interpret;
            // accept and ignore them so invocation stays compatible.
            let _ = std::env::args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_iterations() {
        let settings = Settings {
            sample_size: 1,
            measurement_time: Duration::from_millis(100),
        };
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            measure_for: settings.budget(),
            batch_ns: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
        });
        assert!(b.iters_done > 0);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("build", "64KiB").into_name(),
            "build/64KiB"
        );
    }
}
