//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build has
//! no `syn`/`quote`), which is fine because the workspace only derives on a
//! constrained set of shapes:
//!
//! - structs with named fields (possibly generic, e.g. `Envelope<T>`),
//! - tuple structs (newtypes like `VertexId(pub u32)`),
//! - enums whose variants are unit or tuple variants (e.g.
//!   `SketchId::{Partition(u32), Outlier}`).
//!
//! `#[serde(...)]` attributes are NOT supported and there are none in the
//! workspace; a derive on an unsupported shape fails with `compile_error!`.
//! Representation matches serde's externally-tagged default: named structs
//! become objects, newtypes are transparent, unit variants are strings, and
//! tuple variants are single-entry objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of type body the derive target has.
enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    NamedStruct(Vec<String>),
    /// Tuple struct with this many fields.
    TupleStruct(usize),
    /// Enum: `(variant name, arity)` where arity 0 means a unit variant.
    Enum(Vec<(String, usize)>),
}

struct Target {
    name: String,
    /// Generic parameter names, e.g. `["T"]` for `Envelope<T>`.
    generics: Vec<String>,
    shape: Shape,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_target(input) {
        Ok(t) => gen_serialize(&t)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => error(&msg),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_target(input) {
        Ok(t) => gen_deserialize(&t)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_target(input: TokenStream) -> Result<Target, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    let generics = parse_generics(&tokens, &mut i)?;

    // Skip a `where` clause if present (none in the workspace, but cheap).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                break
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }

    let shape = match (kind, tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct(parse_named_fields(g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_top_level_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::TupleStruct(0),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_variants(g.stream())?)
        }
        (k, other) => return Err(format!("unsupported {k} body: {other:?}")),
    };

    Ok(Target {
        name,
        generics,
        shape,
    })
}

/// Skip leading `#[...]` attributes and a `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parse `<A, B, ...>` after the type name, returning the parameter names.
/// Lifetimes and const parameters are rejected (unused in the workspace).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Result<Vec<String>, String> {
    let mut params = Vec::new();
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => *i += 1,
        _ => return Ok(params),
    }
    let mut depth = 1usize;
    let mut at_param_start = true;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    return Ok(params);
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => at_param_start = true,
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                return Err("lifetime parameters are not supported by the vendored derive".into())
            }
            TokenTree::Ident(id) if at_param_start => {
                let s = id.to_string();
                if s == "const" {
                    return Err("const parameters are not supported by the vendored derive".into());
                }
                params.push(s);
                at_param_start = false;
            }
            _ => {}
        }
        *i += 1;
    }
    Err("unterminated generic parameter list".into())
}

/// Field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        fields.push(name);
        skip_type_until_comma(&tokens, &mut i);
    }
    Ok(fields)
}

/// Advance past a type expression up to (and over) the next top-level comma.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Number of fields in a tuple-struct / tuple-variant body.
fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma (e.g. `(u32,)`) does not add a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') && angle == 0 {
        count -= 1;
    }
    count
}

/// `(name, arity)` for each enum variant; struct variants are rejected.
fn parse_variants(body: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let arity = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                count_top_level_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "struct variant `{name}` is not supported by the vendored derive"
                ))
            }
            _ => 0,
        };
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((name, arity));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation (as strings, parsed back into token streams)
// ---------------------------------------------------------------------------

/// `impl<T: ::serde::Serialize> ::serde::Serialize for Envelope<T>` pieces.
fn impl_header(t: &Target, bound: &str) -> (String, String) {
    if t.generics.is_empty() {
        (String::new(), t.name.clone())
    } else {
        let params: Vec<String> = t.generics.iter().map(|g| format!("{g}: {bound}")).collect();
        (
            format!("<{}>", params.join(", ")),
            format!("{}<{}>", t.name, t.generics.join(", ")),
        )
    }
}

fn gen_serialize(t: &Target) -> String {
    let (impl_generics, ty) = impl_header(t, "::serde::Serialize");
    let body = match &t.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(0) => "::serde::Value::Null".to_string(),
        // Newtype structs serialize transparently, as in real serde.
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "Self::{v} => ::serde::Value::Str(::std::string::String::from({v:?}))"
                    ),
                    1 => format!(
                        "Self::{v}(x0) => ::serde::Value::Map(::std::vec![(::std::string::String::from({v:?}), ::serde::Serialize::to_value(x0))])"
                    ),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "Self::{v}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from({v:?}), ::serde::Value::Seq(::std::vec![{}]))])",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived] impl{impl_generics} ::serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(t: &Target) -> String {
    let (impl_generics, ty) = impl_header(t, "::serde::Deserialize");
    let body = match &t.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::value_field(v, {f:?})?)?"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok(Self {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(0) => "::std::result::Result::Ok(Self)".to_string(),
        Shape::TupleStruct(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(v)?))".to_string()
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "let items = ::serde::value_seq(v, {n})?;\n\
                 ::std::result::Result::Ok(Self({}))",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, a)| *a == 0)
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok(Self::{v})"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|(_, a)| *a > 0)
                .map(|(v, arity)| {
                    if *arity == 1 {
                        format!(
                            "{v:?} => ::std::result::Result::Ok(Self::{v}(::serde::Deserialize::from_value(payload)?))"
                        )
                    } else {
                        let items: Vec<String> = (0..*arity)
                            .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        format!(
                            "{v:?} => {{ let items = ::serde::value_seq(payload, {arity})?; ::std::result::Result::Ok(Self::{v}({})) }}",
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(name) => match name.as_str() {{\n\
                 {unit}\n\
                 _ => ::std::result::Result::Err(::serde::Error(::std::format!(\"unknown variant `{{name}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = (&entries[0].0, &entries[0].1);\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n\
                 {data}\n\
                 _ => ::std::result::Result::Err(::serde::Error(::std::format!(\"unknown variant `{{tag}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::Error::expected({name:?}, other)),\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                data = if data_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", data_arms.join(",\n"))
                },
                name = t.name,
            )
        }
    };
    format!(
        "#[automatically_derived] impl{impl_generics} ::serde::Deserialize for {ty} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
