//! Minimal offline stand-in for the `parking_lot` API surface used by this
//! workspace: a [`Mutex`] whose `lock()` returns the guard directly (no
//! `Result`). Built on `std::sync::Mutex`; a poisoned lock is recovered
//! rather than propagated, matching parking_lot's no-poisoning semantics.

#![warn(missing_docs)]

use std::sync::TryLockError;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
