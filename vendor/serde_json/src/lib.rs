//! Minimal offline JSON serializer/deserializer over the vendored `serde`
//! data model ([`serde::Value`]). Mirrors the pieces of the real
//! `serde_json` API this workspace calls: [`to_writer`], [`to_string`],
//! [`to_vec`], [`from_reader`], [`from_str`], [`from_slice`], and [`Error`].
//!
//! Numbers are kept exact for the full `u64`/`i64` range (sketch counters
//! exceed 2^53). Floats are written with Rust's shortest round-trippable
//! `{:?}` formatting; non-finite floats are written as `null`, matching the
//! vendored `serde` which reads `null` back as NaN.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::io::{Read, Write};

/// Error produced while writing or parsing JSON.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("io error: {e}"))
    }
}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.0)
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serialize `value` as JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    writer.write_all(out.as_bytes())?;
    Ok(())
}

/// Serialize `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize `value` to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trippable float form.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Deserialize a `T` from a JSON reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize a `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number text is utf-8");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let v: u64 = from_str(&to_string(&u64::MAX).unwrap()).unwrap();
        assert_eq!(v, u64::MAX);
        let v: i64 = from_str(&to_string(&-42i64).unwrap()).unwrap();
        assert_eq!(v, -42);
        let v: f64 = from_str(&to_string(&0.1f64).unwrap()).unwrap();
        assert_eq!(v, 0.1);
        let v: bool = from_str("true").unwrap();
        assert!(v);
    }

    #[test]
    fn strings_escape_round_trip() {
        let s = "line\n\"quoted\"\tπ ✓".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
        let astral: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(astral, "😀");
        // A high surrogate must be followed by a low surrogate: error, not
        // panic.
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err());
        assert!(from_str::<String>("\"\\ud83dxy\"").is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1u64, 2], vec![3]];
        let back: Vec<Vec<u64>> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let opt: Option<u32> = from_str("null").unwrap();
        assert_eq!(opt, None);
    }

    #[test]
    fn whitespace_and_errors() {
        let v: Vec<u8> = from_str(" [ 1 , 2 , 3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("1 trailing").is_err());
    }

    #[test]
    fn writer_and_reader_agree() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![10u64, 20]).unwrap();
        let back: Vec<u64> = from_reader(buf.as_slice()).unwrap();
        assert_eq!(back, vec![10, 20]);
    }
}
